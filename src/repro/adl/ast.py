"""Object model of a parsed architecture description.

The parser produces an :class:`ArchSpec`; :mod:`repro.adl.analyze` checks it
and :mod:`repro.adl.translate` lowers instruction semantics to IR.  These
classes are deliberately dumb containers — behaviour lives in the passes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ArchSpec", "RegFileDecl", "RegDecl", "PcDecl", "AliasDecl",
    "EncodingDecl", "EncodingField", "InstrDecl", "OperandDecl",
    "OperandPart",
    "SExpr", "SLit", "SName", "SIndex", "SBin", "SUn", "SCall", "STernary",
    "SStmt", "ALocal", "AAssign", "AIf", "AStore", "AOut", "AHalt", "ATrap",
]


class RegFileDecl:
    """``regfile x[32] width 32 prefix "x" zero 0``"""

    def __init__(self, name: str, count: int, width: int,
                 prefix: Optional[str] = None, zero_index: Optional[int] = None,
                 line: int = 0):
        self.name = name
        self.count = count
        self.width = width
        self.prefix = prefix if prefix is not None else name
        self.zero_index = zero_index
        self.line = line


class RegDecl:
    """``register N width 1`` — a single named register (flags etc.)."""

    def __init__(self, name: str, width: int, line: int = 0):
        self.name = name
        self.width = width
        self.line = line


class PcDecl:
    """``pc width 32`` — the program counter."""

    def __init__(self, name: str, width: int, line: int = 0):
        self.name = name
        self.width = width
        self.line = line


class AliasDecl:
    """``alias sp = x[2]`` — assembler-level register alias."""

    def __init__(self, alias: str, regfile: str, index: int, line: int = 0):
        self.alias = alias
        self.regfile = regfile
        self.index = index
        self.line = line


class EncodingField:
    """One named field in an encoding layout (given MSB-first in the spec)."""

    def __init__(self, name: str, width: int):
        self.name = name
        self.width = width
        # Filled by the analyzer: bit offset of the field's LSB.
        self.lsb = -1


class EncodingDecl:
    """``encoding rtype { funct7:7 rs2:5 rs1:5 funct3:3 rd:5 opcode:7 }``"""

    def __init__(self, name: str, fields: Sequence[EncodingField],
                 line: int = 0):
        self.name = name
        self.fields = list(fields)
        self.line = line
        self.total_bits = sum(f.width for f in fields)

    def field(self, name: str) -> Optional[EncodingField]:
        for field in self.fields:
            if field.name == name:
                return field
        return None


class OperandPart:
    """One component of an operand concatenation: a field or zero padding."""

    def __init__(self, field_name: Optional[str], zero_bits: int = 0):
        self.field_name = field_name     # None -> zero padding
        self.zero_bits = zero_bits


class OperandDecl:
    """``operand off = hi :: lo :: 0[1] signed pcrel``

    The operand value is the MSB-first concatenation of its parts; ``signed``
    tells the assembler to range-check as two's complement, ``pcrel`` makes
    the assembler encode ``label - instruction_address``.
    """

    def __init__(self, name: str, parts: Sequence[OperandPart],
                 signed: bool = False, pcrel: bool = False,
                 pcrel_base: int = 0, line: int = 0):
        self.name = name
        self.parts = list(parts)
        self.signed = signed
        self.pcrel = pcrel
        # Encoded value = label - (instruction_address + pcrel_base);
        # e.g. MIPS-style ISAs use base 4 (relative to the next instruction).
        self.pcrel_base = pcrel_base
        self.line = line
        # Filled by the analyzer once field widths are known.
        self.width = 0


class InstrDecl:
    """One ``instruction`` block."""

    def __init__(self, name: str, encoding: str,
                 match: Dict[str, int], syntax: str,
                 operands: Sequence[OperandDecl],
                 semantics: Sequence["SStmt"], line: int = 0):
        self.name = name
        self.encoding = encoding
        self.match = dict(match)
        self.syntax = syntax
        self.operands = list(operands)
        self.semantics = list(semantics)
        self.line = line


class ArchSpec:
    """A complete parsed architecture description."""

    def __init__(self, name: str):
        self.name = name
        self.wordsize: int = 0
        self.endian: str = "little"
        self.regfiles: Dict[str, RegFileDecl] = {}
        self.registers: Dict[str, RegDecl] = {}
        self.pc: Optional[PcDecl] = None
        self.aliases: List[AliasDecl] = []
        self.encodings: Dict[str, EncodingDecl] = {}
        self.instructions: List[InstrDecl] = []

    def instruction(self, name: str) -> Optional[InstrDecl]:
        for instr in self.instructions:
            if instr.name == name:
                return instr
        return None


# ---------------------------------------------------------------------------
# Semantics-language AST (expressions)
# ---------------------------------------------------------------------------

class SExpr:
    __slots__ = ("line",)

    def __init__(self, line: int = 0):
        self.line = line


class SLit(SExpr):
    """Integer literal; width adapts to context during translation."""

    __slots__ = ("value",)

    def __init__(self, value: int, line: int = 0):
        super().__init__(line)
        self.value = value


class SName(SExpr):
    """Reference to pc, a register, a field/operand, or a local."""

    __slots__ = ("name",)

    def __init__(self, name: str, line: int = 0):
        super().__init__(line)
        self.name = name


class SIndex(SExpr):
    """``x[expr]`` — register-file element."""

    __slots__ = ("name", "index")

    def __init__(self, name: str, index: SExpr, line: int = 0):
        super().__init__(line)
        self.name = name
        self.index = index


class SBin(SExpr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: SExpr, right: SExpr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class SUn(SExpr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: SExpr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.operand = operand


class SCall(SExpr):
    """Builtin call: sext/zext/extract/concat/load/in."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[SExpr], line: int = 0):
        super().__init__(line)
        self.name = name
        self.args = list(args)


class STernary(SExpr):
    __slots__ = ("cond", "then", "other")

    def __init__(self, cond: SExpr, then: SExpr, other: SExpr, line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.other = other


# ---------------------------------------------------------------------------
# Semantics-language AST (statements)
# ---------------------------------------------------------------------------

class SStmt:
    __slots__ = ("line",)

    def __init__(self, line: int = 0):
        self.line = line


class ALocal(SStmt):
    """``local t:32 = expr;``"""

    __slots__ = ("name", "width", "value")

    def __init__(self, name: str, width: int, value: SExpr, line: int = 0):
        super().__init__(line)
        self.name = name
        self.width = width
        self.value = value


class AAssign(SStmt):
    """``target = expr;`` where target is pc, a register, or x[i]."""

    __slots__ = ("target", "value")

    def __init__(self, target: SExpr, value: SExpr, line: int = 0):
        super().__init__(line)
        self.target = target
        self.value = value


class AIf(SStmt):
    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond: SExpr, then_body: Sequence[SStmt],
                 else_body: Sequence[SStmt] = (), line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.then_body = list(then_body)
        self.else_body = list(else_body)


class AStore(SStmt):
    """``store(addr, value, size);``"""

    __slots__ = ("addr", "value", "size")

    def __init__(self, addr: SExpr, value: SExpr, size: int, line: int = 0):
        super().__init__(line)
        self.addr = addr
        self.value = value
        self.size = size


class AOut(SStmt):
    __slots__ = ("value",)

    def __init__(self, value: SExpr, line: int = 0):
        super().__init__(line)
        self.value = value


class AHalt(SStmt):
    __slots__ = ("code",)

    def __init__(self, code: SExpr, line: int = 0):
        super().__init__(line)
        self.code = code


class ATrap(SStmt):
    __slots__ = ("code",)

    def __init__(self, code: SExpr, line: int = 0):
        super().__init__(line)
        self.code = code
