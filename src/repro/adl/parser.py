"""Recursive-descent parser for the architecture description language.

Grammar sketch (see the built-in specs under ``repro/adl/specs/`` for
worked examples)::

    spec        := "architecture" NAME "{" item* "}"
    item        := "wordsize" INT
                 | "endian" ("little" | "big")
                 | "regfile" NAME "[" INT "]" "width" INT
                       ("prefix" STRING)? ("zero" INT)?
                 | "register" NAME "width" INT
                 | "pc" "width" INT
                 | "alias" NAME "=" NAME "[" INT "]"
                 | "encoding" NAME "{" (NAME ":" INT)+ "}"      # MSB first
                 | "instruction" NAME "{" instr-item* "}"
    instr-item  := "encoding" NAME
                 | "match" NAME "=" INT ("," NAME "=" INT)*
                 | "operand" NAME "=" part ("::" part)*
                       ("signed")? ("pcrel")?
                 | "syntax" STRING
                 | "semantics" "{" stmt* "}"
    part        := NAME | "0" "[" INT "]"

The semantics statement/expression language is C-like; precedence from low
to high: ``?:``, ``||``, ``&&``, ``|``, ``^``, ``&``, equality, relational
(signed forms carry an ``s`` suffix: ``<s``), shifts (``>>`` logical,
``>>s`` arithmetic), additive, multiplicative (``/s``/``%s`` signed), unary
``~ ! -``.  Builtins: ``sext(e, w)``, ``zext(e, w)``, ``extract(e, hi, lo)``,
``concat(a, b)``, ``load(addr, size)``, ``in()``.
"""

from __future__ import annotations

from typing import List

from . import ast as A
from .errors import AdlSyntaxError
from .lexer import TokenStream, tokenize

__all__ = ["parse_spec"]

_ITEM_KEYWORDS = {"wordsize", "endian", "regfile", "register", "pc", "alias",
                  "encoding", "instruction"}

_STMT_KEYWORDS = {"local", "if", "store", "out", "halt", "trap"}

_BUILTINS = {"sext", "zext", "extract", "concat", "load", "in"}


def parse_spec(text: str) -> A.ArchSpec:
    """Parse ADL source text into an (unchecked) :class:`~.ast.ArchSpec`."""
    stream = TokenStream(tokenize(text))
    stream.expect_keyword("architecture")
    name = stream.expect("name").text
    spec = A.ArchSpec(name)
    stream.expect("op", "{")
    while not stream.at("op", "}"):
        _parse_item(stream, spec)
    stream.expect("op", "}")
    stream.expect("eof")
    return spec


def _parse_item(stream: TokenStream, spec: A.ArchSpec) -> None:
    token = stream.peek()
    if token.kind != "name" or token.text not in _ITEM_KEYWORDS:
        raise AdlSyntaxError("expected a declaration, found %r" % token.text,
                             token.line, token.column)
    keyword = stream.next().text
    if keyword == "wordsize":
        spec.wordsize = stream.expect("int").value
    elif keyword == "endian":
        endian = stream.expect("name").text
        if endian not in ("little", "big"):
            raise AdlSyntaxError("endian must be 'little' or 'big'",
                                 token.line, token.column)
        spec.endian = endian
    elif keyword == "regfile":
        name = stream.expect("name").text
        stream.expect("op", "[")
        count = stream.expect("int").value
        stream.expect("op", "]")
        stream.expect_keyword("width")
        width = stream.expect("int").value
        prefix = None
        zero_index = None
        while True:
            if stream.at_name("prefix"):
                stream.next()
                prefix = stream.expect("string").value
            elif stream.at_name("zero"):
                stream.next()
                zero_index = stream.expect("int").value
            else:
                break
        spec.regfiles[name] = A.RegFileDecl(name, count, width, prefix,
                                            zero_index, token.line)
    elif keyword == "register":
        name = stream.expect("name").text
        stream.expect_keyword("width")
        width = stream.expect("int").value
        spec.registers[name] = A.RegDecl(name, width, token.line)
    elif keyword == "pc":
        stream.expect_keyword("width")
        width = stream.expect("int").value
        spec.pc = A.PcDecl("pc", width, token.line)
    elif keyword == "alias":
        alias = stream.expect("name").text
        stream.expect("op", "=")
        regfile = stream.expect("name").text
        stream.expect("op", "[")
        index = stream.expect("int").value
        stream.expect("op", "]")
        spec.aliases.append(A.AliasDecl(alias, regfile, index, token.line))
    elif keyword == "encoding":
        name = stream.expect("name").text
        stream.expect("op", "{")
        fields: List[A.EncodingField] = []
        while not stream.at("op", "}"):
            field_name = stream.expect("name").text
            stream.expect("op", ":")
            width = stream.expect("int").value
            fields.append(A.EncodingField(field_name, width))
        stream.expect("op", "}")
        spec.encodings[name] = A.EncodingDecl(name, fields, token.line)
    else:  # instruction
        spec.instructions.append(_parse_instruction(stream, token.line))


def _parse_instruction(stream: TokenStream, line: int) -> A.InstrDecl:
    name = stream.expect("name").text
    stream.expect("op", "{")
    encoding = None
    match = {}
    syntax = None
    operands: List[A.OperandDecl] = []
    semantics: List[A.SStmt] = []
    saw_semantics = False
    while not stream.at("op", "}"):
        token = stream.peek()
        if stream.at_name("encoding"):
            stream.next()
            encoding = stream.expect("name").text
        elif stream.at_name("match"):
            stream.next()
            while True:
                field = stream.expect("name").text
                stream.expect("op", "=")
                match[field] = stream.expect("int").value
                if not stream.accept("op", ","):
                    break
        elif stream.at_name("operand"):
            stream.next()
            operands.append(_parse_operand(stream, token.line))
        elif stream.at_name("syntax"):
            stream.next()
            syntax = stream.expect("string").value
        elif stream.at_name("semantics"):
            stream.next()
            stream.expect("op", "{")
            semantics = _parse_stmts(stream)
            stream.expect("op", "}")
            saw_semantics = True
        else:
            raise AdlSyntaxError(
                "expected an instruction clause, found %r" % token.text,
                token.line, token.column)
    stream.expect("op", "}")
    if encoding is None:
        raise AdlSyntaxError("instruction %r has no encoding clause" % name,
                             line, 0)
    if syntax is None:
        raise AdlSyntaxError("instruction %r has no syntax clause" % name,
                             line, 0)
    if not saw_semantics:
        raise AdlSyntaxError("instruction %r has no semantics clause" % name,
                             line, 0)
    return A.InstrDecl(name, encoding, match, syntax, operands, semantics,
                       line)


def _parse_operand(stream: TokenStream, line: int) -> A.OperandDecl:
    name = stream.expect("name").text
    stream.expect("op", "=")
    parts: List[A.OperandPart] = []
    while True:
        if stream.at("int"):
            zero_token = stream.next()
            if zero_token.value != 0:
                raise AdlSyntaxError("operand padding must be 0[n]",
                                     zero_token.line, zero_token.column)
            stream.expect("op", "[")
            bits = stream.expect("int").value
            stream.expect("op", "]")
            parts.append(A.OperandPart(None, bits))
        else:
            field = stream.expect("name").text
            parts.append(A.OperandPart(field))
        if not stream.accept("op", "::"):
            break
    signed = False
    pcrel = False
    pcrel_base = 0
    while True:
        if stream.at_name("signed"):
            stream.next()
            signed = True
        elif stream.at_name("pcrel"):
            stream.next()
            pcrel = True
            if stream.at("int"):
                pcrel_base = stream.next().value
        else:
            break
    return A.OperandDecl(name, parts, signed, pcrel, pcrel_base, line)


# ---------------------------------------------------------------------------
# Semantics statements
# ---------------------------------------------------------------------------

def _parse_stmts(stream: TokenStream) -> List[A.SStmt]:
    stmts: List[A.SStmt] = []
    while not stream.at("op", "}"):
        stmts.append(_parse_stmt(stream))
    return stmts


def _parse_stmt(stream: TokenStream) -> A.SStmt:
    token = stream.peek()
    if stream.at_name("local"):
        stream.next()
        name = stream.expect("name").text
        stream.expect("op", ":")
        width = stream.expect("int").value
        stream.expect("op", "=")
        value = _parse_expr(stream)
        stream.expect("op", ";")
        return A.ALocal(name, width, value, token.line)
    if stream.at_name("if"):
        stream.next()
        stream.expect("op", "(")
        cond = _parse_expr(stream)
        stream.expect("op", ")")
        stream.expect("op", "{")
        then_body = _parse_stmts(stream)
        stream.expect("op", "}")
        else_body: List[A.SStmt] = []
        if stream.at_name("else"):
            stream.next()
            if stream.at_name("if"):
                else_body = [_parse_stmt(stream)]
            else:
                stream.expect("op", "{")
                else_body = _parse_stmts(stream)
                stream.expect("op", "}")
        return A.AIf(cond, then_body, else_body, token.line)
    if stream.at_name("store"):
        stream.next()
        stream.expect("op", "(")
        addr = _parse_expr(stream)
        stream.expect("op", ",")
        value = _parse_expr(stream)
        stream.expect("op", ",")
        size = stream.expect("int").value
        stream.expect("op", ")")
        stream.expect("op", ";")
        return A.AStore(addr, value, size, token.line)
    if stream.at_name("out"):
        stream.next()
        stream.expect("op", "(")
        value = _parse_expr(stream)
        stream.expect("op", ")")
        stream.expect("op", ";")
        return A.AOut(value, token.line)
    if stream.at_name("halt") or stream.at_name("trap"):
        keyword = stream.next().text
        stream.expect("op", "(")
        code = _parse_expr(stream)
        stream.expect("op", ")")
        stream.expect("op", ";")
        cls = A.AHalt if keyword == "halt" else A.ATrap
        return cls(code, token.line)
    # Assignment: name or name[expr] "=" expr ";"
    target_name = stream.expect("name")
    if stream.accept("op", "["):
        index = _parse_expr(stream)
        stream.expect("op", "]")
        target: A.SExpr = A.SIndex(target_name.text, index, target_name.line)
    else:
        target = A.SName(target_name.text, target_name.line)
    stream.expect("op", "=")
    value = _parse_expr(stream)
    stream.expect("op", ";")
    return A.AAssign(target, value, token.line)


# ---------------------------------------------------------------------------
# Semantics expressions (precedence climbing)
# ---------------------------------------------------------------------------

_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">=", "<s", "<=s", ">s", ">=s"],
    ["<<", ">>", ">>s"],
    ["+", "-"],
    ["*", "/", "%", "/s", "%s"],
]

_OP_NAMES = {
    "||": "or", "&&": "and", "|": "or", "^": "xor", "&": "and",
    "==": "eq", "!=": "ne",
    "<": "ult", "<=": "ule", ">": "ugt", ">=": "uge",
    "<s": "slt", "<=s": "sle", ">s": "sgt", ">=s": "sge",
    "<<": "shl", ">>": "lshr", ">>s": "ashr",
    "+": "add", "-": "sub",
    "*": "mul", "/": "udiv", "%": "urem", "/s": "sdiv", "%s": "srem",
}


def _parse_expr(stream: TokenStream) -> A.SExpr:
    return _parse_ternary(stream)


def _parse_ternary(stream: TokenStream) -> A.SExpr:
    cond = _parse_binary(stream, 0)
    if stream.accept("op", "?"):
        then = _parse_expr(stream)
        stream.expect("op", ":")
        other = _parse_expr(stream)
        return A.STernary(cond, then, other, cond.line)
    return cond


def _parse_binary(stream: TokenStream, level: int) -> A.SExpr:
    if level >= len(_LEVELS):
        return _parse_unary(stream)
    left = _parse_binary(stream, level + 1)
    while stream.peek().kind == "op" and stream.peek().text in _LEVELS[level]:
        op_token = stream.next()
        right = _parse_binary(stream, level + 1)
        left = A.SBin(_OP_NAMES[op_token.text], left, right, op_token.line)
    return left


def _parse_unary(stream: TokenStream) -> A.SExpr:
    token = stream.peek()
    if stream.accept("op", "~"):
        return A.SUn("not", _parse_unary(stream), token.line)
    if stream.accept("op", "!"):
        return A.SUn("boolnot", _parse_unary(stream), token.line)
    if stream.accept("op", "-"):
        operand = _parse_unary(stream)
        if isinstance(operand, A.SLit):
            return A.SLit(-operand.value, token.line)
        return A.SUn("neg", operand, token.line)
    return _parse_primary(stream)


def _parse_primary(stream: TokenStream) -> A.SExpr:
    token = stream.peek()
    if stream.accept("op", "("):
        inner = _parse_expr(stream)
        stream.expect("op", ")")
        return inner
    if token.kind in ("int", "char"):
        stream.next()
        return A.SLit(token.value, token.line)
    if token.kind == "name":
        name = stream.next().text
        if name in _BUILTINS:
            stream.expect("op", "(")
            args: List[A.SExpr] = []
            if not stream.at("op", ")"):
                args.append(_parse_expr(stream))
                while stream.accept("op", ","):
                    args.append(_parse_expr(stream))
            stream.expect("op", ")")
            return A.SCall(name, args, token.line)
        if stream.accept("op", "["):
            index = _parse_expr(stream)
            stream.expect("op", "]")
            return A.SIndex(name, index, token.line)
        return A.SName(name, token.line)
    raise AdlSyntaxError("expected an expression, found %r"
                         % (token.text or token.kind),
                         token.line, token.column)
