"""Semantic analysis of a parsed architecture description.

Checks everything that can be checked before semantics translation:
declaration consistency, encoding layouts, match/operand/field references,
and — crucially for a generated decoder — that the instruction encodings are
*unambiguous*: no two instructions can match the same byte sequence.

On success the spec is annotated in place: encoding fields get their bit
offsets, operands get widths, and each instruction gets a
:class:`DecodePattern` with its ``(length, mask, match)`` triple in fetch
order.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from . import ast as A
from .errors import AdlSemanticError

__all__ = ["analyze", "DecodePattern", "syntax_placeholders",
           "overlapping_pairs"]

_PLACEHOLDER_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z_0-9]*)(?::([a-zA-Z_][a-zA-Z_0-9]*))?\}")


class DecodePattern:
    """Fixed-bit pattern of one instruction in *fetch order*.

    ``length`` is in bytes; ``mask``/``match`` are integers over the
    ``8*length``-bit instruction word as assembled from memory bytes in the
    architecture's endianness.
    """

    def __init__(self, length: int, mask_bits: int, match_bits: int):
        self.length = length
        self.mask = mask_bits
        self.match = match_bits

    def matches(self, word: int) -> bool:
        return (word & self.mask) == self.match

    def __repr__(self):
        return "DecodePattern(len=%d, mask=%#x, match=%#x)" % (
            self.length, self.mask, self.match)


def syntax_placeholders(syntax: str):
    """Yield ``(name, kind)`` for every ``{name}`` / ``{name:kind}``."""
    for found in _PLACEHOLDER_RE.finditer(syntax):
        yield found.group(1), found.group(2)


def analyze(spec: A.ArchSpec, check_ambiguity: bool = True) -> A.ArchSpec:
    """Check and annotate ``spec`` in place; returns it for chaining.

    ``check_ambiguity=False`` skips the decode-ambiguity gate: the lint
    driver (:mod:`repro.lint`) uses this to keep analyzing a deliberately
    ambiguous spec so its SMT ambiguity pass can report *every*
    overlapping pair with witness words instead of dying on the first.
    """
    _check_globals(spec)
    _layout_encodings(spec)
    names = set()
    for instr in spec.instructions:
        if instr.name in names:
            raise AdlSemanticError("duplicate instruction %r" % instr.name,
                                   instr.line)
        names.add(instr.name)
        _check_instruction(spec, instr)
    if check_ambiguity:
        _check_decode_ambiguity(spec)
    return spec


def _check_globals(spec: A.ArchSpec) -> None:
    if spec.wordsize <= 0 or spec.wordsize > 64:
        raise AdlSemanticError(
            "architecture %r needs a wordsize in 1..64" % spec.name)
    if spec.pc is None:
        raise AdlSemanticError("architecture %r declares no pc" % spec.name)
    for regfile in spec.regfiles.values():
        if regfile.count <= 0:
            raise AdlSemanticError("regfile %r has no registers"
                                   % regfile.name, regfile.line)
        if regfile.width <= 0:
            raise AdlSemanticError("regfile %r has non-positive width"
                                   % regfile.name, regfile.line)
        if regfile.zero_index is not None and not (
                0 <= regfile.zero_index < regfile.count):
            raise AdlSemanticError("regfile %r zero index out of range"
                                   % regfile.name, regfile.line)
    for reg in spec.registers.values():
        if reg.name in spec.regfiles:
            raise AdlSemanticError("register %r collides with a regfile"
                                   % reg.name, reg.line)
        if reg.width <= 0:
            raise AdlSemanticError("register %r has non-positive width"
                                   % reg.name, reg.line)
    if "pc" in spec.regfiles or "pc" in spec.registers:
        raise AdlSemanticError("'pc' may not also be a register name")
    for alias in spec.aliases:
        regfile = spec.regfiles.get(alias.regfile)
        if regfile is None:
            raise AdlSemanticError("alias %r references unknown regfile %r"
                                   % (alias.alias, alias.regfile), alias.line)
        if not (0 <= alias.index < regfile.count):
            raise AdlSemanticError("alias %r index out of range"
                                   % alias.alias, alias.line)


def _layout_encodings(spec: A.ArchSpec) -> None:
    for enc in spec.encodings.values():
        if enc.total_bits % 8 != 0:
            raise AdlSemanticError(
                "encoding %r is %d bits, not a multiple of 8"
                % (enc.name, enc.total_bits), enc.line)
        if enc.total_bits > 64:
            raise AdlSemanticError("encoding %r wider than 64 bits"
                                   % enc.name, enc.line)
        seen = set()
        # Fields are written MSB first: the first one sits at the top.
        position = enc.total_bits
        for field in enc.fields:
            if field.width <= 0:
                raise AdlSemanticError(
                    "field %r in encoding %r has non-positive width"
                    % (field.name, enc.name), enc.line)
            if field.name in seen:
                raise AdlSemanticError(
                    "duplicate field %r in encoding %r"
                    % (field.name, enc.name), enc.line)
            seen.add(field.name)
            position -= field.width
            field.lsb = position
        if position != 0:
            raise AdlSemanticError("internal layout error in encoding %r"
                                   % enc.name, enc.line)


def _check_instruction(spec: A.ArchSpec, instr: A.InstrDecl) -> None:
    enc = spec.encodings.get(instr.encoding)
    if enc is None:
        raise AdlSemanticError("instruction %r uses unknown encoding %r"
                               % (instr.name, instr.encoding), instr.line)
    field_names = {f.name for f in enc.fields}
    for field_name, value in instr.match.items():
        field = enc.field(field_name)
        if field is None:
            raise AdlSemanticError(
                "instruction %r matches unknown field %r"
                % (instr.name, field_name), instr.line)
        if value < 0 or value >= (1 << field.width):
            raise AdlSemanticError(
                "match value %#x does not fit field %r (%d bits)"
                % (value, field_name, field.width), instr.line)
    operand_names = set()
    for operand in instr.operands:
        if operand.name in field_names:
            raise AdlSemanticError(
                "operand %r shadows an encoding field" % operand.name,
                operand.line)
        if operand.name in operand_names:
            raise AdlSemanticError("duplicate operand %r" % operand.name,
                                   operand.line)
        operand_names.add(operand.name)
        width = 0
        for part in operand.parts:
            if part.field_name is None:
                width += part.zero_bits
                continue
            field = enc.field(part.field_name)
            if field is None:
                raise AdlSemanticError(
                    "operand %r references unknown field %r"
                    % (operand.name, part.field_name), operand.line)
            if part.field_name in instr.match:
                raise AdlSemanticError(
                    "operand %r uses matched (fixed) field %r"
                    % (operand.name, part.field_name), operand.line)
            width += field.width
        operand.width = width
        if width <= 0:
            raise AdlSemanticError("operand %r is empty" % operand.name,
                                   operand.line)
    _check_syntax(spec, instr, field_names, operand_names)
    # The decode pattern in fetch order, stored on the instruction.
    instr.pattern = _build_pattern(spec, instr, enc)


def _check_syntax(spec: A.ArchSpec, instr: A.InstrDecl,
                  field_names, operand_names) -> None:
    placeholder_seen = set()
    for name, kind in syntax_placeholders(instr.syntax):
        if name in placeholder_seen:
            raise AdlSemanticError(
                "instruction %r syntax repeats placeholder %r"
                % (instr.name, name), instr.line)
        placeholder_seen.add(name)
        if name not in field_names and name not in operand_names:
            raise AdlSemanticError(
                "instruction %r syntax references unknown %r"
                % (instr.name, name), instr.line)
        if name in instr.match:
            raise AdlSemanticError(
                "instruction %r syntax references fixed field %r"
                % (instr.name, name), instr.line)
        if kind is not None and kind not in spec.regfiles:
            raise AdlSemanticError(
                "instruction %r placeholder {%s:%s} names unknown regfile"
                % (instr.name, name, kind), instr.line)
        if kind is not None and name in operand_names:
            raise AdlSemanticError(
                "instruction %r placeholder %r: operands cannot be "
                "register-typed" % (instr.name, name), instr.line)
    # Every free (non-fixed) field must be recoverable from the syntax,
    # either directly or through an operand, or the assembler cannot encode.
    covered = set(placeholder_seen)
    for operand in instr.operands:
        if operand.name in placeholder_seen:
            for part in operand.parts:
                if part.field_name is not None:
                    covered.add(part.field_name)
    enc = spec.encodings[instr.encoding]
    for field in enc.fields:
        if field.name not in instr.match and field.name not in covered:
            raise AdlSemanticError(
                "instruction %r leaves field %r unconstrained and "
                "unreferenced by its syntax" % (instr.name, field.name),
                instr.line)


def _build_pattern(spec: A.ArchSpec, instr: A.InstrDecl,
                   enc: A.EncodingDecl) -> DecodePattern:
    mask = 0
    match = 0
    for field_name, value in instr.match.items():
        field = enc.field(field_name)
        mask |= ((1 << field.width) - 1) << field.lsb
        match |= value << field.lsb
    return DecodePattern(enc.total_bits // 8, mask, match)


def _fetch_prefix(pattern: DecodePattern, prefix_bytes: int,
                  endian: str) -> tuple:
    """(mask, match) restricted to the first ``prefix_bytes`` fetched."""
    bits = 8 * prefix_bytes
    if endian == "little":
        keep = (1 << bits) - 1
        return pattern.mask & keep, pattern.match & keep
    shift = 8 * pattern.length - bits
    return pattern.mask >> shift, pattern.match >> shift


def overlapping_pairs(spec: A.ArchSpec
                      ) -> List[Tuple[A.InstrDecl, A.InstrDecl, int, int]]:
    """All instruction pairs whose decode patterns can match one word.

    Returns ``(first, second, witness_word, prefix_bytes)`` tuples in a
    deterministic order (sorted by the pair's instruction names): two
    instructions overlap when some fetched word agrees with both fixed-bit
    patterns over their common prefix.  The witness is one such word
    (restricted to the prefix, in fetch order): each pattern's fixed bits,
    unconstrained bits zero.

    Requires decode patterns, i.e. the spec must have been through
    :func:`analyze` (``check_ambiguity=False`` is fine).
    """
    pairs: List[Tuple[A.InstrDecl, A.InstrDecl, int, int]] = []
    instrs = spec.instructions
    for i, first in enumerate(instrs):
        for second in instrs[i + 1:]:
            pattern_a, pattern_b = first.pattern, second.pattern
            prefix = min(pattern_a.length, pattern_b.length)
            mask_a, match_a = _fetch_prefix(pattern_a, prefix, spec.endian)
            mask_b, match_b = _fetch_prefix(pattern_b, prefix, spec.endian)
            common = mask_a & mask_b
            if (match_a & common) == (match_b & common):
                witness = (match_a | match_b) & ((1 << (8 * prefix)) - 1)
                left, right = first, second
                if right.name < left.name:
                    left, right = right, left
                pairs.append((left, right, witness, prefix))
    pairs.sort(key=lambda item: (item[0].name, item[1].name))
    return pairs


def _check_decode_ambiguity(spec: A.ArchSpec) -> None:
    """Reject ambiguous encodings with a deterministic diagnostic.

    Every overlapping pair is collected (not just the first found), the
    list is sorted by instruction name, and each entry carries a concrete
    witness word that both patterns match — so the error message is
    stable across instruction-declaration order and immediately
    actionable.
    """
    pairs = overlapping_pairs(spec)
    if not pairs:
        return
    clauses = ["%s/%s (witness word %#0*x)"
               % (left.name, right.name, 2 + 2 * prefix, witness)
               for left, right, witness, prefix in pairs]
    line = min(min(left.line, right.line) for left, right, _, _ in pairs)
    raise AdlSemanticError(
        "ambiguous instruction encodings: %d overlapping pair%s: %s"
        % (len(pairs), "" if len(pairs) == 1 else "s", "; ".join(clauses)),
        line)
