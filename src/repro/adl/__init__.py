"""The architecture description language (ADL) front end.

Pipeline: :func:`parse_spec` (text -> AST) -> :func:`analyze`
(consistency + encoding layout + decode-ambiguity checks) ->
:func:`translate_instruction` (semantics -> IR).  The built-in ISA specs
live in ``repro/adl/specs/`` and are loaded via :func:`load_builtin_spec`.
"""

import os

from . import ast  # noqa: F401
from .analyze import DecodePattern, analyze, syntax_placeholders  # noqa: F401
from .errors import AdlError, AdlSemanticError, AdlSyntaxError  # noqa: F401
from .lexer import Token, TokenStream, tokenize  # noqa: F401
from .parser import parse_spec  # noqa: F401
from .translate import translate_instruction  # noqa: F401

_SPEC_DIR = os.path.join(os.path.dirname(__file__), "specs")


def builtin_spec_names():
    """Names of the ADL specs shipped with the library."""
    return sorted(name[:-4] for name in os.listdir(_SPEC_DIR)
                  if name.endswith(".adl"))


def builtin_spec_path(name):
    """Filesystem path of a built-in spec (for Table 1's line counts)."""
    path = os.path.join(_SPEC_DIR, name + ".adl")
    if not os.path.exists(path):
        raise AdlError("no built-in spec named %r (have: %s)"
                       % (name, ", ".join(builtin_spec_names())))
    return path


def load_builtin_spec(name):
    """Parse and analyze a built-in spec by name ('rv32', 'mips32', ...)."""
    with open(builtin_spec_path(name)) as handle:
        return analyze(parse_spec(handle.read()))
