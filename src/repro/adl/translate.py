"""Translation of ADL instruction semantics to the register-transfer IR.

This is the pass that makes the engine retargetable: every instruction's
semantics block is lowered *once* (at model-build time) into IR statements,
and both the concrete simulator and the symbolic executor interpret that IR.

Width discipline
----------------
The semantics language has no implicit widening: mixing widths is an error
unless the spec says ``sext``/``zext`` explicitly.  Bare integer literals
adapt to the width their context demands; a literal with no context at all
defaults to the architecture word size.

Input discipline
----------------
``in()`` (read one input byte) is the only side-effecting expression, so it
is restricted to being the *entire* right-hand side of an assignment or
``local``.  This keeps evaluation order identical between the concrete
interpreter (which evaluates only the taken ite branch) and the symbolic
executor (which evaluates both).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .. import ir
from ..ir import nodes as N
from . import ast as A
from .errors import AdlSemanticError

__all__ = ["translate_instruction", "TranslationContext",
           "RuleProvenance", "rule_provenance",
           "ir_validation_enabled", "set_ir_validation"]

# Every translated rule is structurally/width validated at translation
# time (repro.ir.validate) so malformed IR is caught at model-build time
# with instruction provenance, never mid-execution.  The flag exists for
# translation-throughput ablations and for tooling that deliberately
# feeds the validator itself; leave it on everywhere else.
_VALIDATE_IR = True


def ir_validation_enabled() -> bool:
    """Whether translated rules are run through ``ir.validate_block``."""
    return _VALIDATE_IR


def set_ir_validation(enabled: bool) -> bool:
    """Enable/disable translation-time IR validation; returns the
    previous setting (restore it in a ``finally``)."""
    global _VALIDATE_IR
    previous = _VALIDATE_IR
    _VALIDATE_IR = bool(enabled)
    return previous

_COMPARISONS = frozenset({"eq", "ne", "ult", "ule", "ugt", "uge",
                          "slt", "sle", "sgt", "sge"})


class RuleProvenance:
    """Where one semantic rule (an ``instruction`` block) came from.

    Recorded at translation time so every executed instruction can be
    attributed back to the ADL source that produced its IR — the feedback
    signal behind ``repro speccov`` (spec-coverage reports for ISA
    porters).  ``line_lo``/``line_hi`` span the whole block: declaration
    header through the deepest semantics statement/expression.
    """

    __slots__ = ("instruction", "mnemonic", "encoding",
                 "line_lo", "line_hi", "operands")

    def __init__(self, instruction: str, mnemonic: str, encoding: str,
                 line_lo: int, line_hi: int, operands: Sequence[str] = ()):
        self.instruction = instruction
        self.mnemonic = mnemonic
        self.encoding = encoding
        self.line_lo = line_lo
        self.line_hi = line_hi
        self.operands = tuple(operands)

    @property
    def span(self):
        return (self.line_lo, self.line_hi)

    def to_dict(self) -> Dict[str, object]:
        return {"instruction": self.instruction, "mnemonic": self.mnemonic,
                "encoding": self.encoding, "lines": [self.line_lo,
                                                     self.line_hi],
                "operands": list(self.operands)}

    def __repr__(self):
        return "<RuleProvenance %s (%s) lines %d-%d>" % (
            self.instruction, self.mnemonic, self.line_lo, self.line_hi)


def _span_lines(node) -> List[int]:
    """All source line numbers reachable from an AST statement/expr."""
    lines: List[int] = []
    stack = [node]
    while stack:
        item = stack.pop()
        line = getattr(item, "line", 0)
        if line:
            lines.append(line)
        if isinstance(item, A.AIf):
            stack.extend(item.then_body)
            stack.extend(item.else_body)
            stack.append(item.cond)
        elif isinstance(item, A.ALocal):
            stack.append(item.value)
        elif isinstance(item, A.AAssign):
            stack.extend((item.target, item.value))
        elif isinstance(item, A.AStore):
            stack.extend((item.addr, item.value))
        elif isinstance(item, A.AOut):
            stack.append(item.value)
        elif isinstance(item, A.AHalt):
            stack.append(item.code)
        elif isinstance(item, A.ATrap):
            stack.append(item.code)
        elif isinstance(item, A.SExpr):
            stack.extend(_children(item))
    return lines


def rule_provenance(spec: A.ArchSpec, instr: A.InstrDecl) -> RuleProvenance:
    """Build the provenance record for one instruction declaration.

    The line span covers the declaration line, every operand declaration
    and every line mentioned anywhere in the semantics block, so an
    annotated-spec report highlights the full rule body.
    """
    lines = [instr.line] if instr.line else []
    for operand in instr.operands:
        if operand.line:
            lines.append(operand.line)
    for stmt in instr.semantics:
        lines.extend(_span_lines(stmt))
    if not lines:
        lines = [0]
    mnemonic = instr.syntax.split()[0] if instr.syntax else instr.name
    return RuleProvenance(instr.name, mnemonic, instr.encoding,
                          min(lines), max(lines),
                          [op.name for op in instr.operands])


class TranslationContext:
    """Name/width environment for one instruction's semantics block."""

    def __init__(self, spec: A.ArchSpec, instr: A.InstrDecl):
        self.spec = spec
        self.instr = instr
        self.wordsize = spec.wordsize
        enc = spec.encodings[instr.encoding]
        self.fields: Dict[str, int] = {f.name: f.width for f in enc.fields}
        self.operands: Dict[str, int] = {op.name: op.width
                                         for op in instr.operands}
        self.locals: Dict[str, int] = {}

    def lookup_kind(self, name: str) -> Optional[str]:
        """Classify a bare name; precedence: local, operand, field,
        register, regfile, pc."""
        if name == "pc":
            return "pc"
        if name in self.locals:
            return "local"
        if name in self.operands:
            return "operand"
        if name in self.fields:
            return "field"
        if name in self.spec.registers:
            return "register"
        if name in self.spec.regfiles:
            return "regfile"
        return None


def translate_instruction(spec: A.ArchSpec,
                          instr: A.InstrDecl) -> List[N.Stmt]:
    """Lower one instruction's semantics to a validated IR block.

    Validation (:func:`repro.ir.validate.validate_block`) runs on every
    translated rule unless disabled via :func:`set_ir_validation`; an
    :class:`~repro.ir.validate.IrError` is re-raised as an
    :class:`AdlSemanticError` carrying the instruction's name and source
    line, so a width bug in generated IR points back at the spec.
    """
    ctx = TranslationContext(spec, instr)
    block = _translate_stmts(ctx, instr.semantics)
    if _VALIDATE_IR:
        try:
            ir.validate_block(block)
        except ir.IrError as error:
            raise AdlSemanticError(
                "instruction %r translated to invalid IR: %s"
                % (instr.name, error), instr.line)
    return block


def _translate_stmts(ctx: TranslationContext,
                     stmts: Sequence[A.SStmt]) -> List[N.Stmt]:
    out: List[N.Stmt] = []
    for stmt in stmts:
        out.append(_translate_stmt(ctx, stmt))
    return out


def _translate_stmt(ctx: TranslationContext, stmt: A.SStmt) -> N.Stmt:
    if isinstance(stmt, A.ALocal):
        if ctx.lookup_kind(stmt.name) is not None:
            raise AdlSemanticError("local %r shadows an existing name"
                                   % stmt.name, stmt.line)
        value = _rhs(ctx, stmt.value, stmt.width)
        ctx.locals[stmt.name] = stmt.width
        return N.SetLocal(stmt.name, value)
    if isinstance(stmt, A.AAssign):
        return _translate_assign(ctx, stmt)
    if isinstance(stmt, A.AIf):
        cond = _expr(ctx, stmt.cond, 1)
        # Locals declared inside a branch stay visible afterwards (the IR
        # interpreters share one local scope per instruction), matching the
        # simple flat-scope semantics the specs rely on.
        then_body = _translate_stmts(ctx, stmt.then_body)
        else_body = _translate_stmts(ctx, stmt.else_body)
        return N.IfStmt(cond, then_body, else_body)
    if isinstance(stmt, A.AStore):
        if stmt.size not in (1, 2, 4, 8):
            raise AdlSemanticError("store size must be 1/2/4/8 bytes",
                                   stmt.line)
        addr = _expr(ctx, stmt.addr, ctx.wordsize)
        value = _expr(ctx, stmt.value, 8 * stmt.size)
        return N.Store(addr, value, stmt.size)
    if isinstance(stmt, A.AOut):
        return N.Output(_expr(ctx, stmt.value, 8))
    if isinstance(stmt, A.AHalt):
        return N.Halt(_expr(ctx, stmt.code, 8))
    if isinstance(stmt, A.ATrap):
        return N.Trap(_expr(ctx, stmt.code, 8))
    raise AdlSemanticError("unknown statement %r" % (stmt,),
                           getattr(stmt, "line", 0))


def _translate_assign(ctx: TranslationContext, stmt: A.AAssign) -> N.Stmt:
    target = stmt.target
    if isinstance(target, A.SName):
        kind = ctx.lookup_kind(target.name)
        if kind == "pc":
            return N.SetPc(_rhs(ctx, stmt.value, ctx.spec.pc.width))
        if kind == "register":
            width = ctx.spec.registers[target.name].width
            return N.SetReg(target.name, None, _rhs(ctx, stmt.value, width))
        if kind == "local":
            width = ctx.locals[target.name]
            return N.SetLocal(target.name, _rhs(ctx, stmt.value, width))
        if kind in ("field", "operand"):
            raise AdlSemanticError("cannot assign to encoding field %r"
                                   % target.name, stmt.line)
        if kind == "regfile":
            raise AdlSemanticError("regfile %r must be indexed" % target.name,
                                   stmt.line)
        raise AdlSemanticError("unknown assignment target %r" % target.name,
                               stmt.line)
    if isinstance(target, A.SIndex):
        regfile = ctx.spec.regfiles.get(target.name)
        if regfile is None:
            raise AdlSemanticError("unknown regfile %r" % target.name,
                                   stmt.line)
        index = _expr(ctx, target.index, None)
        value = _rhs(ctx, stmt.value, regfile.width)
        return N.SetReg(target.name, index, value)
    raise AdlSemanticError("bad assignment target", stmt.line)


def _rhs(ctx: TranslationContext, expr: A.SExpr, width: int) -> N.Expr:
    """Translate a right-hand side; the only place ``in()`` is allowed."""
    if isinstance(expr, A.SCall) and expr.name == "in":
        if expr.args:
            raise AdlSemanticError("in() takes no arguments", expr.line)
        if width != 8:
            raise AdlSemanticError(
                "in() yields 8 bits; extend explicitly (got %d-bit target)"
                % width, expr.line)
        return N.InputByte()
    _reject_input(expr)
    return _expr(ctx, expr, width)


def _reject_input(expr: A.SExpr) -> None:
    if isinstance(expr, A.SCall) and expr.name == "in":
        raise AdlSemanticError(
            "in() may only be the entire right-hand side of an assignment",
            expr.line)
    for child in _children(expr):
        _reject_input(child)


def _children(expr: A.SExpr):
    if isinstance(expr, A.SBin):
        return (expr.left, expr.right)
    if isinstance(expr, A.SUn):
        return (expr.operand,)
    if isinstance(expr, A.SCall):
        return tuple(expr.args)
    if isinstance(expr, A.STernary):
        return (expr.cond, expr.then, expr.other)
    if isinstance(expr, A.SIndex):
        return (expr.index,)
    return ()


def _expr(ctx: TranslationContext, expr: A.SExpr,
          expected: Optional[int]) -> N.Expr:
    """Translate an expression, checking it against ``expected`` width."""
    node = _build(ctx, expr, expected)
    if expected is not None and node.width != expected:
        raise AdlSemanticError(
            "expression has width %d where %d is required "
            "(use sext/zext/extract)" % (node.width, expected), expr.line)
    return node


def _build(ctx: TranslationContext, expr: A.SExpr,
           expected: Optional[int]) -> N.Expr:
    if isinstance(expr, A.SLit):
        width = expected if expected is not None else ctx.wordsize
        _check_literal_fits(expr.value, width, expr.line)
        return N.Const(expr.value, width)
    if isinstance(expr, A.SName):
        return _build_name(ctx, expr)
    if isinstance(expr, A.SIndex):
        regfile = ctx.spec.regfiles.get(expr.name)
        if regfile is None:
            raise AdlSemanticError("unknown regfile %r" % expr.name,
                                   expr.line)
        index = _expr(ctx, expr.index, None)
        return N.ReadReg(expr.name, index, regfile.width)
    if isinstance(expr, A.SBin):
        return _build_binop(ctx, expr, expected)
    if isinstance(expr, A.SUn):
        if expr.op == "boolnot":
            return N.UnOp("boolnot", _expr(ctx, expr.operand, 1), 1)
        operand = _expr(ctx, expr.operand, expected)
        return N.UnOp(expr.op, operand, operand.width)
    if isinstance(expr, A.STernary):
        cond = _expr(ctx, expr.cond, 1)
        then, other = _infer_pair(ctx, expr.then, expr.other, expected,
                                  expr.line)
        return N.IteExpr(cond, then, other)
    if isinstance(expr, A.SCall):
        return _build_call(ctx, expr)
    raise AdlSemanticError("unknown expression %r" % (expr,),
                           getattr(expr, "line", 0))


def _build_name(ctx: TranslationContext, expr: A.SName) -> N.Expr:
    kind = ctx.lookup_kind(expr.name)
    if kind == "pc":
        return N.Pc(ctx.spec.pc.width)
    if kind == "local":
        return N.Local(expr.name, ctx.locals[expr.name])
    if kind == "operand":
        return N.Field(expr.name, ctx.operands[expr.name])
    if kind == "field":
        return N.Field(expr.name, ctx.fields[expr.name])
    if kind == "register":
        return N.ReadReg(expr.name, None, ctx.spec.registers[expr.name].width)
    if kind == "regfile":
        raise AdlSemanticError("regfile %r must be indexed" % expr.name,
                               expr.line)
    raise AdlSemanticError("unknown name %r" % expr.name, expr.line)


def _infer_pair(ctx: TranslationContext, left: A.SExpr, right: A.SExpr,
                expected: Optional[int], line: int):
    """Translate two same-width operands; literals adapt to the other side."""
    left_literal = isinstance(left, A.SLit)
    right_literal = isinstance(right, A.SLit)
    if left_literal and not right_literal:
        right_node = _expr(ctx, right, expected)
        left_node = _expr(ctx, left, right_node.width)
    else:
        left_node = _expr(ctx, left, expected)
        right_node = _expr(ctx, right, left_node.width)
    if left_node.width != right_node.width:
        raise AdlSemanticError(
            "operands have widths %d and %d (use sext/zext)"
            % (left_node.width, right_node.width), line)
    return left_node, right_node


def _build_binop(ctx: TranslationContext, expr: A.SBin,
                 expected: Optional[int]) -> N.Expr:
    if expr.op in _COMPARISONS:
        left, right = _infer_pair(ctx, expr.left, expr.right, None, expr.line)
        return N.BinOp(expr.op, left, right, 1)
    left, right = _infer_pair(ctx, expr.left, expr.right, expected, expr.line)
    return N.BinOp(expr.op, left, right, left.width)


def _build_call(ctx: TranslationContext, expr: A.SCall) -> N.Expr:
    name = expr.name
    if name == "in":
        raise AdlSemanticError(
            "in() may only be the entire right-hand side of an assignment",
            expr.line)
    if name in ("sext", "zext"):
        if len(expr.args) != 2 or not isinstance(expr.args[1], A.SLit):
            raise AdlSemanticError("%s(expr, width) expects a literal width"
                                   % name, expr.line)
        operand = _expr(ctx, expr.args[0], None)
        width = expr.args[1].value
        if width < operand.width:
            raise AdlSemanticError(
                "%s narrows %d to %d bits (use extract)"
                % (name, operand.width, width), expr.line)
        if width == operand.width:
            return operand
        return N.Ext(name, operand, width)
    if name == "extract":
        if (len(expr.args) != 3
                or not isinstance(expr.args[1], A.SLit)
                or not isinstance(expr.args[2], A.SLit)):
            raise AdlSemanticError(
                "extract(expr, hi, lo) expects literal bit positions",
                expr.line)
        operand = _expr(ctx, expr.args[0], None)
        hi, lo = expr.args[1].value, expr.args[2].value
        if not (0 <= lo <= hi < operand.width):
            raise AdlSemanticError(
                "extract [%d:%d] out of range for width %d"
                % (hi, lo, operand.width), expr.line)
        return N.ExtractBits(operand, hi, lo)
    if name == "concat":
        if len(expr.args) != 2:
            raise AdlSemanticError("concat(hi, lo) takes two arguments",
                                   expr.line)
        hi_part = _expr(ctx, expr.args[0], None)
        lo_part = _expr(ctx, expr.args[1], None)
        return N.ConcatBits(hi_part, lo_part)
    if name == "load":
        if len(expr.args) != 2 or not isinstance(expr.args[1], A.SLit):
            raise AdlSemanticError("load(addr, size) expects a literal size",
                                   expr.line)
        size = expr.args[1].value
        if size not in (1, 2, 4, 8):
            raise AdlSemanticError("load size must be 1/2/4/8 bytes",
                                   expr.line)
        addr = _expr(ctx, expr.args[0], ctx.wordsize)
        return N.Load(addr, size)
    raise AdlSemanticError("unknown builtin %r" % name, expr.line)


def _check_literal_fits(value: int, width: int, line: int) -> None:
    if value >= 0:
        if value >= (1 << width):
            raise AdlSemanticError(
                "literal %#x does not fit in %d bits" % (value, width), line)
    else:
        if value < -(1 << (width - 1)):
            raise AdlSemanticError(
                "literal %d does not fit in %d bits" % (value, width), line)
