"""Errors raised by the ADL front end, with source locations."""

from __future__ import annotations

__all__ = ["AdlError", "AdlSyntaxError", "AdlSemanticError"]


class AdlError(Exception):
    """Base class for ADL specification errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = "line %d:%d: %s" % (line, column, message)
        super().__init__(message)


class AdlSyntaxError(AdlError):
    """The spec text does not parse."""


class AdlSemanticError(AdlError):
    """The spec parses but is inconsistent (widths, encodings, names)."""
