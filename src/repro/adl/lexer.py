"""Tokenizer for the architecture description language.

The ADL is line-comment based (``#``), whitespace-insensitive, with C-like
operators plus the signed-suffixed comparison/shift family (``<s``, ``<=s``,
``>s``, ``>=s``, ``>>s``, ``/s``, ``%s``) the semantics language uses to
distinguish signed from unsigned operations.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional

from .errors import AdlSyntaxError

__all__ = ["Token", "tokenize", "TokenStream"]


class Token(NamedTuple):
    kind: str       # 'name', 'int', 'string', 'char', 'op', 'eof'
    text: str
    value: object   # int for 'int'/'char', str otherwise
    line: int
    column: int


# Longest-match first.
_OPERATORS = [
    "<=s", ">=s", ">>s",
    "::", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
    "<s", ">s", "/s", "%s",
    "{", "}", "[", "]", "(", ")", "=", ",", ";", ":", "?",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "@",
]

_NAME_START = set("abcdefghijklmnopqrstuvwxyz"
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ_.")
_NAME_CONT = _NAME_START | set("0123456789")


def tokenize(text: str) -> List[Token]:
    """Tokenize ADL source text; raises :class:`AdlSyntaxError` on junk."""
    tokens: List[Token] = []
    line, col = 1, 1
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < length and text[i] != "\n":
                i += 1
            continue
        start_line, start_col = line, col
        if ch == '"':
            j = i + 1
            chunks = []
            while j < length and text[j] != '"':
                if text[j] == "\n":
                    raise AdlSyntaxError("unterminated string",
                                         start_line, start_col)
                if text[j] == "\\" and j + 1 < length:
                    chunks.append({"n": "\n", "t": "\t", '"': '"',
                                   "\\": "\\"}.get(text[j + 1], text[j + 1]))
                    j += 2
                else:
                    chunks.append(text[j])
                    j += 1
            if j >= length:
                raise AdlSyntaxError("unterminated string",
                                     start_line, start_col)
            value = "".join(chunks)
            tokens.append(Token("string", text[i:j + 1], value,
                                start_line, start_col))
            col += j + 1 - i
            i = j + 1
            continue
        if ch == "'":
            if i + 2 < length and text[i + 2] == "'":
                tokens.append(Token("char", text[i:i + 3], ord(text[i + 1]),
                                    start_line, start_col))
                i += 3
                col += 3
                continue
            if (i + 3 < length and text[i + 1] == "\\"
                    and text[i + 3] == "'"):
                escaped = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39}
                if text[i + 2] not in escaped:
                    raise AdlSyntaxError("bad escape in char literal",
                                         start_line, start_col)
                tokens.append(Token("char", text[i:i + 4],
                                    escaped[text[i + 2]],
                                    start_line, start_col))
                i += 4
                col += 4
                continue
            raise AdlSyntaxError("bad char literal", start_line, start_col)
        if ch.isdigit():
            j = i
            if text.startswith("0x", i) or text.startswith("0X", i):
                j = i + 2
                while j < length and text[j] in "0123456789abcdefABCDEF_":
                    j += 1
                value = int(text[i:j].replace("_", ""), 16)
            elif text.startswith("0b", i) or text.startswith("0B", i):
                j = i + 2
                while j < length and text[j] in "01_":
                    j += 1
                value = int(text[i + 2:j].replace("_", ""), 2)
            else:
                while j < length and (text[j].isdigit() or text[j] == "_"):
                    j += 1
                value = int(text[i:j].replace("_", ""))
            tokens.append(Token("int", text[i:j], value,
                                start_line, start_col))
            col += j - i
            i = j
            continue
        if ch in _NAME_START:
            j = i
            while j < length and text[j] in _NAME_CONT:
                j += 1
            word = text[i:j]
            tokens.append(Token("name", word, word, start_line, start_col))
            col += j - i
            i = j
            continue
        for op in _OPERATORS:
            if text.startswith(op, i):
                # Signed-suffix operators must not eat the start of a name
                # (e.g. "a <sel" should be '<', 'sel').
                if (op.endswith("s") and i + len(op) < length
                        and text[i + len(op)] in _NAME_CONT):
                    continue
                tokens.append(Token("op", op, op, start_line, start_col))
                i += len(op)
                col += len(op)
                break
        else:
            raise AdlSyntaxError("unexpected character %r" % ch, line, col)
    tokens.append(Token("eof", "", "", line, col))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    def peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self._pos += 1
        return token

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def at_name(self, word: str) -> bool:
        return self.at("name", word)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text if text is not None else kind
            raise AdlSyntaxError("expected %r, found %r" % (wanted, token.text
                                                            or token.kind),
                                 token.line, token.column)
        return self.next()

    def expect_keyword(self, word: str) -> Token:
        return self.expect("name", word)

    def __iter__(self) -> Iterator[Token]:
        return iter(self._tokens[self._pos:])
