"""Concrete interpretation of IR blocks.

This is the *concrete* twin of the symbolic executor: the same IR, evaluated
over Python integers.  It backs the ISA simulator
(:mod:`repro.isa.simulator`), differential testing of the generated
semantics, and the cross-ISA replay experiment (Figure 3).

The interpreter is decoupled from any particular machine through the
:class:`MachineContext` protocol; anything that can read/write registers and
memory and provide input bytes can execute IR.
"""

from __future__ import annotations

from typing import Dict, Sequence

from . import nodes as N

__all__ = ["MachineContext", "ExecOutcome", "exec_block", "eval_expr"]


def _mask(width: int) -> int:
    return (1 << width) - 1


def _to_signed(value: int, width: int) -> int:
    sign = 1 << (width - 1)
    return (value & _mask(width)) - ((value & sign) << 1)


class MachineContext:
    """The machine-side interface the interpreter drives.

    Subclasses (the concrete simulator) implement register/memory access,
    input/output, and receive control effects.  All values are unsigned
    Python ints already masked to their width.
    """

    def read_reg(self, regfile: str, index) -> int:
        raise NotImplementedError

    def write_reg(self, regfile: str, index, value: int) -> None:
        raise NotImplementedError

    def load(self, addr: int, size: int) -> int:
        raise NotImplementedError

    def store(self, addr: int, value: int, size: int) -> None:
        raise NotImplementedError

    def input_byte(self) -> int:
        raise NotImplementedError

    def output_byte(self, value: int) -> None:
        raise NotImplementedError

    def current_pc(self) -> int:
        raise NotImplementedError


class ExecOutcome:
    """Result of executing one instruction's IR block."""

    __slots__ = ("next_pc", "halted", "exit_code", "trapped", "trap_code")

    def __init__(self):
        self.next_pc = None        # None -> fall through
        self.halted = False
        self.exit_code = 0
        self.trapped = False
        self.trap_code = 0


def eval_expr(expr: N.Expr, ctx: MachineContext, fields: Dict[str, int],
              local_values: Dict[str, int], attr=None) -> int:
    """Evaluate one IR expression to an unsigned integer.

    ``attr`` (a :class:`repro.obs.attr.CostAttribution`, or anything
    with ``ir_enter``/``ir_exit``) opt-in probes every node so concrete
    interpretation can be cost-attributed per IR kind exactly like the
    symbolic engine; ``None`` (the default) costs one check per node.
    """
    if attr is not None:
        from ..obs.attr import ir_kind
        attr.ir_enter(ir_kind(expr))
    try:
        if isinstance(expr, N.Const):
            return expr.value
        if isinstance(expr, N.Field):
            return fields[expr.name] & _mask(expr.width)
        if isinstance(expr, N.Local):
            return local_values[expr.name]
        if isinstance(expr, N.Pc):
            return ctx.current_pc() & _mask(expr.width)
        if isinstance(expr, N.InputByte):
            # Input is a *side effect* (it advances the input cursor), so
            # it may only appear as the whole right-hand side of an
            # assignment, where evaluation order is unambiguous — exactly
            # the discipline the translator enforces and the symbolic
            # engine assumes.  Accepting it in a nested position here
            # would let concrete and symbolic execution diverge on when
            # the cursor moves.
            raise ValueError(
                "in() must be a whole right-hand side (translator bug)")
        if isinstance(expr, N.ReadReg):
            index = (eval_expr(expr.index, ctx, fields, local_values, attr)
                     if expr.index is not None else None)
            return ctx.read_reg(expr.regfile, index) & _mask(expr.width)
        if isinstance(expr, N.Load):
            addr = eval_expr(expr.addr, ctx, fields, local_values, attr)
            return ctx.load(addr, expr.size) & _mask(expr.width)
        if isinstance(expr, N.BinOp):
            left = eval_expr(expr.left, ctx, fields, local_values, attr)
            right = eval_expr(expr.right, ctx, fields, local_values, attr)
            return _apply_binop(expr.op, left, right, expr.left.width)
        if isinstance(expr, N.UnOp):
            operand = eval_expr(expr.operand, ctx, fields, local_values,
                                attr)
            if expr.op == "not":
                return ~operand & _mask(expr.width)
            if expr.op == "neg":
                return -operand & _mask(expr.width)
            if expr.op == "boolnot":
                return 1 - (operand & 1)
            raise ValueError("unknown unary op %r" % expr.op)
        if isinstance(expr, N.Ext):
            operand = eval_expr(expr.operand, ctx, fields, local_values,
                                attr)
            if expr.kind == "zext":
                return operand
            return _to_signed(operand, expr.operand.width) \
                & _mask(expr.width)
        if isinstance(expr, N.ExtractBits):
            operand = eval_expr(expr.operand, ctx, fields, local_values,
                                attr)
            return (operand >> expr.lo) & _mask(expr.hi - expr.lo + 1)
        if isinstance(expr, N.ConcatBits):
            hi = eval_expr(expr.hi_part, ctx, fields, local_values, attr)
            lo = eval_expr(expr.lo_part, ctx, fields, local_values, attr)
            return (hi << expr.lo_part.width) | lo
        if isinstance(expr, N.IteExpr):
            cond = eval_expr(expr.cond, ctx, fields, local_values, attr)
            branch = expr.then if cond == 1 else expr.other
            return eval_expr(branch, ctx, fields, local_values, attr)
        raise ValueError("unknown expression node %r" % (expr,))
    finally:
        if attr is not None:
            attr.ir_exit()


def _apply_binop(op: str, left: int, right: int, width: int) -> int:
    top = _mask(width)
    if op == "add":
        return (left + right) & top
    if op == "sub":
        return (left - right) & top
    if op == "mul":
        return (left * right) & top
    if op == "udiv":
        return top if right == 0 else left // right
    if op == "urem":
        return left if right == 0 else left % right
    if op == "sdiv":
        sl, sr = _to_signed(left, width), _to_signed(right, width)
        if sr == 0:
            return 1 if sl < 0 else top
        quotient = abs(sl) // abs(sr)
        if (sl < 0) != (sr < 0):
            quotient = -quotient
        return quotient & top
    if op == "srem":
        sl, sr = _to_signed(left, width), _to_signed(right, width)
        if sr == 0:
            return left
        remainder = abs(sl) % abs(sr)
        if sl < 0:
            remainder = -remainder
        return remainder & top
    if op == "and":
        return left & right
    if op == "or":
        return left | right
    if op == "xor":
        return left ^ right
    if op == "shl":
        return (left << right) & top if right < width else 0
    if op == "lshr":
        return left >> right if right < width else 0
    if op == "ashr":
        shift = min(right, width - 1)
        return (_to_signed(left, width) >> shift) & top
    if op == "eq":
        return 1 if left == right else 0
    if op == "ne":
        return 1 if left != right else 0
    if op == "ult":
        return 1 if left < right else 0
    if op == "ule":
        return 1 if left <= right else 0
    if op == "ugt":
        return 1 if left > right else 0
    if op == "uge":
        return 1 if left >= right else 0
    if op == "slt":
        return 1 if _to_signed(left, width) < _to_signed(right, width) else 0
    if op == "sle":
        return 1 if _to_signed(left, width) <= _to_signed(right, width) else 0
    if op == "sgt":
        return 1 if _to_signed(left, width) > _to_signed(right, width) else 0
    if op == "sge":
        return 1 if _to_signed(left, width) >= _to_signed(right, width) else 0
    raise ValueError("unknown binary op %r" % op)


def exec_block(stmts: Sequence[N.Stmt], ctx: MachineContext,
               fields: Dict[str, int], attr=None) -> ExecOutcome:
    """Execute one instruction's IR block concretely.

    ``attr`` opt-in threads a cost-attribution probe through every
    evaluated expression (see :func:`eval_expr`)."""
    outcome = ExecOutcome()
    local_values: Dict[str, int] = {}
    _exec_stmts(stmts, ctx, fields, local_values, outcome, attr)
    return outcome


def _exec_stmts(stmts, ctx, fields, local_values, outcome,
                attr=None) -> None:
    for stmt in stmts:
        if outcome.halted or outcome.trapped:
            return
        if isinstance(stmt, N.SetLocal):
            # in() is only legal as a whole RHS (see eval_expr); handle it
            # at the statement level so the side effect has one fixed spot.
            if isinstance(stmt.value, N.InputByte):
                local_values[stmt.name] = ctx.input_byte() & 0xff
            else:
                local_values[stmt.name] = eval_expr(
                    stmt.value, ctx, fields, local_values, attr)
        elif isinstance(stmt, N.SetReg):
            index = (eval_expr(stmt.index, ctx, fields, local_values, attr)
                     if stmt.index is not None else None)
            if isinstance(stmt.value, N.InputByte):
                value = ctx.input_byte() & 0xff
            else:
                value = eval_expr(stmt.value, ctx, fields, local_values,
                                  attr)
            ctx.write_reg(stmt.regfile, index, value)
        elif isinstance(stmt, N.SetPc):
            outcome.next_pc = eval_expr(stmt.value, ctx, fields,
                                        local_values, attr)
        elif isinstance(stmt, N.Store):
            addr = eval_expr(stmt.addr, ctx, fields, local_values, attr)
            value = eval_expr(stmt.value, ctx, fields, local_values, attr)
            ctx.store(addr, value, stmt.size)
        elif isinstance(stmt, N.Output):
            ctx.output_byte(eval_expr(stmt.value, ctx, fields,
                                      local_values, attr) & 0xff)
        elif isinstance(stmt, N.Halt):
            outcome.halted = True
            outcome.exit_code = eval_expr(stmt.code, ctx, fields,
                                          local_values, attr)
        elif isinstance(stmt, N.Trap):
            outcome.trapped = True
            outcome.trap_code = eval_expr(stmt.code, ctx, fields,
                                          local_values, attr)
        elif isinstance(stmt, N.IfStmt):
            cond = eval_expr(stmt.cond, ctx, fields, local_values, attr)
            body = stmt.then_body if cond == 1 else stmt.else_body
            _exec_stmts(body, ctx, fields, local_values, outcome, attr)
        else:
            raise ValueError("unknown statement node %r" % (stmt,))
