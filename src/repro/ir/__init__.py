"""Register-transfer IR: the retargeting interface between ADL and engines."""

from . import nodes  # noqa: F401
from .interp import ExecOutcome, MachineContext, eval_expr, exec_block  # noqa: F401
from .printer import count_nodes, format_block, format_expr  # noqa: F401
from .validate import IrError, validate_block, validate_expr  # noqa: F401
