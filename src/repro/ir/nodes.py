"""The register-transfer IR that ADL instruction semantics compile to.

Each ADL ``instruction`` is translated once into a small list of IR
statements (:class:`Stmt` subclasses) over IR expressions (:class:`Expr`
subclasses).  The IR is the *retargeting interface* of the system: both the
concrete simulator (:mod:`repro.isa.simulator`) and the symbolic executor
(:mod:`repro.core.executor`) are interpreters over this IR and never see
ISA-specific code.

Design notes
------------
* Expressions carry an explicit ``width`` (bits); widths are checked by
  :func:`repro.ir.validate.validate_block` after translation.
* ``Field`` references name instruction-encoding fields/operands; they are
  bound to concrete integers at decode time, so one IR block per
  *instruction definition* serves every decoded instance.
* Reading ``Pc`` during semantics yields the address of the *current*
  instruction; assigning :class:`SetPc` sets the next pc.  If no ``SetPc``
  executes, the machine falls through to ``address + length``.
* Environment interaction is reduced to three effects: ``InputByte`` (an
  expression: the next byte of program input), :class:`Output` (emit a
  byte), and :class:`Halt` (stop with an exit code).  The machine-code
  workloads use ISA instructions that map onto these.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

__all__ = [
    "Expr", "Const", "Field", "Local", "ReadReg", "Pc", "Load", "InputByte",
    "BinOp", "UnOp", "Ext", "ExtractBits", "ConcatBits", "IteExpr",
    "Stmt", "SetLocal", "SetReg", "SetPc", "Store", "Output", "Halt",
    "Trap", "IfStmt",
    "BINARY_OPS", "COMPARISON_OPS", "UNARY_OPS",
]

# Binary operators whose result width equals the operand width.
BINARY_OPS = frozenset({
    "add", "sub", "mul", "udiv", "urem", "sdiv", "srem",
    "and", "or", "xor", "shl", "lshr", "ashr",
})

# Comparisons produce width-1 booleans.
COMPARISON_OPS = frozenset({
    "eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge",
})

UNARY_OPS = frozenset({"not", "neg", "boolnot"})


class Expr:
    """Base class for IR expressions (immutable)."""

    __slots__ = ("width",)

    def __init__(self, width: int):
        self.width = width

    def children(self) -> Tuple["Expr", ...]:
        return ()


class Const(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, width: int):
        super().__init__(width)
        self.value = value & ((1 << width) - 1)

    def __repr__(self):
        return "Const({:#x}, {})".format(self.value, self.width)


class Field(Expr):
    """A decoded instruction field or derived operand, bound at decode time."""

    __slots__ = ("name",)

    def __init__(self, name: str, width: int):
        super().__init__(width)
        self.name = name

    def __repr__(self):
        return "Field({!r}, {})".format(self.name, self.width)


class Local(Expr):
    """A temporary introduced by ``local`` in the semantics block."""

    __slots__ = ("name",)

    def __init__(self, name: str, width: int):
        super().__init__(width)
        self.name = name

    def __repr__(self):
        return "Local({!r}, {})".format(self.name, self.width)


class ReadReg(Expr):
    """Read ``regfile[index]`` (or a single register, index ``None``)."""

    __slots__ = ("regfile", "index")

    def __init__(self, regfile: str, index: Optional[Expr], width: int):
        super().__init__(width)
        self.regfile = regfile
        self.index = index

    def children(self):
        return (self.index,) if self.index is not None else ()

    def __repr__(self):
        return "ReadReg({!r}, {!r})".format(self.regfile, self.index)


class Pc(Expr):
    """The address of the currently executing instruction."""

    __slots__ = ()

    def __repr__(self):
        return "Pc({})".format(self.width)


class Load(Expr):
    """Little/big-endian memory load of ``size`` bytes (width = 8*size)."""

    __slots__ = ("addr", "size")

    def __init__(self, addr: Expr, size: int):
        super().__init__(8 * size)
        self.addr = addr
        self.size = size

    def children(self):
        return (self.addr,)

    def __repr__(self):
        return "Load({!r}, {})".format(self.addr, self.size)


class InputByte(Expr):
    """The next byte of program input (the symbolic-input source)."""

    __slots__ = ()

    def __init__(self):
        super().__init__(8)

    def __repr__(self):
        return "InputByte()"


class BinOp(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, width: int):
        super().__init__(width)
        self.op = op
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def __repr__(self):
        return "BinOp({!r}, {!r}, {!r})".format(self.op, self.left, self.right)


class UnOp(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, width: int):
        super().__init__(width)
        self.op = op
        self.operand = operand

    def children(self):
        return (self.operand,)

    def __repr__(self):
        return "UnOp({!r}, {!r})".format(self.op, self.operand)


class Ext(Expr):
    """Zero- or sign-extension to ``width`` bits (kind: 'zext'/'sext')."""

    __slots__ = ("kind", "operand")

    def __init__(self, kind: str, operand: Expr, width: int):
        super().__init__(width)
        self.kind = kind
        self.operand = operand

    def children(self):
        return (self.operand,)

    def __repr__(self):
        return "Ext({!r}, {!r}, {})".format(self.kind, self.operand, self.width)


class ExtractBits(Expr):
    __slots__ = ("operand", "hi", "lo")

    def __init__(self, operand: Expr, hi: int, lo: int):
        super().__init__(hi - lo + 1)
        self.operand = operand
        self.hi = hi
        self.lo = lo

    def children(self):
        return (self.operand,)

    def __repr__(self):
        return "ExtractBits({!r}, {}, {})".format(self.operand, self.hi, self.lo)


class ConcatBits(Expr):
    """Concatenation; ``hi`` supplies the most significant bits."""

    __slots__ = ("hi_part", "lo_part")

    def __init__(self, hi_part: Expr, lo_part: Expr):
        super().__init__(hi_part.width + lo_part.width)
        self.hi_part = hi_part
        self.lo_part = lo_part

    def children(self):
        return (self.hi_part, self.lo_part)

    def __repr__(self):
        return "ConcatBits({!r}, {!r})".format(self.hi_part, self.lo_part)


class IteExpr(Expr):
    __slots__ = ("cond", "then", "other")

    def __init__(self, cond: Expr, then: Expr, other: Expr):
        super().__init__(then.width)
        self.cond = cond
        self.then = then
        self.other = other

    def children(self):
        return (self.cond, self.then, self.other)

    def __repr__(self):
        return "IteExpr({!r}, {!r}, {!r})".format(self.cond, self.then, self.other)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    """Base class for IR statements."""

    __slots__ = ()


class SetLocal(Stmt):
    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Expr):
        self.name = name
        self.value = value

    def __repr__(self):
        return "SetLocal({!r}, {!r})".format(self.name, self.value)


class SetReg(Stmt):
    """Write ``regfile[index] = value`` (index ``None`` for single regs)."""

    __slots__ = ("regfile", "index", "value")

    def __init__(self, regfile: str, index: Optional[Expr], value: Expr):
        self.regfile = regfile
        self.index = index
        self.value = value

    def __repr__(self):
        return "SetReg({!r}, {!r}, {!r})".format(
            self.regfile, self.index, self.value)


class SetPc(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Expr):
        self.value = value

    def __repr__(self):
        return "SetPc({!r})".format(self.value)


class Store(Stmt):
    __slots__ = ("addr", "value", "size")

    def __init__(self, addr: Expr, value: Expr, size: int):
        self.addr = addr
        self.value = value
        self.size = size

    def __repr__(self):
        return "Store({!r}, {!r}, {})".format(self.addr, self.value, self.size)


class Output(Stmt):
    """Emit the low byte of ``value`` to the program output stream."""

    __slots__ = ("value",)

    def __init__(self, value: Expr):
        self.value = value

    def __repr__(self):
        return "Output({!r})".format(self.value)


class Halt(Stmt):
    """Stop the machine with an exit code."""

    __slots__ = ("code",)

    def __init__(self, code: Expr):
        self.code = code

    def __repr__(self):
        return "Halt({!r})".format(self.code)


class Trap(Stmt):
    """Signal a program-level failure (the defect suite's assert-fail)."""

    __slots__ = ("code",)

    def __init__(self, code: Expr):
        self.code = code

    def __repr__(self):
        return "Trap({!r})".format(self.code)


class IfStmt(Stmt):
    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond: Expr, then_body: Sequence[Stmt],
                 else_body: Sequence[Stmt] = ()):
        self.cond = cond
        self.then_body = tuple(then_body)
        self.else_body = tuple(else_body)

    def __repr__(self):
        return "IfStmt({!r}, {!r}, {!r})".format(
            self.cond, self.then_body, self.else_body)
