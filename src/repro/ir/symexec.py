"""Symbolic-state evaluation of IR blocks over a fully symbolic machine.

The reference-semantics half of the translation validator
(:mod:`repro.verify`): where :mod:`repro.ir.interp` executes one rule
over a *concrete* :class:`~repro.ir.interp.MachineContext`, this module
executes the same statements over terms — symbolic operand fields,
symbolic registers/memory/input supplied by a
:class:`SymbolicMachine` — and returns every feasible path's machine
state and outcome.

Semantics are the interpreter's, lifted bit-for-bit:

* arithmetic maps onto the :mod:`repro.smt.terms` constructors, whose
  division/shift edge cases mirror ``interp._apply_binop`` (both follow
  SMT-LIB),
* a constant-condition ``ite``/``if`` evaluates only the chosen arm
  (interpreter laziness), a symbolic one evaluates both arms — sound
  here because every machine read a :class:`SymbolicMachine` serves is
  pure (memoized pre-state variables), so the unchosen arm has no
  machine-visible effect,
* a symbolic ``if`` statement *forks*: each branch continues on its own
  machine copy under the branch guard, mirroring the engine's path
  enumeration (feasibility pruning is deliberately absent — the
  validator discharges infeasible path pairs during obligation
  matching instead),
* ``in()`` is only legal as a whole assignment right-hand side — the
  input discipline shared by the interpreter, engine and both codegens.

This module knows nothing about solvers or lint findings; it is the
``ir/`` entry point the validator builds on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..smt import terms as T
from . import nodes as N

__all__ = ["SymbolicMachine", "SymOutcome", "SymExecError", "exec_block"]


class SymExecError(Exception):
    """The block is not symbolically executable (malformed IR)."""


class SymbolicMachine:
    """Machine-state interface the symbolic evaluator drives.

    The validator's implementation (:mod:`repro.verify.state`) serves
    reads from a shared pre-state variable environment and records
    writes into per-path effect logs; any other implementation with
    this surface works.  ``index`` arguments are ``None`` for single
    registers, otherwise index *terms*.
    """

    def read_reg(self, regfile: str,
                 index: Optional[T.Term]) -> T.Term:
        raise NotImplementedError

    def write_reg(self, regfile: str, index: Optional[T.Term],
                  value: T.Term) -> None:
        raise NotImplementedError

    def load(self, addr: T.Term, size: int) -> T.Term:
        raise NotImplementedError

    def store(self, addr: T.Term, value: T.Term, size: int) -> None:
        raise NotImplementedError

    def input_byte(self) -> T.Term:
        raise NotImplementedError

    def output_byte(self, value: T.Term) -> None:
        raise NotImplementedError

    def pc(self, width: int) -> T.Term:
        raise NotImplementedError

    def fork(self) -> "SymbolicMachine":
        raise NotImplementedError


class SymOutcome:
    """Per-path control outcome — the symbolic ``ExecOutcome``."""

    __slots__ = ("next_pc", "halted", "exit_code", "trapped", "trap_code")

    def __init__(self) -> None:
        self.next_pc: Optional[T.Term] = None
        self.halted = False
        self.exit_code: Optional[T.Term] = None
        self.trapped = False
        self.trap_code: Optional[T.Term] = None

    def copy(self) -> "SymOutcome":
        clone = SymOutcome()
        for slot in self.__slots__:
            setattr(clone, slot, getattr(self, slot))
        return clone


#: One finished path: (machine, outcome, guard terms along the path).
Path = Tuple[SymbolicMachine, SymOutcome, Tuple[T.Term, ...]]

_BINOPS = {
    "add": T.add, "sub": T.sub, "mul": T.mul, "udiv": T.udiv,
    "urem": T.urem, "sdiv": T.sdiv, "srem": T.srem, "and": T.and_,
    "or": T.or_, "xor": T.xor, "shl": T.shl, "lshr": T.lshr,
    "ashr": T.ashr, "eq": T.eq, "ne": T.ne, "ult": T.ult, "ule": T.ule,
    "ugt": T.ugt, "uge": T.uge, "slt": T.slt, "sle": T.sle,
    "sgt": T.sgt, "sge": T.sge,
}


def eval_expr(expr: N.Expr, machine: SymbolicMachine,
              fields: Dict[str, T.Term],
              local_values: Dict[str, T.Term]) -> T.Term:
    """Lift one expression to a term (mirrors ``interp.eval_expr``)."""
    if isinstance(expr, N.Const):
        return T.bv(expr.value, expr.width)
    if isinstance(expr, N.Field):
        try:
            return fields[expr.name]
        except KeyError:
            raise SymExecError("unknown field %r" % expr.name)
    if isinstance(expr, N.Local):
        try:
            return local_values[expr.name]
        except KeyError:
            raise SymExecError("local %r read before assignment"
                               % expr.name)
    if isinstance(expr, N.Pc):
        return machine.pc(expr.width)
    if isinstance(expr, N.ReadReg):
        index = None
        if expr.index is not None:
            index = eval_expr(expr.index, machine, fields, local_values)
        return machine.read_reg(expr.regfile, index)
    if isinstance(expr, N.Load):
        addr = eval_expr(expr.addr, machine, fields, local_values)
        return machine.load(addr, expr.size)
    if isinstance(expr, N.BinOp):
        left = eval_expr(expr.left, machine, fields, local_values)
        right = eval_expr(expr.right, machine, fields, local_values)
        return _BINOPS[expr.op](left, right)
    if isinstance(expr, N.UnOp):
        operand = eval_expr(expr.operand, machine, fields, local_values)
        if expr.op == "neg":
            return T.neg(operand)
        if expr.op in ("not", "boolnot"):
            return T.not_(operand)
        raise SymExecError("unknown unary op %r" % expr.op)
    if isinstance(expr, N.Ext):
        operand = eval_expr(expr.operand, machine, fields, local_values)
        extra = expr.width - operand.width
        return T.zext(operand, extra) if expr.kind == "zext" \
            else T.sext(operand, extra)
    if isinstance(expr, N.ExtractBits):
        operand = eval_expr(expr.operand, machine, fields, local_values)
        return T.extract(operand, expr.hi, expr.lo)
    if isinstance(expr, N.ConcatBits):
        hi_part = eval_expr(expr.hi_part, machine, fields, local_values)
        lo_part = eval_expr(expr.lo_part, machine, fields, local_values)
        return T.concat(hi_part, lo_part)
    if isinstance(expr, N.IteExpr):
        cond = eval_expr(expr.cond, machine, fields, local_values)
        if cond.is_const():
            chosen = expr.then if cond.value == 1 else expr.other
            return eval_expr(chosen, machine, fields, local_values)
        then = eval_expr(expr.then, machine, fields, local_values)
        other = eval_expr(expr.other, machine, fields, local_values)
        return T.ite(cond, then, other)
    if isinstance(expr, N.InputByte):
        raise SymExecError(
            "in() may only be the entire right-hand side of an "
            "assignment (input discipline, repro.adl.translate)")
    raise SymExecError("unknown IR expression %r" % (expr,))


def exec_block(stmts, machine: SymbolicMachine,
               fields: Dict[str, T.Term]) -> List[Path]:
    """Execute one rule's statements; returns every path's
    ``(machine, outcome, guards)``."""
    return _run(machine, [(tuple(stmts), 0)], {}, SymOutcome(), (),
                fields)


def _run(machine: SymbolicMachine, frames, local_values,
         outcome: SymOutcome, guards: Tuple[T.Term, ...],
         fields: Dict[str, T.Term]) -> List[Path]:
    while frames:
        stmts, index = frames[-1]
        if index >= len(stmts):
            frames.pop()
            continue
        frames[-1] = (stmts, index + 1)
        stmt = stmts[index]
        if isinstance(stmt, N.SetLocal):
            local_values[stmt.name] = _rhs(stmt.value, machine, fields,
                                           local_values)
        elif isinstance(stmt, N.SetReg):
            reg_index = None
            if stmt.index is not None:
                reg_index = eval_expr(stmt.index, machine, fields,
                                      local_values)
            value = _rhs(stmt.value, machine, fields, local_values)
            machine.write_reg(stmt.regfile, reg_index, value)
        elif isinstance(stmt, N.SetPc):
            outcome.next_pc = eval_expr(stmt.value, machine, fields,
                                        local_values)
        elif isinstance(stmt, N.Store):
            addr = eval_expr(stmt.addr, machine, fields, local_values)
            value = eval_expr(stmt.value, machine, fields, local_values)
            machine.store(addr, value, stmt.size)
        elif isinstance(stmt, N.Output):
            machine.output_byte(eval_expr(stmt.value, machine, fields,
                                          local_values))
        elif isinstance(stmt, N.Halt):
            outcome.halted = True
            outcome.exit_code = eval_expr(stmt.code, machine, fields,
                                          local_values)
            return [(machine, outcome, guards)]
        elif isinstance(stmt, N.Trap):
            outcome.trapped = True
            outcome.trap_code = eval_expr(stmt.code, machine, fields,
                                          local_values)
            return [(machine, outcome, guards)]
        elif isinstance(stmt, N.IfStmt):
            cond = eval_expr(stmt.cond, machine, fields, local_values)
            if cond.is_const():
                body = stmt.then_body if cond.value == 1 \
                    else stmt.else_body
                if body:
                    frames.append((tuple(body), 0))
                continue
            return _fork(machine, stmt, cond, frames, local_values,
                         outcome, guards, fields)
        else:
            raise SymExecError("unknown IR statement %r" % (stmt,))
    return [(machine, outcome, guards)]


def _fork(machine: SymbolicMachine, stmt: N.IfStmt, cond: T.Term,
          frames, local_values, outcome: SymOutcome,
          guards: Tuple[T.Term, ...],
          fields: Dict[str, T.Term]) -> List[Path]:
    results: List[Path] = []
    branches = ((cond, stmt.then_body), (T.not_(cond), stmt.else_body))
    for position, (branch_cond, body) in enumerate(branches):
        last = position == len(branches) - 1
        branch_machine = machine if last else machine.fork()
        branch_frames = [(block, idx) for block, idx in frames]
        if body:
            branch_frames.append((tuple(body), 0))
        results.extend(_run(branch_machine, branch_frames,
                            dict(local_values), outcome.copy(),
                            guards + (branch_cond,), fields))
    return results


def _rhs(value: N.Expr, machine: SymbolicMachine,
         fields: Dict[str, T.Term],
         local_values: Dict[str, T.Term]) -> T.Term:
    """Assignment right-hand side — the one place ``in()`` is legal."""
    if isinstance(value, N.InputByte):
        return machine.input_byte()
    return eval_expr(value, machine, fields, local_values)
