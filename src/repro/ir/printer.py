"""Pretty-printing of IR blocks (debugging aid and Table 1 artifact counts)."""

from __future__ import annotations

from typing import List, Sequence

from . import nodes as N

__all__ = ["format_expr", "format_block", "count_nodes"]

_BINOP_SYMBOLS = {
    "add": "+", "sub": "-", "mul": "*", "udiv": "/u", "urem": "%u",
    "sdiv": "/s", "srem": "%s", "and": "&", "or": "|", "xor": "^",
    "shl": "<<", "lshr": ">>u", "ashr": ">>s",
    "eq": "==", "ne": "!=", "ult": "<u", "ule": "<=u", "ugt": ">u",
    "uge": ">=u", "slt": "<s", "sle": "<=s", "sgt": ">s", "sge": ">=s",
}


def format_expr(expr: N.Expr) -> str:
    if isinstance(expr, N.Const):
        return "{:#x}".format(expr.value)
    if isinstance(expr, N.Field):
        return "$" + expr.name
    if isinstance(expr, N.Local):
        return expr.name
    if isinstance(expr, N.Pc):
        return "pc"
    if isinstance(expr, N.InputByte):
        return "in()"
    if isinstance(expr, N.ReadReg):
        if expr.index is None:
            return expr.regfile
        return "{}[{}]".format(expr.regfile, format_expr(expr.index))
    if isinstance(expr, N.Load):
        return "load({}, {})".format(format_expr(expr.addr), expr.size)
    if isinstance(expr, N.BinOp):
        return "({} {} {})".format(format_expr(expr.left),
                                   _BINOP_SYMBOLS[expr.op],
                                   format_expr(expr.right))
    if isinstance(expr, N.UnOp):
        symbol = {"not": "~", "neg": "-", "boolnot": "!"}[expr.op]
        return "{}{}".format(symbol, format_expr(expr.operand))
    if isinstance(expr, N.Ext):
        return "{}({}, {})".format(expr.kind, format_expr(expr.operand),
                                   expr.width)
    if isinstance(expr, N.ExtractBits):
        return "{}[{}:{}]".format(format_expr(expr.operand), expr.hi, expr.lo)
    if isinstance(expr, N.ConcatBits):
        return "({} :: {})".format(format_expr(expr.hi_part),
                                   format_expr(expr.lo_part))
    if isinstance(expr, N.IteExpr):
        return "({} ? {} : {})".format(format_expr(expr.cond),
                                       format_expr(expr.then),
                                       format_expr(expr.other))
    return repr(expr)


def format_block(stmts: Sequence[N.Stmt], indent: int = 0) -> str:
    lines: List[str] = []
    pad = "  " * indent
    for stmt in stmts:
        if isinstance(stmt, N.SetLocal):
            lines.append("{}{} = {}".format(pad, stmt.name,
                                            format_expr(stmt.value)))
        elif isinstance(stmt, N.SetReg):
            target = stmt.regfile
            if stmt.index is not None:
                target = "{}[{}]".format(stmt.regfile, format_expr(stmt.index))
            lines.append("{}{} = {}".format(pad, target,
                                            format_expr(stmt.value)))
        elif isinstance(stmt, N.SetPc):
            lines.append("{}pc = {}".format(pad, format_expr(stmt.value)))
        elif isinstance(stmt, N.Store):
            lines.append("{}store({}, {}, {})".format(
                pad, format_expr(stmt.addr), format_expr(stmt.value),
                stmt.size))
        elif isinstance(stmt, N.Output):
            lines.append("{}out({})".format(pad, format_expr(stmt.value)))
        elif isinstance(stmt, N.Halt):
            lines.append("{}halt({})".format(pad, format_expr(stmt.code)))
        elif isinstance(stmt, N.Trap):
            lines.append("{}trap({})".format(pad, format_expr(stmt.code)))
        elif isinstance(stmt, N.IfStmt):
            lines.append("{}if {} {{".format(pad, format_expr(stmt.cond)))
            lines.append(format_block(stmt.then_body, indent + 1))
            if stmt.else_body:
                lines.append("{}}} else {{".format(pad))
                lines.append(format_block(stmt.else_body, indent + 1))
            lines.append("{}}}".format(pad))
        else:
            lines.append("{}{!r}".format(pad, stmt))
    return "\n".join(lines)


def count_nodes(stmts: Sequence[N.Stmt]) -> int:
    """Total number of IR nodes in a block (Table 1's 'IR ops' column)."""
    total = 0

    def walk_expr(expr: N.Expr) -> None:
        nonlocal total
        total += 1
        for child in expr.children():
            walk_expr(child)

    def walk_stmt(stmt: N.Stmt) -> None:
        nonlocal total
        total += 1
        if isinstance(stmt, (N.SetLocal, N.Output)):
            walk_expr(stmt.value)
        elif isinstance(stmt, N.SetReg):
            if stmt.index is not None:
                walk_expr(stmt.index)
            walk_expr(stmt.value)
        elif isinstance(stmt, N.SetPc):
            walk_expr(stmt.value)
        elif isinstance(stmt, N.Store):
            walk_expr(stmt.addr)
            walk_expr(stmt.value)
        elif isinstance(stmt, (N.Halt, N.Trap)):
            walk_expr(stmt.code)
        elif isinstance(stmt, N.IfStmt):
            walk_expr(stmt.cond)
            for inner in stmt.then_body:
                walk_stmt(inner)
            for inner in stmt.else_body:
                walk_stmt(inner)

    for stmt in stmts:
        walk_stmt(stmt)
    return total
