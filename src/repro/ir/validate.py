"""Structural/width validation of translated IR blocks.

Run once per instruction definition after ADL translation: catches width
mismatches and malformed nodes at model-build time instead of mid-execution.
"""

from __future__ import annotations

from typing import Sequence

from . import nodes as N

__all__ = ["IrError", "validate_block", "validate_expr"]


class IrError(Exception):
    """A malformed IR block (translation bug or inconsistent ADL spec)."""


def validate_expr(expr: N.Expr) -> None:
    if expr.width <= 0:
        raise IrError("expression %r has non-positive width" % (expr,))
    if isinstance(expr, N.BinOp):
        validate_expr(expr.left)
        validate_expr(expr.right)
        if expr.left.width != expr.right.width:
            raise IrError("binop %s mixes widths %d and %d"
                          % (expr.op, expr.left.width, expr.right.width))
        if expr.op in N.BINARY_OPS:
            if expr.width != expr.left.width:
                raise IrError("binop %s result width %d != operand width %d"
                              % (expr.op, expr.width, expr.left.width))
        elif expr.op in N.COMPARISON_OPS:
            if expr.width != 1:
                raise IrError("comparison %s must have width 1" % expr.op)
        else:
            raise IrError("unknown binary operator %r" % expr.op)
    elif isinstance(expr, N.UnOp):
        validate_expr(expr.operand)
        if expr.op not in N.UNARY_OPS:
            raise IrError("unknown unary operator %r" % expr.op)
        if expr.op == "boolnot":
            if expr.operand.width != 1 or expr.width != 1:
                raise IrError("boolnot requires width-1 operand and result")
        elif expr.width != expr.operand.width:
            raise IrError("unop %s changes width" % expr.op)
    elif isinstance(expr, N.Ext):
        validate_expr(expr.operand)
        if expr.kind not in ("zext", "sext"):
            raise IrError("unknown extension kind %r" % expr.kind)
        if expr.width < expr.operand.width:
            raise IrError("extension narrows from %d to %d bits"
                          % (expr.operand.width, expr.width))
    elif isinstance(expr, N.ExtractBits):
        validate_expr(expr.operand)
        if not (0 <= expr.lo <= expr.hi < expr.operand.width):
            raise IrError("extract [%d:%d] out of range for width %d"
                          % (expr.hi, expr.lo, expr.operand.width))
    elif isinstance(expr, N.ConcatBits):
        validate_expr(expr.hi_part)
        validate_expr(expr.lo_part)
    elif isinstance(expr, N.IteExpr):
        validate_expr(expr.cond)
        validate_expr(expr.then)
        validate_expr(expr.other)
        if expr.cond.width != 1:
            raise IrError("ite condition must have width 1")
        if expr.then.width != expr.other.width:
            raise IrError("ite branches have widths %d and %d"
                          % (expr.then.width, expr.other.width))
    elif isinstance(expr, N.Load):
        validate_expr(expr.addr)
        if expr.size not in (1, 2, 4, 8):
            raise IrError("unsupported load size %d" % expr.size)
    elif isinstance(expr, N.ReadReg):
        if expr.index is not None:
            validate_expr(expr.index)
    elif isinstance(expr, N.InputByte):
        # Nested in() would make the input-cursor side effect's timing
        # depend on expression evaluation order; both execution engines
        # (and the specializer) only support it as a whole assignment
        # RHS, where validate_block admits it explicitly.
        raise IrError("in() may only appear as a whole right-hand side")
    elif isinstance(expr, (N.Const, N.Field, N.Local, N.Pc)):
        pass
    else:
        raise IrError("unknown expression node %r" % (expr,))


def validate_block(stmts: Sequence[N.Stmt]) -> None:
    for stmt in stmts:
        if isinstance(stmt, N.SetLocal):
            # in() is admitted only here and in SetReg, as the whole RHS.
            if not isinstance(stmt.value, N.InputByte):
                validate_expr(stmt.value)
        elif isinstance(stmt, N.SetReg):
            if stmt.index is not None:
                validate_expr(stmt.index)
            if not isinstance(stmt.value, N.InputByte):
                validate_expr(stmt.value)
        elif isinstance(stmt, (N.SetPc, N.Output, N.Halt, N.Trap)):
            validate_expr(stmt.value if hasattr(stmt, "value") else stmt.code)
        elif isinstance(stmt, N.Store):
            validate_expr(stmt.addr)
            validate_expr(stmt.value)
            if stmt.size not in (1, 2, 4, 8):
                raise IrError("unsupported store size %d" % stmt.size)
            if stmt.value.width != 8 * stmt.size:
                raise IrError("store of %d-bit value with size %d bytes"
                              % (stmt.value.width, stmt.size))
        elif isinstance(stmt, N.IfStmt):
            validate_expr(stmt.cond)
            if stmt.cond.width != 1:
                raise IrError("if condition must have width 1")
            validate_block(stmt.then_body)
            validate_block(stmt.else_body)
        else:
            raise IrError("unknown statement node %r" % (stmt,))
