"""Command-line interface: ``python -m repro <command> ...``.

Subcommands::

    isas                        list built-in ISA models
    asm   <isa> <file.s>        assemble; print a hex dump and symbols
    dis   <isa> <file.s>        assemble, then disassemble (round-trip view)
    run   <isa> <file.s>        run concretely on the simulator
    trace <isa> <file.s>        run concretely with a full execution trace
    explore <isa> <file.s>      symbolic execution; report paths + defects
    cfg   <isa> <file.s>        recover and print the control-flow graph
    stats <run.jsonl>           pretty-print a saved telemetry run
    hot <run.jsonl|run-id>      cost-attribution views: hottest ADL
                                rules / IR kinds / branch sites,
                                spec heat maps (``--annotate``),
                                flamegraphs (``--flame``), Chrome
                                traces (``--trace``); needs ``--attr``
                                at explore/record time
    tree  <run.jsonl>           reconstruct the execution tree of a run
                                (``--format ascii|dot|json``, ``--out``)
    speccov <run.jsonl>         ADL spec coverage of a run — which
                                semantic rules ran (``--min-ratio`` CI
                                gate, ``--annotate`` spec margin view)
    top <run.jsonl>             live TTY view of a running exploration
                                (tails the ``--telemetry-out`` file for
                                ``health`` events; ``--once`` for a
                                single snapshot)
    metrics <run.jsonl>         metrics of a saved run (``--prom`` for
                                Prometheus text exposition)
    diffstats <A> <B>           diff two runs' metrics/health series;
                                flags regressions above ``--threshold``
                                (exit 3 when any are found; ``--json``
                                for the machine-readable payload)
    bench list|run|compare|history
                                the performance observatory: registered
                                benchmark suites with declarative
                                gates, BENCH_<n>.json reports, the
                                run-store perf-history ledger and the
                                median+MAD statistical regression gate
                                (exit 3 on regression; see
                                docs/OBSERVABILITY.md)
    lint <spec|--all>           static verification of ADL specs:
                                structural + SMT proof passes with
                                witness words (``--format
                                text|json|sarif``, ``--baseline``,
                                ``--list-passes``; exit 3 on new
                                errors; see docs/LINT.md)

Common options: ``--input TEXT`` (program input; ``\\xNN`` escapes),
``--base ADDR``, ``--max-steps N``.  ``explore`` adds ``--strategy``,
``--merge``, ``--taint``, ``--uninit``, ``--region START:SIZE``,
``--max-seconds`` (wall-clock deadline, honest ``deadline`` stop
reason), plus the observability flags ``--telemetry-out FILE.jsonl``
(structured event trace; see docs/OBSERVABILITY.md), ``--profile``
(per-phase time breakdown), ``--attr [sampled|full]`` (rule-level cost
attribution with ``--attr-every N`` sampling), ``--health`` (live
sampler + watchdog, with
``--health-every`` / ``--frontier-budget`` / ``--on-pressure``) and
``--serve-metrics PORT`` (live Prometheus endpoint on localhost).

The telemetry readers (``stats``, ``tree``, ``speccov``, ``top``,
``metrics``, ``diffstats``) share one loader: a missing, empty or
unparseable run file is a one-line error on stderr and exit code 1
(never a traceback); a truncated trailing line — the usual artifact of
a killed run — is skipped with a warning and the remaining events are
used.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .core import (Engine, EngineConfig, measure, solver_cache_summary,
                   trace_run)
from .isa import assemble, build, format_instruction, run_image
from .isa.cfg import recover_cfg
from .obs import (AttrConfig, ExecutionTree, HealthConfig, JsonlSink,
                  MetricsServer, Obs, SpecCoverage, TelemetryError,
                  compare_runs, health_summary_line, load_run,
                  render_prom_snapshot)
from .obs.attr import annotate_spec_costs, hot_report, hot_rules_lines
from .obs.flame import chrome_trace, render_collapsed
from .runstore import (RunStore, RunStoreError, cached_explore,
                       replay_run, spec_digest)

__all__ = ["main"]


def _parse_input(text: str) -> bytes:
    return text.encode("utf-8").decode("unicode_escape").encode("latin-1")


def _load(args):
    model = build(args.isa)
    with open(args.source) as handle:
        image = assemble(model, handle.read(), base=args.base)
    return model, image


def _add_common(parser):
    parser.add_argument("isa", help="built-in ISA name (see 'isas')")
    parser.add_argument("source", help="assembly source file")
    parser.add_argument("--base", type=lambda s: int(s, 0), default=0x1000,
                        help="load address (default 0x1000)")
    parser.add_argument("--input", default="",
                        help=r"program input bytes (supports \xNN escapes)")
    parser.add_argument("--max-steps", type=int, default=100000)


def cmd_isas(_args) -> int:
    from .adl import builtin_spec_names
    for name in builtin_spec_names():
        model = build(name)
        print("%-8s %2d-bit %-7s %3d instructions, lengths %s"
              % (name, model.wordsize, model.endian,
                 len(model.instructions),
                 "/".join(str(n) for n in model.instruction_lengths)))
    return 0


def cmd_asm(args) -> int:
    model, image = _load(args)
    print("; %s, %d bytes at %#x, entry %#x"
          % (model.name, len(image.data), image.base, image.entry))
    data = bytes(image.data)
    for offset in range(0, len(data), 16):
        chunk = data[offset:offset + 16]
        print("%08x  %s" % (image.base + offset,
                            " ".join("%02x" % b for b in chunk)))
    if image.symbols:
        print("; symbols:")
        for name, value in sorted(image.symbols.items(),
                                  key=lambda item: item[1]):
            print(";   %-20s %#x" % (name, value))
    return 0


def cmd_dis(args) -> int:
    model, image = _load(args)
    address = image.base
    end = image.base + len(image.data)
    data = bytes(image.data)
    while address < end:
        window = data[address - image.base:
                      address - image.base + model.decoder.max_length]
        try:
            decoded = model.decoder.decode_bytes(window, address)
        except Exception:
            print("%08x  %02x                (data)"
                  % (address, data[address - image.base]))
            address += 1
            continue
        raw = " ".join("%02x" % b for b in window[:decoded.length])
        print("%08x  %-12s  %s" % (address, raw,
                                   format_instruction(model, decoded)))
        address += decoded.length
    return 0


def cmd_run(args) -> int:
    model, image = _load(args)
    sim = run_image(model, image, input_bytes=_parse_input(args.input),
                    max_steps=args.max_steps,
                    compiled=getattr(args, "compiled", False))
    if sim.output:
        sys.stdout.write("output: %r\n" % bytes(sim.output))
    if sim.trapped:
        print("TRAP %d after %d instructions" % (sim.trap_code,
                                                 sim.instruction_count))
        return 2
    if sim.halted:
        print("halted with code %d after %d instructions"
              % (sim.exit_code, sim.instruction_count))
        return sim.exit_code if sim.exit_code else 0
    print("step budget exhausted at pc=%#x" % sim.state.pc)
    return 1


def cmd_trace(args) -> int:
    model, image = _load(args)
    tracer = trace_run(model, image, input_bytes=_parse_input(args.input),
                       max_steps=args.max_steps)
    print(tracer.format())
    sim = tracer.simulator
    status = ("TRAP %d" % sim.trap_code if sim.trapped
              else "halt %s" % sim.exit_code if sim.halted
              else "budget exhausted")
    print("; %s after %d instructions" % (status, len(tracer.entries)))
    return 0


def _parse_regions(args):
    """``--region START:SIZE`` strings -> (start, size, track_uninit)."""
    rows = []
    for region in args.region or ():
        start_text, _, size_text = region.partition(":")
        rows.append((int(start_text, 0), int(size_text, 0),
                     bool(args.uninit)))
    return rows


def cmd_explore(args) -> int:
    model, image = _load(args)
    # Observability: counters always; profiler with --profile (and with
    # --telemetry-out, so the saved run carries a per-phase breakdown);
    # JSONL event sink with --telemetry-out.
    want_profile = getattr(args, "profile", False)
    telemetry_out = getattr(args, "telemetry_out", None)
    obs = Obs(metrics=True, profile=want_profile or bool(telemetry_out))
    sink = None
    if telemetry_out:
        sink = JsonlSink(telemetry_out,
                         env={"argv": sys.argv[1:],
                              "spec_digests": {model.name:
                                               spec_digest(model)}})
        obs.add_sink(sink)
    # Health monitor: live sampler + watchdog (--health); tightening
    # flags imply it.
    want_health = (args.health or args.frontier_budget is not None
                   or args.on_pressure != "none")
    health = None
    if want_health:
        actions = None
        if args.on_pressure != "none":
            actions = {"frontier-pressure": args.on_pressure}
        health = HealthConfig(sample_every_steps=args.health_every,
                              frontier_budget=args.frontier_budget,
                              actions=actions)
    # Cost attribution: --attr [sampled|full] (+ --attr-every N).
    attr_mode = getattr(args, "attr", None)
    attr_config = None
    if attr_mode:
        attr_config = AttrConfig(mode=attr_mode,
                                 sample_every=getattr(args, "attr_every",
                                                      16))
    config = EngineConfig(
        max_steps_per_path=args.max_steps,
        check_uninit=args.uninit,
        check_tainted_control=args.taint,
        merge_states=args.merge,
        collect_coverage=True,
        use_solver_cache=not getattr(args, "no_solver_cache", False),
        compiled_semantics=getattr(args, "compiled", False),
        max_wall_seconds=args.max_seconds,
        health=health,
        obs=obs,
        attr=attr_config,
    )
    store_flag = getattr(args, "store", None)
    engine = None
    stored = None
    store_hit = False
    if store_flag is not None:
        # Store-backed dedup: an identical submission (same spec,
        # program, config, strategy, seed, regions) is answered from
        # the content-addressed run store; a miss explores and records.
        if (args.max_seconds is not None or want_health
                or args.serve_metrics is not None):
            sys.stderr.write(
                "error: --store needs a deterministic run; drop "
                "--max-seconds/--health/--serve-metrics (they make the "
                "stop reason timing-dependent)\n")
            return 1
        try:
            result, stored, store_hit = cached_explore(
                RunStore(store_flag or None), model, image, config,
                args.strategy, args.seed, _parse_regions(args),
                argv=sys.argv[1:])
        except RunStoreError as error:
            sys.stderr.write("error: %s\n" % error)
            return 1
    else:
        engine = Engine(model, config=config, strategy=args.strategy,
                        seed=args.seed)
        engine.load_image(image)
        for start, size, track in _parse_regions(args):
            engine.add_region(start, size, track_uninit=track)
        server = None
        if args.serve_metrics is not None:
            server = MetricsServer(obs.metrics, port=args.serve_metrics)
            print("serving live metrics at %s" % server.url)
        try:
            result = engine.explore()
        finally:
            if server is not None:
                server.close()
    print(result.summary())
    if stored is not None:
        print("store: %s %s (%s)"
              % ("hit" if store_hit else "recorded", stored.run_id,
                 "cached result, zero new solver checks" if store_hit
                 else stored.path))
    cache_line = result.solver_cache_line()
    if cache_line is not None:
        print(cache_line)
    health_line = result.health_line()
    if health_line is not None:
        print(health_line)
    for defect in result.defects:
        print("defect: %-24s pc=%#x instr=%-8s input=%r"
              % (defect.kind, defect.pc, defect.instruction,
                 defect.input_bytes))
    # Unified coverage: address-level (this program) + rule-level (the
    # ADL spec), the latter via image-based attribution so no event sink
    # is required.
    report = measure(model, image, result.visited_pcs, spec_coverage=True)
    print(report.summary())
    if want_health and engine.health is not None:
        print(engine.health.report())
    if want_profile:
        print(obs.profiler.report())
    attr_block = (result.telemetry or {}).get("attr")
    if attr_mode and attr_block:
        print(hot_report(attr_block, top=5))
    if sink is not None:
        summary = {"record": "run_summary",
                   "isa": model.name,
                   "paths": len(result.paths),
                   "defects": len(result.defects),
                   "instructions": result.instructions_executed,
                   "wall_time": result.wall_time,
                   "stop_reason": result.stop_reason,
                   "telemetry": result.telemetry}
        sink.write_meta(summary)
        obs.close()
        print("telemetry: %d events -> %s"
              % (obs.tracer.emitted, telemetry_out))
    return 2 if result.defects else 0


def cmd_record(args) -> int:
    """Explore and persist into the content-addressed run store.

    Deliberately excludes the timing-dependent explore flags
    (``--max-seconds``, the health watchdog): a recorded run must stop
    for deterministic reasons or replay verification is meaningless.
    Exit codes mirror ``explore``: 2 when defects were found, else 0.
    """
    model, image = _load(args)
    store = RunStore(args.store)
    obs = Obs(metrics=True, profile=True)
    # Recorded runs carry a cost-attribution profile by default
    # (sampled mode; --attr off|sampled|full to override): attribution
    # is observe-only, so it never changes the run id or the outcome.
    attr_mode = getattr(args, "attr", "sampled")
    attr_config = AttrConfig(attr_mode) if attr_mode != "off" else None
    config = EngineConfig(
        max_steps_per_path=args.max_steps,
        check_uninit=args.uninit,
        check_tainted_control=args.taint,
        merge_states=args.merge,
        collect_coverage=True,
        use_solver_cache=not args.no_solver_cache,
        compiled_semantics=getattr(args, "compiled", False),
        obs=obs,
        attr=attr_config,
    )
    try:
        result, stored, hit = cached_explore(
            store, model, image, config, args.strategy, args.seed,
            _parse_regions(args), argv=sys.argv[1:], force=args.force,
            warm_start=args.warm_start)
    except RunStoreError as error:
        sys.stderr.write("error: %s\n" % error)
        return 1
    print(result.summary())
    for defect in result.defects:
        print("defect: %-24s pc=%#x instr=%-8s input=%r"
              % (defect.kind, defect.pc, defect.instruction,
                 defect.input_bytes))
    if hit:
        print("store: hit %s (cached result, zero new solver checks)"
              % stored.run_id)
    else:
        print("store: recorded %s -> %s" % (stored.run_id, stored.path))
        warm = stored.manifest.get("warm_start")
        if warm:
            print("store: solver warm-started from %s (%d entries)"
                  % (warm, stored.manifest.get("warm_loaded", 0)))
    return 2 if result.defects else 0


def cmd_replay(args) -> int:
    """Re-execute a stored run; verify fingerprints bit-for-bit.

    Exit 0 verified, 3 diverged (the report names the field), 1 the
    run is missing/unreadable.
    """
    store = RunStore(args.store)
    try:
        report = replay_run(store, args.run_id, diff=args.diff)
    except RunStoreError as error:
        sys.stderr.write("error: %s\n" % error)
        return 1
    print(report.summary())
    return report.exit_code


def _format_age(created: float) -> str:
    import time as _time
    age = max(0.0, _time.time() - created)
    if age < 3600:
        return "%dm" % (age // 60)
    if age < 86400:
        return "%.1fh" % (age / 3600)
    return "%.1fd" % (age / 86400)


def cmd_runs(args) -> int:
    """List, inspect (``--show``) or garbage-collect (``--gc``) the
    run store."""
    store = RunStore(args.store)
    if args.show:
        try:
            run = store.get(args.show)
        except RunStoreError as error:
            sys.stderr.write("error: %s\n" % error)
            return 1
        if run is None:
            sys.stderr.write("error: run %r is not in the store\n"
                             % args.show)
            return 1
        manifest = run.manifest
        print("run %s  (%s)" % (run.run_id, run.path))
        print("  isa:      %s" % manifest.get("isa"))
        print("  summary:  %s" % manifest.get("summary"))
        for field, digest in sorted(
                (manifest.get("key_digests") or {}).items()):
            print("  %-9s %s" % (field + ":", digest))
        for field, digest in sorted(run.fingerprints.items()):
            print("  fp.%-6s %s" % (field + ":", digest))
        if manifest.get("warm_start"):
            print("  warm:     from %s (%s entries)"
                  % (manifest["warm_start"],
                     manifest.get("warm_loaded", 0)))
        env = run.environment
        for field in ("python", "implementation", "platform", "machine",
                      "package_version", "git_sha"):
            if field in env:
                print("  %-9s %s" % (field + ":", env[field]))
        if env.get("argv"):
            print("  argv:     %s" % " ".join(env["argv"]))
        return 0
    if args.gc:
        deleted = store.gc(keep=args.keep,
                           older_than_days=args.older_than)
        print("gc: deleted %d run%s%s"
              % (len(deleted), "s" if len(deleted) != 1 else "",
                 (" (" + ", ".join(run_id[:12] for run_id in deleted)
                  + ")") if deleted else ""))
        return 0
    runs = store.list_runs()
    if not runs:
        print("store %s is empty (record with 'repro record' or "
              "'repro explore --store')" % store.root)
        return 0
    print("%-32s %-8s %6s %6s %6s  %s"
          % ("run", "isa", "age", "paths", "defect", "strategy"))
    for run in runs:
        manifest = run.manifest
        counts = manifest.get("counts") or {}
        key = manifest.get("key") or {}
        print("%-32s %-8s %6s %6s %6s  %s"
              % (run.run_id, manifest.get("isa", "?"),
                 _format_age(run.created), counts.get("paths", "?"),
                 counts.get("defects", "?"),
                 (key.get("strategy", "?"))))
    return 0


def _open_run(path):
    """Load a telemetry run for the reader subcommands.

    Never lets a :class:`TelemetryError` escape as a traceback: a
    missing/empty/corrupt file is a one-line stderr message and the
    caller returns exit code 1.  Reader warnings (skipped truncated
    lines) go to stderr so stdout stays machine-consumable.
    """
    try:
        run = load_run(path)
    except TelemetryError as error:
        sys.stderr.write("error: %s\n" % error)
        return None
    for warning in run.warnings:
        sys.stderr.write("warning: %s\n" % warning)
    return run


def _print_phases(phases) -> None:
    if not phases:
        return
    print("\nper-phase:")
    print("  %-18s %10s %12s %12s" % ("phase", "calls", "total", "self"))
    print("  " + "-" * 55)
    ordered = sorted(phases.items(),
                     key=lambda kv: kv[1].get("total_s", 0.0),
                     reverse=True)
    for name, stats in ordered:
        print("  %-18s %10d %11.4fs %11.4fs"
              % (name, stats.get("calls", 0),
                 stats.get("total_s", 0.0), stats.get("self_s", 0.0)))


def _print_counters(counters) -> None:
    if not counters:
        return
    print("\ncounters:")
    for name in sorted(counters):
        print("  %-24s %10d" % (name, counters[name]))


def cmd_stats(args) -> int:
    """Pretty-print a saved ``--telemetry-out`` JSONL run."""
    run = _open_run(args.run)
    if run is None:
        return 1
    events, meta = run.events, run.meta
    by_kind = {}
    for event in events:
        by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
    print("run: %s (%d events, %d meta records)"
          % (args.run, len(events), len(meta)))
    if events:
        span = events[-1].ts - events[0].ts
        isas = sorted({event.isa for event in events})
        print("isa: %s   span: %.3fs" % (", ".join(isas), span))
    print("\nper-event-kind:")
    print("  %-14s %8s" % ("kind", "count"))
    print("  " + "-" * 23)
    for kind in sorted(by_kind, key=by_kind.get, reverse=True):
        print("  %-14s %8d" % (kind, by_kind[kind]))
    for record in meta:
        kind = record.get("record")
        if kind == "run_summary":
            telemetry = record.get("telemetry", {})
            print("\nrun summary: paths=%s defects=%s instructions=%s "
                  "time=%.3fs stop=%s"
                  % (record.get("paths"), record.get("defects"),
                     record.get("instructions"),
                     record.get("wall_time", 0.0),
                     record.get("stop_reason")))
            _print_phases(telemetry.get("phases", {}))
            _print_counters(telemetry.get("metrics", {}).get("counters",
                                                             {}))
            # Hottest rules (schema-v5 attr block; absent on pre-v5
            # sidecars and runs without --attr — silently skipped).
            hot_lines = hot_rules_lines(telemetry.get("attr"), top=5)
            if hot_lines:
                print("\nhottest rules (by cost share; full view: "
                      "'repro hot %s'):" % args.run)
                for line in hot_lines:
                    print(line)
            cache_line = solver_cache_summary(telemetry.get("solver"))
            if cache_line is not None:
                print("\n" + cache_line)
            health_line = health_summary_line(telemetry.get("health"))
            if health_line is not None:
                print(health_line)
        elif kind == "lint_summary":
            telemetry = record.get("telemetry", {})
            counts = record.get("counts", {})
            print("\nlint summary: %s spec(s): %s error, %s warn, %s "
                  "info  (%.3fs, %s solver checks)"
                  % (len(record.get("specs", [])),
                     counts.get("error", 0), counts.get("warn", 0),
                     counts.get("info", 0),
                     record.get("wall_time", 0.0),
                     record.get("solver_checks", 0)))
            _print_phases(telemetry.get("phases", {}))
            _print_counters(telemetry.get("metrics", {}).get("counters",
                                                             {}))
    return 0


def _attr_block_from_sidecar(path):
    """The ``attr`` block of a telemetry sidecar's run_summary, or None
    (pre-v5 sidecar, run without --attr, unreadable file...)."""
    run = _open_run(path)
    if run is None:
        return None, True         # _open_run already printed the error
    return run.attr_block(), False


def _attr_block_from_store(target, store_dir):
    """Resolve ``target`` as a run-store id; returns (block, run)."""
    store = RunStore(store_dir)
    run = store.get(target)
    if run is None:
        return None, None
    block = run.attr()
    if block is None:
        # Runs recorded before the attr.json artifact still carry the
        # block inside result.json's telemetry.
        try:
            telemetry = run.result_dict().get("telemetry")
        except RunStoreError:
            telemetry = None
        if isinstance(telemetry, dict):
            candidate = telemetry.get("attr")
            if isinstance(candidate, dict):
                block = candidate
    return block, run


def cmd_hot(args) -> int:
    """Cost-attribution views of a run: hottest rules / IR kinds /
    branch sites, flamegraphs, Chrome traces, spec heat maps.

    ``target`` is a telemetry sidecar path (JSONL, written by
    ``explore --attr --telemetry-out``) or a run-store run id
    (``repro record``).  Degenerate inputs — missing file, pre-v5
    sidecar, a run without attribution — exit 1 with a one-line error,
    never a traceback.
    """
    import json as _json
    import os as _os
    block = None
    if _os.path.exists(args.target) or _os.path.sep in args.target:
        block, failed = _attr_block_from_sidecar(args.target)
        if failed:
            return 1
        if block is None:
            sys.stderr.write(
                "error: %s has no cost-attribution block (re-run with "
                "'repro explore --attr --telemetry-out ...')\n"
                % args.target)
            return 1
    else:
        try:
            block, run = _attr_block_from_store(args.target, args.store)
        except RunStoreError as error:
            sys.stderr.write("error: %s\n" % error)
            return 1
        if run is None:
            sys.stderr.write(
                "error: %r is neither a telemetry file nor a stored "
                "run id (see 'repro runs')\n" % args.target)
            return 1
        if block is None:
            sys.stderr.write(
                "error: run %s has no cost-attribution profile "
                "(record with --attr enabled)\n" % run.run_id)
            return 1
    if args.flame:
        with open(args.flame, "w") as handle:
            handle.write(render_collapsed(block) + "\n")
        print("flamegraph: collapsed stacks -> %s" % args.flame)
    if args.trace:
        with open(args.trace, "w") as handle:
            _json.dump(chrome_trace(block), handle)
        print("trace: chrome trace_event JSON -> %s" % args.trace)
    if args.annotate:
        try:
            text = annotate_spec_costs(block)
        except (ValueError, OSError) as error:
            sys.stderr.write("error: %s\n" % error)
            return 1
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
            print("heat map -> %s" % args.out)
        else:
            print(text)
        return 0
    if args.json:
        print(_json.dumps(block, indent=2, sort_keys=True))
        return 0
    print(hot_report(block, top=args.top, min_share=args.min_share))
    return 0


def cmd_tree(args) -> int:
    """Reconstruct the execution tree of a saved run (flight recorder)."""
    run = _open_run(args.run)
    if run is None:
        return 1
    tree = ExecutionTree.from_events(run.events)
    if not tree.nodes:
        sys.stderr.write("error: %s carries no step/fork events (was the "
                         "run traced with --telemetry-out?)\n" % args.run)
        return 1
    if args.format == "dot":
        text = tree.to_dot()
    elif args.format == "json":
        text = tree.to_json(indent=2)
    else:
        text = tree.to_ascii(max_nodes=args.max_nodes)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        stats = tree.stats()
        print("tree: %d nodes, %d edges, %d leaves -> %s"
              % (stats["nodes"], stats["edges"], stats["leaves"], args.out))
    else:
        print(text)
    return 0


def cmd_speccov(args) -> int:
    """ADL spec coverage of a saved run: which semantic rules ran."""
    run = _open_run(args.run)
    if run is None:
        return 1
    cov = SpecCoverage.from_events(run.events)
    if not cov.per_isa:
        sys.stderr.write("error: %s carries no step events (was the run "
                         "traced with --telemetry-out?)\n" % args.run)
        return 1
    if args.annotate:
        for isa in cov.isas():
            text = cov.per_isa[isa].annotate_spec()
            if args.out:
                path = (args.out if len(cov.per_isa) == 1
                        else "%s.%s" % (args.out, isa))
                with open(path, "w") as handle:
                    handle.write(text + "\n")
                print("annotated spec -> %s" % path)
            else:
                print(text)
    else:
        text = cov.report()
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
            for isa in cov.isas():
                print(cov.per_isa[isa].summary())
            print("report -> %s" % args.out)
        else:
            print(text)
    if args.min_ratio is not None:
        failing = cov.gate(args.min_ratio)
        if failing:
            sys.stderr.write(
                "error: rule coverage below %.2f for: %s\n"
                % (args.min_ratio,
                   ", ".join("%s (%.0f%%)"
                             % (isa, 100 * cov.per_isa[isa].rule_ratio)
                             for isa in failing)))
            return 1
        print("gate: every ISA >= %.2f rule coverage" % args.min_ratio)
    return 0


def _format_health_frame(sample, path: str) -> str:
    """Render one ``health`` event sample as a ``repro top`` frame."""
    solver = sample.get("solver") or {}
    pool = sample.get("pool") or {}
    lines = [
        "repro top — %s" % path,
        "sample #%-5s t=%.1fs  steps=%s  steps/s=%.0f"
        % (sample.get("seq", "?"), sample.get("t", 0.0),
           sample.get("steps", 0), sample.get("steps_per_sec", 0.0)),
        "frontier=%-6s coverage=%-6s paths=%-6s defects=%s"
        % (sample.get("frontier", 0), sample.get("coverage", 0),
           sample.get("paths", 0), sample.get("defects", 0)),
        "solver: share=%.2f hit_ratio=%.2f checks=%d   "
        "pool: interned=%d (%+d)"
        % (solver.get("share", 0.0), solver.get("hit_ratio", 0.0),
           solver.get("checks", 0), pool.get("interned", 0),
           pool.get("grown", 0)),
    ]
    top_states = sample.get("top_states") or ()
    if top_states:
        lines.append("heaviest states:")
        lines.append("  %-7s %-10s %10s %6s %8s"
                     % ("state", "pc", "path_terms", "pages", "steps"))
        for foot in top_states:
            lines.append("  #%-6s %-10s %10s %6s %8s"
                         % (foot.get("state"), "%#x" % foot.get("pc", 0),
                            foot.get("path_terms"), foot.get("pages"),
                            foot.get("steps")))
    return "\n".join(lines)


def _follow_gz(args) -> int:
    """``repro top`` follow mode over a ``.jsonl.gz`` sidecar: re-read
    the whole (compressed) file each poll until the run finishes."""
    import time

    redraw = sys.stdout.isatty()
    frames = 0
    last_seq = None
    deadline = (time.monotonic() + args.max_wait
                if args.max_wait is not None else None)
    try:
        while True:
            try:
                run = load_run(args.run)
            except TelemetryError:
                run = None
            if run is not None:
                health_events = run.events_of("health")
                if health_events:
                    sample = health_events[-1].data.get("sample") or {}
                    if sample.get("seq") != last_seq:
                        last_seq = sample.get("seq")
                        if redraw:
                            sys.stdout.write("\x1b[2J\x1b[H")
                        print(_format_health_frame(sample, args.run))
                        sys.stdout.flush()
                        frames += 1
                summary = run.run_summary()
                if summary is not None:
                    print("run finished: paths=%s defects=%s stop=%s"
                          % (summary.get("paths"),
                             summary.get("defects"),
                             summary.get("stop_reason")))
                    return 0
            if deadline is not None and time.monotonic() > deadline:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    if frames == 0:
        sys.stderr.write(
            "error: %s carries no health events (run explore with "
            "--health --telemetry-out?)\n" % args.run)
        return 1
    return 0


def cmd_top(args) -> int:
    """Live (or ``--once``) TTY view of a run's ``health`` events."""
    import json
    import time

    if args.once:
        run = _open_run(args.run)
        if run is None:
            return 1
        health_events = run.events_of("health")
        if not health_events:
            sys.stderr.write(
                "error: %s carries no health events (run explore with "
                "--health --telemetry-out?)\n" % args.run)
            return 1
        sample = health_events[-1].data.get("sample") or {}
        print(_format_health_frame(sample, args.run))
        for event in run.events_of("watchdog"):
            print("watchdog: [%s] %s action=%s"
                  % (event.data.get("diagnosis"),
                     event.data.get("detail"),
                     event.data.get("action")))
        return 0

    # Follow mode: tail the JSONL file until the run_summary meta record
    # lands (the writer flushes after every health sample, so a live
    # exploration shows up here with at most one sample of latency).
    # Gzip sidecars cannot be tailed incrementally (the stream is only
    # complete once closed): poll with full re-reads instead.
    if args.run.endswith(".gz"):
        return _follow_gz(args)
    try:
        handle = open(args.run)
    except OSError as exc:
        sys.stderr.write("error: cannot open %s: %s\n"
                         % (args.run, exc.strerror or exc))
        return 1
    redraw = sys.stdout.isatty()
    buffer = ""
    frames = 0
    deadline = (time.monotonic() + args.max_wait
                if args.max_wait is not None else None)
    try:
        with handle:
            while True:
                chunk = handle.read()
                if not chunk:
                    if deadline is not None and time.monotonic() > deadline:
                        break
                    time.sleep(args.interval)
                    continue
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if not isinstance(record, dict):
                        continue
                    kind = record.get("kind")
                    if kind == "meta":
                        if record.get("record") != "run_summary":
                            continue
                        print("run finished: paths=%s defects=%s stop=%s"
                              % (record.get("paths"),
                                 record.get("defects"),
                                 record.get("stop_reason")))
                        return 0
                    if kind == "health":
                        sample = (record.get("data") or {}).get(
                            "sample") or {}
                        if redraw:
                            sys.stdout.write("\x1b[2J\x1b[H")
                        print(_format_health_frame(sample, args.run))
                        sys.stdout.flush()
                        frames += 1
                    elif kind == "watchdog":
                        data = record.get("data") or {}
                        print("watchdog: [%s] %s action=%s"
                              % (data.get("diagnosis"),
                                 data.get("detail"), data.get("action")))
    except KeyboardInterrupt:
        pass
    if frames == 0:
        sys.stderr.write(
            "error: %s carries no health events (run explore with "
            "--health --telemetry-out?)\n" % args.run)
        return 1
    return 0


def cmd_metrics(args) -> int:
    """Metrics of a saved run; ``--prom`` for Prometheus text format."""
    run = _open_run(args.run)
    if run is None:
        return 1
    summary = run.run_summary()
    telemetry = (summary or {}).get("telemetry") or {}
    metrics = telemetry.get("metrics") or {}
    sections = [metrics.get(key) or {} for key in
                ("counters", "gauges", "histograms")]
    if not any(sections):
        sys.stderr.write(
            "error: %s carries no metrics section (was the run recorded "
            "with --telemetry-out?)\n" % args.run)
        return 1
    if args.prom:
        sys.stdout.write(render_prom_snapshot(metrics,
                                              namespace=args.namespace))
        return 0
    counters, gauges, histograms = sections
    if counters:
        print("counters:")
        for name in sorted(counters):
            print("  %-28s %12d" % (name, counters[name]))
    if gauges:
        print("gauges:")
        for name in sorted(gauges):
            print("  %-28s %12g" % (name, gauges[name]))
    if histograms:
        print("histograms:")
        print("  %-20s %8s %10s %10s %10s %10s"
              % ("name", "count", "mean", "p50", "p90", "p99"))
        for name in sorted(histograms):
            stats = histograms[name] or {}
            print("  %-20s %8d %10.4g %10.4g %10.4g %10.4g"
                  % (name, stats.get("count", 0), stats.get("mean", 0.0),
                     stats.get("p50", 0.0), stats.get("p90", 0.0),
                     stats.get("p99", 0.0)))
    return 0


def cmd_diffstats(args) -> int:
    """Diff two runs' metrics; exit 3 when regressions are flagged."""
    run_a = _open_run(args.a)
    if run_a is None:
        return 1
    run_b = _open_run(args.b)
    if run_b is None:
        return 1
    comparison = compare_runs(run_a, run_b, threshold=args.threshold)
    if not comparison.rows:
        sys.stderr.write("error: no comparable metrics between %s and %s "
                         "(were both recorded with --telemetry-out?)\n"
                         % (args.a, args.b))
        return 1
    if args.json:
        import json
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        print(comparison.report())
    return 3 if comparison.regressions else 0


def cmd_bench(args) -> int:
    """The performance observatory: ``repro bench list|run|compare|
    history`` (see docs/OBSERVABILITY.md).

    Exit codes mirror ``diffstats``: 0 clean, 1 unusable input, 3 a
    confirmed regression or a failed declarative expectation.
    """
    import json

    from . import bench

    def fail(message):
        sys.stderr.write("error: %s\n" % message)
        return 1

    if args.bench_command == "compare":
        # Pure report-vs-report statistics; no discovery needed.
        try:
            report_a = bench.load_report(args.a)
            report_b = bench.load_report(args.b)
        except bench.BenchError as exc:
            return fail(exc)
        comparison = bench.compare_reports(
            report_a, report_b, path_a=args.a, path_b=args.b,
            k=args.k, min_rel=args.min_rel)
        if args.json:
            print(json.dumps(comparison.to_dict(), indent=2,
                             sort_keys=True))
        else:
            print(bench.render_comparison(comparison))
        return 3 if comparison.regressions else 0

    if args.bench_command == "history":
        ledger = bench.PerfLedger(args.store)
        entries, warnings = ledger.entries(args.bench_id)
        for warning in warnings:
            sys.stderr.write("warning: %s\n" % warning)
        if not entries:
            return fail("no history for %r in %s"
                        % (args.bench_id, ledger.path))
        if args.limit:
            entries = entries[-args.limit:]
        values = [e.get("median") for e in entries
                  if isinstance(e.get("median"), (int, float))]
        shift = bench.changepoint(values)
        if args.json:
            payload = {"bench": args.bench_id, "ledger": ledger.path,
                       "entries": entries,
                       "changepoint": (shift.to_dict() if shift
                                       else None)}
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        import time as _time
        unit = entries[-1].get("unit", "")
        print("%s (%d entr%s, %s)" % (args.bench_id, len(entries),
                                      "y" if len(entries) == 1 else "ies",
                                      ledger.path))
        print("  %s" % bench.sparkline(values))
        print("  %-12s %-10s %-30s %12s %10s" %
              ("date", "git", "env", "median", "mad"))
        for entry in entries:
            unix = entry.get("unix") or 0
            day = _time.strftime("%Y-%m-%d", _time.localtime(unix))
            sha = str(entry.get("git_sha") or "-")[:10]
            print("  %-12s %-10s %-30s %12.6g %10.4g %s"
                  % (day, sha, str(entry.get("env_digest") or "-")[:30],
                     entry.get("median") or 0.0, entry.get("mad") or 0.0,
                     unit))
        if shift is not None:
            print("  changepoint: entry %d, %.6g -> %.6g (%+.1f%%)"
                  % (shift.index, shift.before, shift.after,
                     100 * shift.shift_ratio))
        return 0

    # ``list`` and ``run`` need the registry populated.
    try:
        directory, _modules = bench.discover(args.dir)
    except bench.BenchError as exc:
        return fail(exc)

    if args.bench_command == "list":
        benches = bench.suite_benchmarks(args.suite or "full")
        if args.json:
            print(json.dumps([b.metadata() for b in benches],
                             indent=2, sort_keys=True))
            return 0
        print("%d benchmark%s in %s" % (len(benches),
                                        "s" if len(benches) != 1 else "",
                                        directory))
        for b in benches:
            gates = []
            if b.expect_min is not None:
                gates.append(">= %g" % b.expect_min)
            if b.expect_max is not None:
                gates.append("<= %g" % b.expect_max)
            print("  %-34s %-5s %-9s %-6s %s"
                  % (b.id, b.suite, b.unit, b.direction,
                     "  ".join(gates)))
        return 0

    assert args.bench_command == "run"
    try:
        if args.bench:
            benches = [bench.get(bench_id) for bench_id in args.bench]
            suite = "custom"
        else:
            suite = args.suite
            benches = bench.suite_benchmarks(suite)
    except bench.BenchError as exc:
        return fail(exc)
    if not benches:
        return fail("nothing to run")
    progress = (None if args.quiet
                else lambda line: sys.stderr.write(line + "\n"))
    report = bench.run_benchmarks(benches, suite=suite, reps=args.reps,
                                  warmup=args.warmup, progress=progress)
    out = args.out or bench.default_report_path(args.dir)
    bench.write_report(report, out)
    appended = []
    if not args.no_ledger:
        ledger = bench.PerfLedger(args.store)
        appended = ledger.append_report(report)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(bench.render_report(report))
        print("  report: %s" % out)
        if not args.no_ledger:
            print("  ledger: %s (%d entr%s appended)"
                  % (ledger.path, len(appended),
                     "y" if len(appended) == 1 else "ies"))
    failed = [exp for result in report["results"]
              for exp in result.get("expectations") or []
              if not exp.get("passed")]
    if args.check and failed:
        sys.stderr.write("FAIL: %d expectation%s not met\n"
                         % (len(failed),
                            "" if len(failed) == 1 else "s"))
        return 3
    return 0


def cmd_compile(args) -> int:
    """Dump the generated transfer-function modules for one ISA.

    What ``--compiled`` actually executes: the concrete per-instruction
    transfer functions and/or the symbolic term-building plans, headed
    by the spec digest that keys the compilation cache.  Useful for
    eyeballing the specializer's output and as a CI artifact.
    """
    from .compile import compiled_for
    model = build(args.isa)
    compiled = compiled_for(model)
    parts = ["# %s @ %s" % (compiled.isa, compiled.digest)]
    if args.which in ("concrete", "both"):
        parts.append(compiled.concrete_source)
    if args.which in ("symbolic", "both"):
        parts.append(compiled.symbolic_source)
    text = "\n\n".join(parts)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print("wrote %s (%d rules, %d lines)"
              % (args.out, len(compiled.plans), text.count("\n") + 1))
    else:
        print(text)
    return 0


def cmd_lint(args) -> int:
    """Static verification of ADL specs (see docs/LINT.md).

    Exit codes: 0 clean (or everything baselined), 1 a spec could not be
    linted at all, 2 bad usage, 3 non-baselined ``error`` findings.
    """
    import time as _time

    from . import lint
    from .adl import builtin_spec_names

    if args.list_passes:
        for lint_pass in lint.all_passes():
            print("%-18s %-10s %-5s  %s"
                  % (lint_pass.id, lint_pass.family,
                     lint_pass.default_severity, lint_pass.title))
        return 0
    targets = list(args.specs)
    if args.all:
        targets = builtin_spec_names() + targets
    if not targets:
        sys.stderr.write("error: name a built-in spec, an .adl file, or "
                         "pass --all\n")
        return 2
    try:
        config = lint.LintConfig(enable=args.enable, disable=args.disable,
                                 families=args.family)
        config.selected_passes()  # fail fast on unknown pass ids
    except KeyError as error:
        sys.stderr.write("error: %s\n" % error.args[0])
        return 2
    obs = Obs(metrics=True, profile=True)
    started = _time.perf_counter()
    reports = []
    try:
        for target in targets:
            reports.append(lint.run_lint(target, config=config, obs=obs))
    except lint.LintError as error:
        sys.stderr.write("error: %s\n" % error)
        return 1
    wall_time = _time.perf_counter() - started
    if args.write_baseline:
        findings = [f for report in reports for f in report.findings]
        baseline = lint.write_baseline(args.write_baseline, findings)
        sys.stderr.write("wrote baseline %s (%d fingerprints)\n"
                         % (args.write_baseline, len(baseline)))
    suppressed = []
    if args.baseline:
        try:
            baseline = lint.load_baseline(args.baseline)
        except (OSError, ValueError) as error:
            sys.stderr.write("error: %s\n" % error)
            return 1
        for report in reports:
            kept, gone = baseline.split(report.findings)
            report.findings = kept
            suppressed.extend(gone)
    if args.format == "json":
        text = lint.render_json(reports, suppressed)
    elif args.format == "sarif":
        text = lint.render_sarif(reports, suppressed,
                                 tool_version=__version__)
    else:
        text = lint.render_text(reports, suppressed,
                                show_timings=args.timings)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    if args.telemetry_out:
        sink = JsonlSink(args.telemetry_out)
        sink.write_meta({
            "record": "lint_summary",
            "specs": [report.spec_name for report in reports],
            "counts": _lint_totals(reports),
            "wall_time": round(wall_time, 6),
            "solver_checks": sum(t.solver_checks for report in reports
                                 for t in report.timings),
            "telemetry": obs.snapshot(),
        })
        sink.close()
    errors = sum(len(report.errors()) for report in reports)
    return 3 if errors else 0


def _lint_totals(reports):
    from .lint import SEVERITIES
    totals = {severity: 0 for severity in SEVERITIES}
    for report in reports:
        for severity, count in report.by_severity().items():
            totals[severity] = totals.get(severity, 0) + count
    return totals


def cmd_cfg(args) -> int:
    model, image = _load(args)
    cfg = recover_cfg(model, image)
    print("entry %#x, %d blocks, %d edges%s"
          % (cfg.entry, cfg.block_count, cfg.edge_count,
             ", has indirect jumps" if cfg.has_indirect else ""))
    for start, block in sorted(cfg.blocks.items()):
        targets = ", ".join(("%#x [%s]" % (t, k)) if t is not None else k
                            for t, k in block.successors)
        print("  %#x (%d instrs) -> %s"
              % (start, len(block.addresses), targets))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ADL-based retargetable symbolic execution toolchain")
    parser.add_argument("--version", action="version",
                        version="repro " + __version__)
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("isas", help="list built-in ISAs")

    for name, help_text in (("asm", "assemble and hex-dump"),
                            ("dis", "assemble then disassemble"),
                            ("run", "run on the concrete simulator"),
                            ("trace", "run with a full execution trace"),
                            ("cfg", "recover the control-flow graph")):
        sub = commands.add_parser(name, help=help_text)
        _add_common(sub)
        if name == "run":
            sub.add_argument("--compiled", action="store_true",
                             help="execute compiled transfer functions "
                                  "(repro.compile) instead of "
                                  "interpreting IR; bit-for-bit "
                                  "identical, just faster")

    explore = commands.add_parser(
        "explore", help="symbolic execution (paths + defects + coverage)")
    _add_common(explore)
    explore.add_argument("--strategy", default="dfs",
                         choices=["dfs", "bfs", "random", "coverage"])
    explore.add_argument("--seed", type=int, default=0)
    explore.add_argument("--merge", action="store_true",
                         help="enable state merging (use with bfs)")
    explore.add_argument("--taint", action="store_true",
                         help="report input-dependent jump targets")
    explore.add_argument("--uninit", action="store_true",
                         help="track uninitialized reads in --region areas")
    explore.add_argument("--region", action="append",
                         metavar="START:SIZE",
                         help="map extra memory (repeatable)")
    explore.add_argument("--no-solver-cache", action="store_true",
                         help="disable the solver query cache and the "
                              "engine's incremental check reuse "
                              "(ablation baseline)")
    explore.add_argument("--telemetry-out", metavar="FILE.jsonl",
                         help="write a structured event trace (JSONL); "
                              "inspect with 'repro stats FILE.jsonl'")
    explore.add_argument("--profile", action="store_true",
                         help="print a per-phase time breakdown "
                              "(decode/eval/solver/memory/strategy)")
    explore.add_argument("--attr", nargs="?", const="sampled",
                         default=None, choices=["sampled", "full"],
                         help="rule-level cost attribution: charge "
                              "eval/solver/cache/fork costs to ADL "
                              "rules, IR kinds and branch sites "
                              "(prints the hottest rules; with "
                              "--telemetry-out, inspect later via "
                              "'repro hot').  'sampled' (default) "
                              "probes IR nodes every Nth step; "
                              "'full' probes every step")
    explore.add_argument("--attr-every", type=int, default=16,
                         metavar="N",
                         help="sampled attribution: deep-probe every "
                              "Nth step (default 16)")
    explore.add_argument("--max-seconds", type=float, default=None,
                         metavar="T",
                         help="wall-clock deadline; stops cleanly with "
                              "stop reason 'deadline'")
    explore.add_argument("--health", action="store_true",
                         help="live health monitor: periodic sampler + "
                              "stall/pressure watchdog (report at the "
                              "end; with --telemetry-out, 'health' "
                              "events for 'repro top')")
    explore.add_argument("--health-every", type=int, default=256,
                         metavar="N",
                         help="sample every N engine steps "
                              "(default 256)")
    explore.add_argument("--frontier-budget", type=int, default=None,
                         metavar="N",
                         help="watchdog: diagnose frontier-pressure "
                              "when pending states exceed N "
                              "(implies --health)")
    explore.add_argument("--on-pressure", default="none",
                         choices=["none", "merge", "switch", "stop"],
                         help="action when frontier-pressure fires: "
                              "observe only (default), force a merge "
                              "pass, switch strategy, or stop with "
                              "stop reason 'pressure'")
    explore.add_argument("--serve-metrics", type=int, default=None,
                         metavar="PORT",
                         help="serve live Prometheus metrics on "
                              "127.0.0.1:PORT while exploring "
                              "(0 = pick a free port)")
    explore.add_argument("--store", nargs="?", const="", default=None,
                         metavar="DIR",
                         help="answer identical submissions from the "
                              "content-addressed run store (and record "
                              "misses into it); DIR overrides "
                              "~/.repro/store / $REPRO_STORE")
    explore.add_argument("--compiled", action="store_true",
                         help="execute compiled per-instruction transfer "
                              "functions (repro.compile) instead of "
                              "walking rule IR; fingerprint-identical "
                              "(never part of the run key), just faster")

    record = commands.add_parser(
        "record",
        help="symbolic execution persisted into the content-addressed "
             "run store (replayable with 'repro replay')")
    _add_common(record)
    record.add_argument("--strategy", default="dfs",
                        choices=["dfs", "bfs", "random", "coverage"])
    record.add_argument("--seed", type=int, default=0)
    record.add_argument("--merge", action="store_true",
                        help="enable state merging (use with bfs)")
    record.add_argument("--taint", action="store_true",
                        help="report input-dependent jump targets")
    record.add_argument("--uninit", action="store_true",
                        help="track uninitialized reads in --region "
                             "areas")
    record.add_argument("--region", action="append",
                        metavar="START:SIZE",
                        help="map extra memory (repeatable)")
    record.add_argument("--no-solver-cache", action="store_true",
                        help="record without the solver query cache "
                             "(ablation baseline)")
    record.add_argument("--store", metavar="DIR", default=None,
                        help="store root (default ~/.repro/store or "
                             "$REPRO_STORE)")
    record.add_argument("--force", action="store_true",
                        help="re-explore even when the store already "
                             "holds this run")
    record.add_argument("--warm-start", metavar="RUN_ID", default=None,
                        help="preload the solver cache from a stored "
                             "run (recorded in the manifest so replay "
                             "uses the same warm start)")
    record.add_argument("--attr", default="sampled",
                        choices=["off", "sampled", "full"],
                        help="cost-attribution profile stored with the "
                             "run as attr.json (default 'sampled'; "
                             "observe-only: never part of the run key)")
    record.add_argument("--compiled", action="store_true",
                        help="explore with compiled transfer functions "
                             "(repro.compile); fingerprint-identical, "
                             "never part of the run key")

    replay = commands.add_parser(
        "replay",
        help="re-execute a stored run and verify its tree/leaf/defect "
             "fingerprints bit-for-bit (exit 3 on divergence)")
    replay.add_argument("run_id", help="run id (or unique prefix) from "
                                       "'repro runs'")
    replay.add_argument("--store", metavar="DIR", default=None,
                        help="store root (default ~/.repro/store or "
                             "$REPRO_STORE)")
    replay.add_argument("--diff", action="store_true",
                        help="on divergence, locate the first "
                             "diverging structural event")

    runs = commands.add_parser(
        "runs", help="list, inspect or garbage-collect the run store")
    runs.add_argument("--store", metavar="DIR", default=None,
                      help="store root (default ~/.repro/store or "
                           "$REPRO_STORE)")
    runs.add_argument("--show", metavar="RUN_ID", default=None,
                      help="print one run's provenance (key digests, "
                           "fingerprints, environment)")
    runs.add_argument("--gc", action="store_true",
                      help="delete runs per --keep / --older-than and "
                           "sweep crashed recorders' temp dirs")
    runs.add_argument("--keep", type=int, default=None, metavar="N",
                      help="--gc: keep only the N newest runs")
    runs.add_argument("--older-than", type=float, default=None,
                      metavar="DAYS",
                      help="--gc: delete runs older than DAYS")

    stats = commands.add_parser(
        "stats", help="pretty-print a saved --telemetry-out run")
    stats.add_argument("run", help="telemetry JSONL file")

    hot = commands.add_parser(
        "hot",
        help="cost-attribution views of a run: hottest rules, spec "
             "heat maps, flamegraphs (needs --attr at explore/record "
             "time)")
    hot.add_argument("target",
                     help="telemetry JSONL file (explore --attr "
                          "--telemetry-out) or run-store run id "
                          "(repro record)")
    hot.add_argument("--store", metavar="DIR", default=None,
                     help="store root for run-id targets (default "
                          "~/.repro/store or $REPRO_STORE)")
    hot.add_argument("--top", type=int, default=10, metavar="N",
                     help="rows per table in the text report "
                          "(default 10)")
    hot.add_argument("--min-share", type=float, default=0.0,
                     metavar="R",
                     help="hide rules below this cost share "
                          "(0.05 = 5%%)")
    hot.add_argument("--json", action="store_true",
                     help="dump the raw attribution block as JSON")
    hot.add_argument("--flame", metavar="FILE",
                     help="write collapsed stacks (flamegraph.pl / "
                          "speedscope format) to FILE")
    hot.add_argument("--trace", metavar="FILE",
                     help="write Chrome trace_event JSON to FILE "
                          "(open in chrome://tracing or Perfetto)")
    hot.add_argument("--annotate", action="store_true",
                     help="print the ADL spec source with per-line "
                          "cost shares in the margin")
    hot.add_argument("--out", metavar="FILE",
                     help="--annotate: write the heat map to FILE")

    top = commands.add_parser(
        "top", help="live TTY view of a running exploration "
                    "(tails --telemetry-out health events)")
    top.add_argument("run", help="telemetry JSONL file being written")
    top.add_argument("--once", action="store_true",
                     help="print the latest health snapshot and exit")
    top.add_argument("--interval", type=float, default=0.5,
                     metavar="S",
                     help="poll interval in seconds (default 0.5)")
    top.add_argument("--max-wait", type=float, default=None,
                     metavar="S",
                     help="give up after S seconds without new data "
                          "(default: wait forever)")

    metrics = commands.add_parser(
        "metrics", help="metrics of a saved run (--prom for Prometheus "
                        "text exposition)")
    metrics.add_argument("run", help="telemetry JSONL file")
    metrics.add_argument("--prom", action="store_true",
                         help="Prometheus text format (for pushgateway "
                              "or the textfile collector)")
    metrics.add_argument("--namespace", default="repro",
                         help="metric name prefix for --prom "
                              "(default 'repro')")

    diffstats = commands.add_parser(
        "diffstats", help="diff two runs' metrics; flag regressions "
                          "(exit 3 when any are found)")
    diffstats.add_argument("a", help="baseline telemetry JSONL file")
    diffstats.add_argument("b", help="candidate telemetry JSONL file")
    diffstats.add_argument("--threshold", type=float, default=0.20,
                           metavar="R",
                           help="relative change flagged as regression "
                                "(default 0.20 = 20%%)")
    diffstats.add_argument("--json", action="store_true",
                           help="emit the comparison as JSON (the exact "
                                "payload the exit-code logic sees)")

    bench_cmd = commands.add_parser(
        "bench", help="performance observatory: run the benchmark "
                      "suite, compare reports statistically, browse "
                      "perf history (exit 3 on regression)")
    bench_sub = bench_cmd.add_subparsers(dest="bench_command",
                                         required=True)

    bench_list = bench_sub.add_parser(
        "list", help="list registered benchmarks and their gates")
    bench_list.add_argument("--suite", choices=["quick", "full"],
                            default="full",
                            help="restrict to one suite (default full)")
    bench_list.add_argument("--dir", metavar="DIR", default=None,
                            help="benchmarks directory (default: this "
                                 "checkout's benchmarks/)")
    bench_list.add_argument("--json", action="store_true",
                            help="emit benchmark metadata as JSON")

    bench_run = bench_sub.add_parser(
        "run", help="run a suite; write the BENCH report and append "
                    "the perf-history ledger")
    bench_run.add_argument("--suite", choices=["quick", "full"],
                           default="quick",
                           help="which suite to run (default quick)")
    bench_run.add_argument("--bench", action="append", default=[],
                           metavar="ID",
                           help="run only this benchmark (repeatable; "
                                "overrides --suite)")
    bench_run.add_argument("--reps", type=int, default=None, metavar="N",
                           help="override every benchmark's declared "
                                "repetition count")
    bench_run.add_argument("--warmup", type=int, default=None,
                           metavar="N",
                           help="override every benchmark's declared "
                                "warmup count")
    bench_run.add_argument("--out", metavar="FILE", default=None,
                           help="report path (default BENCH_9.json at "
                                "the repo root)")
    bench_run.add_argument("--dir", metavar="DIR", default=None,
                           help="benchmarks directory (default: this "
                                "checkout's benchmarks/)")
    bench_run.add_argument("--store", metavar="DIR", default=None,
                           help="run-store root for the perf-history "
                                "ledger (default $REPRO_STORE or "
                                "~/.repro/store)")
    bench_run.add_argument("--no-ledger", action="store_true",
                           help="do not append to the perf-history "
                                "ledger")
    bench_run.add_argument("--json", action="store_true",
                           help="print the report JSON on stdout "
                                "(progress goes to stderr)")
    bench_run.add_argument("--quiet", action="store_true",
                           help="suppress per-benchmark progress lines")
    bench_run.add_argument("--check", action="store_true",
                           help="exit 3 when a declarative expectation "
                                "(the migrated CI guards) fails")

    bench_compare = bench_sub.add_parser(
        "compare", help="statistical A/B gate over two reports "
                        "(exit 3 on regression)")
    bench_compare.add_argument("a", help="baseline BENCH report")
    bench_compare.add_argument("b", help="candidate BENCH report")
    bench_compare.add_argument("--k", type=float, default=3.0,
                               metavar="K",
                               help="MAD multiplier of the noise band "
                                    "(default 3.0)")
    bench_compare.add_argument("--min-rel", type=float, default=0.05,
                               metavar="R",
                               help="relative floor of the noise band "
                                    "(default 0.05)")
    bench_compare.add_argument("--json", action="store_true",
                               help="emit the comparison as JSON")

    bench_history = bench_sub.add_parser(
        "history", help="one benchmark's trajectory from the "
                        "perf-history ledger (sparkline + changepoint)")
    bench_history.add_argument("bench_id", help="benchmark id")
    bench_history.add_argument("--store", metavar="DIR", default=None,
                               help="run-store root (default "
                                    "$REPRO_STORE or ~/.repro/store)")
    bench_history.add_argument("--limit", type=int, default=0,
                               metavar="N",
                               help="show only the newest N entries")
    bench_history.add_argument("--json", action="store_true",
                               help="emit entries + changepoint as JSON")

    tree = commands.add_parser(
        "tree", help="reconstruct the execution tree of a saved run")
    tree.add_argument("run", help="telemetry JSONL file")
    tree.add_argument("--format", default="ascii",
                      choices=["ascii", "dot", "json"],
                      help="output format (default ascii)")
    tree.add_argument("--out", metavar="FILE",
                      help="write to FILE instead of stdout")
    tree.add_argument("--max-nodes", type=int, default=500,
                      help="ascii format: cap on rendered nodes")

    speccov = commands.add_parser(
        "speccov",
        help="ADL spec coverage of a saved run (which rules ran)")
    speccov.add_argument("run", help="telemetry JSONL file")
    speccov.add_argument("--min-ratio", type=float, default=None,
                         metavar="R",
                         help="exit 1 if any ISA's rule coverage < R "
                              "(CI gate for new specs)")
    speccov.add_argument("--annotate", action="store_true",
                         help="print the ADL spec source with per-line "
                              "hit counts in the margin")
    speccov.add_argument("--out", metavar="FILE",
                         help="write the report to FILE instead of stdout")

    lint = commands.add_parser(
        "lint",
        help="static verification of ADL specs (structural + SMT proof "
             "passes; exit 3 on new errors)")
    lint.add_argument("specs", nargs="*",
                      help="built-in spec names or .adl file paths")
    lint.add_argument("--all", action="store_true",
                      help="lint every built-in spec")
    lint.add_argument("--format", default="text",
                      choices=["text", "json", "sarif"],
                      help="output format (default text)")
    lint.add_argument("--out", metavar="FILE",
                      help="write the report to FILE instead of stdout")
    lint.add_argument("--baseline", metavar="FILE",
                      help="suppress findings whose fingerprints are in "
                           "this baseline file")
    lint.add_argument("--write-baseline", metavar="FILE",
                      help="record the current findings as the accepted "
                           "baseline")
    lint.add_argument("--enable", action="append", default=[],
                      metavar="PASS",
                      help="run only these passes (repeatable)")
    lint.add_argument("--disable", action="append", default=[],
                      metavar="PASS",
                      help="skip these passes (repeatable)")
    lint.add_argument("--family", action="append", default=[],
                      metavar="FAMILY",
                      help="run only these pass families (structural, "
                           "smt, transval; repeatable)")
    lint.add_argument("--list-passes", action="store_true",
                      help="list registered passes and exit")
    lint.add_argument("--timings", action="store_true",
                      help="text format: include per-pass wall/solver "
                           "time")
    lint.add_argument("--telemetry-out", metavar="FILE.jsonl",
                      help="write a lint summary readable by "
                           "'repro stats'")

    compile_cmd = commands.add_parser(
        "compile",
        help="dump the generated transfer-function modules for an ISA "
             "(what --compiled executes; CI artifact)")
    compile_cmd.add_argument("isa",
                             help="built-in ISA name (see 'isas')")
    compile_cmd.add_argument("--which", default="both",
                             choices=["concrete", "symbolic", "both"],
                             help="which generated module to print")
    compile_cmd.add_argument("--out", metavar="FILE",
                             help="write to FILE instead of stdout")

    args = parser.parse_args(argv)
    handler = {
        "isas": cmd_isas, "asm": cmd_asm, "dis": cmd_dis, "run": cmd_run,
        "trace": cmd_trace, "explore": cmd_explore, "cfg": cmd_cfg,
        "stats": cmd_stats, "hot": cmd_hot, "tree": cmd_tree,
        "speccov": cmd_speccov,
        "top": cmd_top, "metrics": cmd_metrics,
        "diffstats": cmd_diffstats, "bench": cmd_bench,
        "lint": cmd_lint,
        "record": cmd_record, "replay": cmd_replay, "runs": cmd_runs,
        "compile": cmd_compile,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
