"""Known-bits abstract domain over terms.

The bit-level companion of :mod:`repro.smt.interval`: for every term we
track a pair ``(known, value)`` of ints where bit ``i`` of ``known``
set means bit ``i`` of the term equals bit ``i`` of ``value`` under
*every* variable assignment.  Constants are fully known, variables
fully unknown, and the transfer functions propagate exactly the cheap
facts the translation validator needs:

* leading known-zero bits let :mod:`repro.smt.normalize` shrink a term
  to its significant width (so ``(a + b) & 0xffffffff`` computed at 33
  bits and the reference ``add`` at 32 bits meet at the same width),
* two terms whose known bits disagree somewhere are *definitely
  unequal* — an equivalence obligation refuted without the solver,
* two fully-known equal terms are *definitely equal* — proved without
  the solver.

Soundness direction: ``known`` may always be an under-approximation
(claiming fewer bits known is safe); it must never claim a bit known
with the wrong value.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from . import terms as T

__all__ = ["known_bits", "significant_width", "definitely_equal",
           "definitely_unequal"]

#: (known mask, value) — ``value`` is always normalized to ``value & known``.
Bits = Tuple[int, int]


def known_bits(term: T.Term,
               cache: Optional[Dict[int, Bits]] = None) -> Bits:
    """``(known, value)`` for ``term``; memoized via ``cache`` (keyed on
    term id) across one analysis session."""
    if cache is None:
        cache = {}
    hit = cache.get(term.tid)
    if hit is not None:
        return hit
    result = _transfer(term, cache)
    known, value = result
    result = (known & T.mask(term.width), value & known & T.mask(term.width))
    cache[term.tid] = result
    return result


def _unknown(width: int) -> Bits:
    return (0, 0)


def _transfer(term: T.Term, cache: Dict[int, Bits]) -> Bits:
    op = term.op
    width = term.width
    full = T.mask(width)
    if op == T.CONST:
        return (full, term.value)
    if op == T.VAR:
        return _unknown(width)
    if op == T.AND:
        ka, va = known_bits(term.args[0], cache)
        kb, vb = known_bits(term.args[1], cache)
        # A result bit is known when both inputs are known, or either
        # input is a known zero.
        known = (ka & kb) | (ka & ~va) | (kb & ~vb)
        return (known, va & vb)
    if op == T.OR:
        ka, va = known_bits(term.args[0], cache)
        kb, vb = known_bits(term.args[1], cache)
        known = (ka & kb) | (ka & va) | (kb & vb)
        return (known, va | vb)
    if op == T.XOR:
        ka, va = known_bits(term.args[0], cache)
        kb, vb = known_bits(term.args[1], cache)
        return (ka & kb, va ^ vb)
    if op == T.NOT:
        ka, va = known_bits(term.args[0], cache)
        return (ka, ~va & full)
    if op == T.ZEXT:
        inner = term.args[0]
        ka, va = known_bits(inner, cache)
        high = full & ~T.mask(inner.width)
        return (ka | high, va)
    if op == T.SEXT:
        inner = term.args[0]
        ka, va = known_bits(inner, cache)
        sign = 1 << (inner.width - 1)
        if ka & sign:
            high = full & ~T.mask(inner.width)
            ext = high if (va & sign) else 0
            return (ka | high, va | ext)
        return (ka & T.mask(inner.width - 1), va & T.mask(inner.width - 1))
    if op == T.EXTRACT:
        hi, lo = term.params
        ka, va = known_bits(term.args[0], cache)
        return (ka >> lo, va >> lo)
    if op == T.CONCAT:
        hi_part, lo_part = term.args
        kh, vh = known_bits(hi_part, cache)
        kl, vl = known_bits(lo_part, cache)
        shift = lo_part.width
        return ((kh << shift) | kl, (vh << shift) | vl)
    if op in (T.ADD, T.SUB):
        ka, va = known_bits(term.args[0], cache)
        kb, vb = known_bits(term.args[1], cache)
        # Bits are known from the bottom up while both inputs (and the
        # rippling carry/borrow) stay known.
        prefix = _trailing_known(ka & kb)
        if prefix == 0:
            return _unknown(width)
        low_mask = T.mask(prefix)
        raw = (va + vb) if op == T.ADD else (va - vb)
        return (low_mask, raw & low_mask)
    if op == T.MUL:
        ka, va = known_bits(term.args[0], cache)
        kb, vb = known_bits(term.args[1], cache)
        if ka == full and kb == full:
            return (full, (va * vb) & full)
        # A known-zero suffix of either factor forces a zero suffix.
        zeros = _trailing_zeros(ka, va) + _trailing_zeros(kb, vb)
        if zeros >= width:
            return (full, 0)
        return (T.mask(min(zeros, width)), 0)
    if op == T.SHL:
        return _shift_bits(term, cache, "shl")
    if op == T.LSHR:
        return _shift_bits(term, cache, "lshr")
    if op == T.ASHR:
        return _shift_bits(term, cache, "ashr")
    if op == T.ITE:
        kc, vc = known_bits(term.args[0], cache)
        if kc & 1:
            chosen = term.args[1] if (vc & 1) else term.args[2]
            return known_bits(chosen, cache)
        ka, va = known_bits(term.args[1], cache)
        kb, vb = known_bits(term.args[2], cache)
        agree = ka & kb & ~(va ^ vb)
        return (agree, va & agree)
    if op == T.EQ:
        a, b = term.args
        if a is b:
            return (1, 1)
        if definitely_unequal(a, b, cache):
            return (1, 0)
        return _unknown(1)
    # udiv/urem/sdiv/srem/ult/... — no cheap bit facts worth tracking.
    return _unknown(width)


def _shift_bits(term: T.Term, cache: Dict[int, Bits], kind: str) -> Bits:
    value_bits = known_bits(term.args[0], cache)
    ka, va = known_bits(term.args[1], cache)
    width = term.width
    full = T.mask(width)
    if ka != full:
        return _unknown(width)
    amount = va
    kv, vv = value_bits
    if kind == "shl":
        if amount >= width:
            return (full, 0)
        low = T.mask(amount)
        return (((kv << amount) | low) & full, (vv << amount) & full)
    if kind == "lshr":
        if amount >= width:
            return (full, 0)
        high = full & ~T.mask(width - amount) if amount else 0
        return ((kv >> amount) | high, vv >> amount)
    # ashr clamps to width - 1 (SMT-LIB mirror in the interpreter).
    shift = min(amount, width - 1)
    sign = 1 << (width - 1)
    if not (kv & sign):
        return ((kv >> shift) & T.mask(width - shift), vv >> shift)
    shifted_k = (kv >> shift) | (full & ~T.mask(width - shift))
    ext = (full & ~T.mask(width - shift)) if (vv & sign) else 0
    return (shifted_k, (vv >> shift) | ext)


def _trailing_known(known: int) -> int:
    count = 0
    while known & 1:
        known >>= 1
        count += 1
    return count


def _trailing_zeros(known: int, value: int) -> int:
    count = 0
    while (known & 1) and not (value & 1):
        known >>= 1
        value >>= 1
        count += 1
    return count


def significant_width(term: T.Term,
                      cache: Optional[Dict[int, Bits]] = None) -> int:
    """Smallest width that holds every possibly-set bit of ``term``:
    ``term.width`` minus the leading *known-zero* bits (at least 1)."""
    known, value = known_bits(term, cache)
    width = term.width
    while width > 1:
        bit = 1 << (width - 1)
        if (known & bit) and not (value & bit):
            width -= 1
        else:
            break
    return width


def definitely_equal(a: T.Term, b: T.Term,
                     cache: Optional[Dict[int, Bits]] = None) -> bool:
    """Both terms fully known and equal (or identical nodes)."""
    if a is b:
        return True
    if a.width != b.width:
        return False
    if cache is None:
        cache = {}
    ka, va = known_bits(a, cache)
    kb, vb = known_bits(b, cache)
    full = T.mask(a.width)
    return ka == full and kb == full and va == vb


def definitely_unequal(a: T.Term, b: T.Term,
                       cache: Optional[Dict[int, Bits]] = None) -> bool:
    """Some bit position is known in both terms with different values —
    the terms differ under *every* assignment."""
    if a is b or a.width != b.width:
        return False
    if cache is None:
        cache = {}
    ka, va = known_bits(a, cache)
    kb, vb = known_bits(b, cache)
    return bool(ka & kb & (va ^ vb))
