"""The SMT solver front end used by the execution engine.

:class:`Solver` exposes the conventional assert / push / pop / check / model
interface over the bit-blaster and CDCL core.  Three layers are tried in
order on every :meth:`check` call, cheapest first:

1. **Model cache** — recently found models (plus the all-zero assignment)
   are replayed through the term evaluator; symbolic-execution workloads
   re-ask very similar questions, so this answers a large share of SAT
   queries without touching the SAT solver.
2. **Interval pre-filter** — conservative range analysis proves easy
   unsats (e.g. contradictory equalities on the same variable).
3. **Bit-blast + CDCL** — the complete decision procedure.  Assertions are
   blasted into one persistent CNF and each check solves under assumptions,
   so learned clauses carry over between path-feasibility queries.

Layers 1 and 2 can be disabled (``use_model_cache`` / ``use_intervals``)
for the Figure 2 ablation.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from . import terms as T
from .bitblast import BitBlaster
from .interval import refute_conjunction
from .sat import SAT, UNSAT, SatSolver

__all__ = ["Solver", "SolverStats", "SAT", "UNSAT"]


class SolverStats:
    """Counters for the throughput/ablation benchmarks.

    Stats are *cumulative over the solver's lifetime*; callers that need
    per-run numbers (e.g. one ``Engine.explore``) must snapshot with
    :meth:`as_dict` at the start and diff with :meth:`delta_since`.
    """

    def __init__(self):
        self.checks = 0
        self.cache_sat = 0
        self.interval_unsat = 0
        self.sat_calls = 0
        self.sat_results = 0
        self.unsat_results = 0
        self.solve_time = 0.0

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)

    def delta_since(self, before: Dict[str, float]) -> Dict[str, float]:
        """Stats accumulated since an earlier :meth:`as_dict` snapshot."""
        return {key: value - before.get(key, 0)
                for key, value in self.__dict__.items()}

    def __repr__(self):
        return "SolverStats(%s)" % ", ".join(
            "%s=%s" % item for item in sorted(self.__dict__.items()))


class Solver:
    """Incremental QF_BV solver (assert / push / pop / check / model)."""

    def __init__(self, use_intervals: bool = True,
                 use_model_cache: bool = True,
                 model_cache_size: int = 3):
        self.use_intervals = use_intervals
        self.use_model_cache = use_model_cache
        self._blaster = BitBlaster(SatSolver())
        self._frames: List[List[T.Term]] = [[]]
        self._model_cache: List[Dict[str, int]] = []
        self._model_cache_size = model_cache_size
        self._last_model: Optional[Dict[str, int]] = None
        self.stats = SolverStats()
        # Observability (attached by the engine; see repro.obs).
        from ..obs.metrics import NULL_HISTOGRAM
        from ..obs.profile import PhaseProfiler
        self._obs_tracer = None
        self._obs_profiler = PhaseProfiler(enabled=False)
        self._check_hist = NULL_HISTOGRAM

    def attach_obs(self, obs) -> None:
        """Wire an :class:`repro.obs.Obs` handle into this solver.

        Adds a ``solver`` profiler phase around every :meth:`check`, a
        ``solver.check_ms`` latency histogram, and (when the tracer has a
        sink) one ``solver_check`` event per query, attributed to the
        engine's current state/pc context.
        """
        self._obs_tracer = obs.tracer
        self._obs_profiler = obs.profiler
        self._check_hist = obs.metrics.histogram("solver.check_ms")

    # -- assertion management -------------------------------------------------

    def add(self, term: T.Term) -> None:
        """Assert a boolean term in the current frame."""
        if term.width != 1:
            raise T.WidthError(
                "assertions must be boolean (width 1), got width %d" % term.width)
        self._frames[-1].append(term)

    def push(self) -> None:
        self._frames.append([])

    def pop(self) -> None:
        if len(self._frames) == 1:
            raise T.SmtError("cannot pop the outermost frame")
        self._frames.pop()

    def assertions(self) -> List[T.Term]:
        return [term for frame in self._frames for term in frame]

    # -- solving ----------------------------------------------------------------

    def check(self, extra: Iterable[T.Term] = ()) -> str:
        """Check satisfiability of the assertions plus ``extra`` terms."""
        self.stats.checks += 1
        profiler = self._obs_profiler
        start = time.perf_counter()
        try:
            if profiler.enabled:
                with profiler.phase("solver"):
                    result = self._check(list(extra))
            else:
                result = self._check(list(extra))
        finally:
            elapsed = time.perf_counter() - start
            self.stats.solve_time += elapsed
        self._check_hist.observe(elapsed * 1000.0)
        if result == SAT:
            self.stats.sat_results += 1
        else:
            self.stats.unsat_results += 1
        tracer = self._obs_tracer
        if tracer is not None and tracer.enabled:
            tracer.emit("solver_check", result=result,
                        ms=round(elapsed * 1000.0, 4))
        return result

    def _check(self, extra: List[T.Term]) -> str:
        conds = self.assertions() + extra
        for term in extra:
            if term.width != 1:
                raise T.WidthError("extra constraints must be boolean")
        if any(T.is_false(term) for term in conds):
            return UNSAT
        conds = [term for term in conds if not T.is_true(term)]
        if not conds:
            self._last_model = {}
            return SAT
        if self.use_model_cache:
            for candidate in self._candidate_models():
                if T.all_true(conds, candidate):
                    self.stats.cache_sat += 1
                    self._remember(candidate)
                    self._last_model = candidate
                    return SAT
        if self.use_intervals and refute_conjunction(conds):
            self.stats.interval_unsat += 1
            return UNSAT
        self.stats.sat_calls += 1
        assumptions = [self._blaster.literal_for(term) for term in conds]
        if self._blaster.sat.solve(assumptions) == UNSAT:
            return UNSAT
        model = self._blaster.extract_model(self._blaster.sat.model())
        self._last_model = model
        self._remember(model)
        # Internal consistency check: the model must actually satisfy the
        # query (catches bit-blaster bugs immediately).
        if not T.all_true(conds, model):
            raise T.SmtError("solver produced a model that does not satisfy "
                             "the query; this is a bug in the bit-blaster")
        return SAT

    def _candidate_models(self):
        yield {}
        for model in reversed(self._model_cache):
            yield model

    def _remember(self, model: Dict[str, int]) -> None:
        if model in self._model_cache:
            return
        self._model_cache.append(dict(model))
        if len(self._model_cache) > self._model_cache_size:
            self._model_cache.pop(0)

    def model(self) -> Dict[str, int]:
        """The model of the last SAT answer (var name -> unsigned int)."""
        if self._last_model is None:
            raise T.SmtError("no model available; call check() first")
        return dict(self._last_model)

    def eval_term(self, term: T.Term) -> int:
        """Evaluate ``term`` under the last model."""
        return T.evaluate(term, self.model())
