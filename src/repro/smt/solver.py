"""The SMT solver front end used by the execution engine.

:class:`Solver` exposes the conventional assert / push / pop / check / model
interface over the bit-blaster and CDCL core.  Four layers are tried in
order on every :meth:`check` call, cheapest first:

0. **Query cache** — every decided query is memoized under a canonical,
   order-independent digest of its conjunction (``repro.smt.cache``).
   Exact repeats replay the stored verdict (and model); supersets of a
   known-unsat conjunction are unsat by subsumption; recent models are
   replayed against new queries (KLEE-style counterexample caching).
   Cache answers bypass the solving layers entirely: they are *not*
   counted as solver work (no ``solver_check`` event, no ``solver``
   profiler phase, no ``solver.check_ms`` observation) — they emit
   ``solver_cache`` events and ``solver.cache_*`` counters instead.
1. **Model cache** — recently found models (plus the all-zero assignment)
   are replayed through the term evaluator; symbolic-execution workloads
   re-ask very similar questions, so this answers a large share of SAT
   queries without touching the SAT solver.
2. **Interval pre-filter** — conservative range analysis proves easy
   unsats (e.g. contradictory equalities on the same variable).
3. **Bit-blast + CDCL** — the complete decision procedure.  Assertions are
   blasted into one persistent CNF and each check solves under assumptions,
   so learned clauses carry over between path-feasibility queries.

Layers 0–2 can be disabled (``use_query_cache`` / ``use_model_cache`` /
``use_intervals``) for the Figure 2 / Table 5 ablations; the engine's
``--no-solver-cache`` flag maps to ``use_query_cache=False``.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional

from . import terms as T
from .bitblast import BitBlaster
from .cache import QueryCache
from .interval import refute_conjunction
from .sat import SAT, UNSAT, SatSolver

__all__ = ["Solver", "SolverStats", "SAT", "UNSAT"]


class SolverStats:
    """Counters for the throughput/ablation benchmarks.

    Stats are *cumulative over the solver's lifetime*; callers that need
    per-run numbers (e.g. one ``Engine.explore``) must snapshot with
    :meth:`as_dict` at the start and diff with :meth:`delta_since`.

    Accounting contract (pinned by ``tests/obs/test_profile.py``):
    ``checks`` counts every :meth:`Solver.check` call; the ``cache_*``
    and ``frame_reuse`` counters partition the calls the query-cache
    layer answered, and those calls add nothing to ``solve_time``,
    the ``solver`` profiler phase, the ``solver.check_ms`` histogram or
    the ``solver_check`` event count — cached hits never inflate the
    solver's measured work.
    """

    def __init__(self):
        self.checks = 0
        self.cache_sat = 0
        self.interval_unsat = 0
        self.sat_calls = 0
        self.sat_results = 0
        self.unsat_results = 0
        self.solve_time = 0.0
        # Query-cache layer (repro.smt.cache).
        self.cache_hit_sat = 0          # exact key hit, SAT + memoized model
        self.cache_hit_unsat = 0        # exact key hit, UNSAT
        self.cache_model_reuse = 0      # cached model satisfied a new query
        self.cache_subsumed_unsat = 0   # superset of a known-unsat set
        self.cache_misses = 0           # probed the cache, had to solve
        # Engine-side incremental reuse: a state's cached frame model
        # answered a branch feasibility check without a solver call
        # (Solver.note_frame_reuse, driven by repro.core.executor).
        self.frame_reuse = 0

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)

    def delta_since(self, before: Dict[str, float]) -> Dict[str, float]:
        """Stats accumulated since an earlier :meth:`as_dict` snapshot."""
        return {key: value - before.get(key, 0)
                for key, value in self.__dict__.items()}

    def cache_hits_total(self) -> int:
        """Queries answered by the cache layer (any sub-path)."""
        return (self.cache_hit_sat + self.cache_hit_unsat
                + self.cache_model_reuse + self.cache_subsumed_unsat
                + self.frame_reuse)

    def __repr__(self):
        return "SolverStats(%s)" % ", ".join(
            "%s=%s" % item for item in sorted(self.__dict__.items()))


class Solver:
    """Incremental QF_BV solver (assert / push / pop / check / model)."""

    def __init__(self, use_intervals: bool = True,
                 use_model_cache: bool = True,
                 model_cache_size: int = 3,
                 use_query_cache: bool = True,
                 query_cache_size: int = 2048):
        self.use_intervals = use_intervals
        self.use_model_cache = use_model_cache
        self.use_query_cache = use_query_cache
        self._blaster = BitBlaster(SatSolver())
        self._frames: List[List[T.Term]] = [[]]
        # Model-replay layer: bounded LRU keyed on the model's sorted
        # item tuple.  OrderedDict gives O(1) insert/evict/refresh (the
        # old list form evicted FIFO via pop(0), an O(n) shift).
        self._model_cache: "OrderedDict[tuple, Dict[str, int]]" = \
            OrderedDict()
        self._model_cache_size = model_cache_size
        self._last_model: Optional[Dict[str, int]] = None
        self.query_cache = QueryCache(max_entries=query_cache_size) \
            if use_query_cache else None
        self.stats = SolverStats()
        # Observability (attached by the engine; see repro.obs).
        from ..obs.metrics import NULL_COUNTER, NULL_HISTOGRAM
        from ..obs.profile import PhaseProfiler
        self._obs_tracer = None
        self._obs_profiler = PhaseProfiler(enabled=False)
        self._attr = None
        self._check_hist = NULL_HISTOGRAM
        self._c_cache_hit = NULL_COUNTER
        self._c_cache_model_reuse = NULL_COUNTER
        self._c_cache_subsumed = NULL_COUNTER
        self._c_cache_miss = NULL_COUNTER
        self._c_frame_reuse = NULL_COUNTER

    def attach_obs(self, obs) -> None:
        """Wire an :class:`repro.obs.Obs` handle into this solver.

        Adds a ``solver`` profiler phase around every *solved* query, a
        ``solver.check_ms`` latency histogram, and (when the tracer has a
        sink) one ``solver_check`` event per solved query, attributed to
        the engine's current state/pc context.  Query-cache answers are
        counted separately — ``solver.cache_hit`` /
        ``solver.cache_model_reuse`` / ``solver.cache_subsumed`` /
        ``solver.cache_miss`` / ``solver.frame_reuse`` counters and one
        ``solver_cache`` event per hit — and deliberately skip the
        solver phase, histogram and ``solver_check`` event so cached
        hits never inflate measured solver work.
        """
        self._obs_tracer = obs.tracer
        self._obs_profiler = obs.profiler
        self._check_hist = obs.metrics.histogram("solver.check_ms")
        metrics = obs.metrics
        self._c_cache_hit = metrics.counter("solver.cache_hit")
        self._c_cache_model_reuse = metrics.counter(
            "solver.cache_model_reuse")
        self._c_cache_subsumed = metrics.counter("solver.cache_subsumed")
        self._c_cache_miss = metrics.counter("solver.cache_miss")
        self._c_frame_reuse = metrics.counter("solver.frame_reuse")

    def attach_attr(self, attr) -> None:
        """Wire a :class:`repro.obs.attr.CostAttribution` accumulator.

        Mirrors the profiler's accounting contract: every *solved*
        query charges its elapsed time to the engine's current
        rule/pc/IR context (``on_solver_check``); query-cache answers
        and frame reuse charge only a cache hit (``on_solver_cache``),
        never solver time."""
        self._attr = attr

    # -- assertion management -------------------------------------------------

    def add(self, term: T.Term) -> None:
        """Assert a boolean term in the current frame."""
        if term.width != 1:
            raise T.WidthError(
                "assertions must be boolean (width 1), got width %d" % term.width)
        self._frames[-1].append(term)

    def push(self) -> None:
        self._frames.append([])

    def pop(self) -> None:
        if len(self._frames) == 1:
            raise T.SmtError("cannot pop the outermost frame")
        self._frames.pop()

    def assertions(self) -> List[T.Term]:
        return [term for frame in self._frames for term in frame]

    # -- solving ----------------------------------------------------------------

    def check(self, extra: Iterable[T.Term] = ()) -> str:
        """Check satisfiability of the assertions plus ``extra`` terms."""
        self.stats.checks += 1
        extra = list(extra)
        for term in extra:
            if term.width != 1:
                raise T.WidthError("extra constraints must be boolean")
        conds = self.assertions() + extra
        key = None
        if self.query_cache is not None \
                and not any(T.is_false(term) for term in conds):
            live = [term for term in conds if not T.is_true(term)]
            key = T.query_key(live)
            cached = self._probe_cache(key, live)
            if cached is not None:
                return cached
            self.stats.cache_misses += 1
            self._c_cache_miss.inc()
            if self._attr is not None:
                self._attr.on_cache_miss()
        profiler = self._obs_profiler
        start = time.perf_counter()
        skip_models = key is not None  # the cache probe already replayed them
        try:
            if profiler.enabled:
                with profiler.phase("solver"):
                    result = self._check(conds, skip_models)
            else:
                result = self._check(conds, skip_models)
        finally:
            elapsed = time.perf_counter() - start
            self.stats.solve_time += elapsed
        self._check_hist.observe(elapsed * 1000.0)
        if result == SAT:
            self.stats.sat_results += 1
        else:
            self.stats.unsat_results += 1
        if key is not None:
            self.query_cache.store(
                key, result, self._last_model if result == SAT else None)
        if self._attr is not None:
            self._attr.on_solver_check(elapsed, result)
        tracer = self._obs_tracer
        if tracer is not None and tracer.enabled:
            tracer.emit("solver_check", result=result,
                        ms=round(elapsed * 1000.0, 4))
        return result

    # -- query-cache layer -------------------------------------------------------

    def _probe_cache(self, key, conds: List[T.Term]) -> Optional[str]:
        """Layer 0: exact hit, unsat subsumption, then model reuse.

        Returns the cached verdict, or None when the query must be
        solved.  Answers here touch none of the solver-work telemetry
        (``solve_time`` / ``solver`` phase / ``solver.check_ms`` /
        ``solver_check`` events); they count under ``cache_*`` stats and
        emit one ``solver_cache`` event instead.
        """
        cache = self.query_cache
        entry = cache.lookup(key)
        if entry is not None:
            if entry.verdict == SAT:
                self.stats.cache_hit_sat += 1
                self.stats.cache_sat += 1
                self._last_model = entry.model
            else:
                self.stats.cache_hit_unsat += 1
            self.stats.sat_results += entry.verdict == SAT
            self.stats.unsat_results += entry.verdict == UNSAT
            self._c_cache_hit.inc()
            self._emit_cache_event("exact", entry.verdict)
            return entry.verdict
        if cache.subsumes_unsat(key):
            self.stats.cache_subsumed_unsat += 1
            self.stats.unsat_results += 1
            self._c_cache_subsumed.inc()
            # Promote to an exact entry so the repeat is an O(1) hit.
            cache.store(key, UNSAT)
            self._emit_cache_event("subsume", UNSAT)
            return UNSAT
        if not self.use_model_cache:
            # Model replay (here and in _check) is one ablation switch:
            # with the model cache disabled the probe is exact+subsume
            # only, so layer-ablation tests still reach the SAT core.
            return None
        for model, memo in cache.recent_models():
            if T.all_true(conds, model, memo):
                self.stats.cache_model_reuse += 1
                self.stats.cache_sat += 1
                self.stats.sat_results += 1
                self._last_model = model
                self._c_cache_model_reuse.inc()
                cache.store(key, SAT, model)
                self._emit_cache_event("model", SAT)
                return SAT
        return None

    def _emit_cache_event(self, layer: str, result: str) -> None:
        if self._attr is not None:
            self._attr.on_solver_cache(layer)
        tracer = self._obs_tracer
        if tracer is not None and tracer.enabled:
            tracer.emit("solver_cache", layer=layer, result=result)

    def note_frame_reuse(self) -> None:
        """Record one engine-side incremental reuse: a per-path cached
        frame model answered a branch feasibility query, so no solver
        call was made at all (see ``Engine._frame_probe``)."""
        self.stats.frame_reuse += 1
        self._c_frame_reuse.inc()
        self._emit_cache_event("frame", SAT)

    # -- solving layers 1..3 ------------------------------------------------------

    def _check(self, conds: List[T.Term], skip_model_layer: bool = False
               ) -> str:
        if any(T.is_false(term) for term in conds):
            return UNSAT
        conds = [term for term in conds if not T.is_true(term)]
        if not conds:
            self._last_model = {}
            return SAT
        if self.use_model_cache and not skip_model_layer:
            for candidate in self._candidate_models():
                if T.all_true(conds, candidate):
                    self.stats.cache_sat += 1
                    self._remember(candidate)
                    self._last_model = candidate
                    return SAT
        if self.use_intervals and refute_conjunction(conds):
            self.stats.interval_unsat += 1
            return UNSAT
        self.stats.sat_calls += 1
        assumptions = [self._blaster.literal_for(term) for term in conds]
        if self._blaster.sat.solve(assumptions) == UNSAT:
            return UNSAT
        model = self._blaster.extract_model(self._blaster.sat.model())
        self._last_model = model
        self._remember(model)
        # Internal consistency check: the model must actually satisfy the
        # query (catches bit-blaster bugs immediately).
        if not T.all_true(conds, model):
            raise T.SmtError("solver produced a model that does not satisfy "
                             "the query; this is a bug in the bit-blaster")
        return SAT

    def _candidate_models(self):
        yield {}
        for model in reversed(self._model_cache.values()):
            yield model

    def _remember(self, model: Dict[str, int]) -> None:
        fingerprint = tuple(sorted(model.items()))
        if fingerprint in self._model_cache:
            # Refresh recency (LRU, not FIFO): a model answering again
            # should outlive colder entries.
            self._model_cache.move_to_end(fingerprint)
            return
        self._model_cache[fingerprint] = dict(model)
        if len(self._model_cache) > self._model_cache_size:
            self._model_cache.popitem(last=False)

    def model(self) -> Dict[str, int]:
        """The model of the last SAT answer (var name -> unsigned int)."""
        if self._last_model is None:
            raise T.SmtError("no model available; call check() first")
        return dict(self._last_model)

    def eval_term(self, term: T.Term) -> int:
        """Evaluate ``term`` under the last model."""
        return T.evaluate(term, self.model())
