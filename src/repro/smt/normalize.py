"""Width normalization: push truncation through low-bit-preserving ops.

The translation validator compares terms built by two different code
paths: the reference IR evaluation builds ``add(a, b)`` at 32 bits,
while the evaluator for the generated *concrete* Python models the
unbounded Python ints the code computes with — ``(a + b) &
0xffffffff`` becomes a 33-bit add under a 33-bit mask.  Semantically
identical, structurally different, and a naive bit-blast of the
inequality would hand the SAT solver a miter for every obligation.

:func:`lower` rewrites ``extract(term, w-1, 0)`` by pushing the
truncation through every operator whose low ``w`` bits depend only on
the low ``w`` bits of its inputs — add, sub, mul, the bitwise ops,
not, constant-amount shl, concat, zext, sext and ite — so both sides
collapse to the *same* hash-consed term and the obligation discharges
by pointer identity.  Operators that mix high bits into low bits
(variable shifts, lshr/ashr, division, comparisons) keep an opaque
``extract`` wrapper, which is still sound: ``lower`` only ever returns
a term equal to the low bits of its input.

:func:`canon` combines this with the known-bits analysis
(:mod:`repro.smt.knownbits`): leading provably-zero bits are stripped
first, so terms carrying different amounts of zero head-room meet at
their shared significant width.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from . import terms as T
from .knownbits import significant_width

__all__ = ["lower", "canon"]

#: Ops whose low-w result bits are a function of the low-w input bits.
_MODULAR = frozenset({T.ADD, T.SUB, T.MUL, T.AND, T.OR, T.XOR})

Cache = Dict[Tuple[int, int], T.Term]


def lower(term: T.Term, width: int,
          cache: Optional[Cache] = None) -> T.Term:
    """A term of ``width`` bits equal to ``extract(term, width-1, 0)``,
    with the truncation pushed as deep as soundness allows."""
    if width > term.width:
        raise T.WidthError("cannot lower width %d to %d"
                           % (term.width, width))
    if cache is None:
        cache = {}
    key = (term.tid, width)
    hit = cache.get(key)
    if hit is not None:
        return hit
    result = _lower(term, width, cache)
    cache[key] = result
    return result


def _lower(term: T.Term, width: int, cache: Cache) -> T.Term:
    if width == term.width:
        return _local(term, width, cache)
    op = term.op
    if op == T.CONST:
        return T.bv(term.value & T.mask(width), width)
    if op in _MODULAR:
        left = lower(term.args[0], width, cache)
        right = lower(term.args[1], width, cache)
        return _local_binop(op, left, right)
    if op == T.NOT:
        return T.not_(lower(term.args[0], width, cache))
    if op == T.ZEXT:
        inner = term.args[0]
        if width <= inner.width:
            return lower(inner, width, cache)
        return T.zext(lower(inner, inner.width, cache),
                      width - inner.width)
    if op == T.SEXT:
        inner = term.args[0]
        if width <= inner.width:
            return lower(inner, width, cache)
        return T.sext(lower(inner, inner.width, cache),
                      width - inner.width)
    if op == T.CONCAT:
        hi_part, lo_part = term.args
        if width <= lo_part.width:
            return lower(lo_part, width, cache)
        return T.concat(lower(hi_part, width - lo_part.width, cache),
                        lower(lo_part, lo_part.width, cache))
    if op == T.EXTRACT:
        hi, lo = term.params
        return lower(T.extract(term.args[0], lo + width - 1, lo),
                     width, cache)
    if op == T.ITE:
        return T.ite(term.args[0],
                     lower(term.args[1], width, cache),
                     lower(term.args[2], width, cache))
    if op == T.SHL:
        amount = term.args[1]
        if amount.is_const():
            shift = amount.value
            if shift >= width:
                return T.bv(0, width)
            return T.shl(lower(term.args[0], width, cache),
                         T.bv(shift, width))
    # lshr/ashr/division/variable shifts/predicates: high bits feed low
    # bits, so the truncation stays an opaque extract around the
    # locally-simplified term.
    return T.extract(_local(term, term.width, cache), width - 1, 0)


def _local(term: T.Term, width: int, cache: Cache) -> T.Term:
    """Same-width pass: rebuild through the simplifying constructors so
    identities the two codegen paths introduce (``x & 0xff..f``,
    ``x | 0``, ``x + 0``) fold away even without truncation."""
    op = term.op
    if op in _MODULAR:
        return _local_binop(op,
                            lower(term.args[0], term.args[0].width, cache),
                            lower(term.args[1], term.args[1].width, cache))
    if op == T.NOT:
        return T.not_(lower(term.args[0], term.args[0].width, cache))
    if op == T.ITE:
        return T.ite(term.args[0],
                     lower(term.args[1], width, cache),
                     lower(term.args[2], width, cache))
    if op == T.CONCAT:
        hi_part, lo_part = term.args
        return T.concat(lower(hi_part, hi_part.width, cache),
                        lower(lo_part, lo_part.width, cache))
    if op in (T.ZEXT, T.SEXT):
        inner = term.args[0]
        rebuilt = lower(inner, inner.width, cache)
        extra = term.width - inner.width
        return T.zext(rebuilt, extra) if op == T.ZEXT \
            else T.sext(rebuilt, extra)
    return term


_IDENTITY_SKIP = {
    T.ADD: 0, T.SUB: 0, T.OR: 0, T.XOR: 0,
}


def _local_binop(op: str, left: T.Term, right: T.Term) -> T.Term:
    """Build ``op`` via the simplifying constructor, plus the masking
    identities the generated concrete code introduces."""
    width = left.width
    if op == T.AND:
        full = T.mask(width)
        if right.is_const() and right.value == full:
            return left
        if left.is_const() and left.value == full:
            return right
        return T.and_(left, right)
    skip = _IDENTITY_SKIP.get(op)
    if skip is not None and right.is_const() and right.value == skip:
        return left
    if op in (T.ADD, T.OR, T.XOR) and left.is_const() \
            and left.value == _IDENTITY_SKIP.get(op):
        return right
    if op == T.MUL and right.is_const() and right.value == 1:
        return left
    if op == T.MUL and left.is_const() and left.value == 1:
        return right
    builder = {T.ADD: T.add, T.SUB: T.sub, T.MUL: T.mul,
               T.AND: T.and_, T.OR: T.or_, T.XOR: T.xor}[op]
    return builder(left, right)


def canon(term: T.Term, width: Optional[int] = None,
          cache: Optional[Cache] = None,
          kb_cache: Optional[Dict[int, Tuple[int, int]]] = None) -> T.Term:
    """Canonical comparison form of ``term``.

    With ``width`` (the obligation's destination width) the term is
    lowered to exactly that many bits.  Without it, leading
    provably-zero bits are stripped (known-bits) so both sides of a
    comparison meet at their shared significant width.
    """
    if width is None:
        width = significant_width(term, kb_cache)
    return lower(term, width, cache)
