"""QF_BV SMT solver substrate (terms, bit-blasting, CDCL SAT, intervals).

The paper's system sits on an off-the-shelf SMT solver; this package is the
offline substitute (see DESIGN.md §2): a self-contained bitvector solver
with hash-consed terms, construction-time simplification, Tseitin
bit-blasting and a CDCL SAT core.
"""

from .terms import (  # noqa: F401
    FALSE,
    TRUE,
    SmtError,
    Term,
    TermPool,
    WidthError,
    add,
    and_,
    ashr,
    bv,
    concat,
    concat_many,
    configure,
    conjoin,
    disjoin,
    eq,
    evaluate,
    extract,
    get_pool,
    implies,
    is_false,
    is_true,
    ite,
    lshr,
    mask,
    mul,
    ne,
    neg,
    not_,
    or_,
    pool_stats,
    rotl,
    rotr,
    sdiv,
    set_pool,
    sext,
    sge,
    sgt,
    shl,
    sle,
    slt,
    srem,
    sub,
    term_size,
    to_signed,
    udiv,
    uge,
    ugt,
    ule,
    ult,
    urem,
    var,
    variables,
    xor,
    zext,
)
from .bitblast import BitBlaster  # noqa: F401
from .interval import (  # noqa: F401
    definitely_false,
    definitely_true,
    interval,
    refute_conjunction,
)
from .sat import SAT, UNSAT, SatSolver  # noqa: F401
from .solver import Solver, SolverStats  # noqa: F401
