"""Hash-consed quantifier-free bitvector (QF_BV) terms.

This module is the foundation of the solver substrate: every symbolic value
the execution engine manipulates is a :class:`Term`.  Terms are immutable and
(by default) hash-consed, so structurally equal terms are the same object and
identity comparison is sound.  Constructors perform light rewriting
(constant folding, identity elimination, commutative-argument ordering) when
simplification is enabled; both behaviours can be disabled for the ablation
benchmarks via :func:`configure`.

Booleans are modelled as bitvectors of width 1 (``TRUE``/``FALSE``), which
keeps the operator set small and lets path conditions reuse the bitvector
machinery unchanged.

Division semantics follow SMT-LIB: ``udiv x 0`` is all-ones, ``urem x 0`` is
``x``, and the signed forms are derived from the unsigned ones by sign
manipulation.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict, Iterable, Optional, Tuple

__all__ = [
    "Term",
    "TermPool",
    "digest",
    "query_key",
    "SmtError",
    "WidthError",
    "configure",
    "get_pool",
    "set_pool",
    "pool_stats",
    "bv",
    "var",
    "add",
    "sub",
    "mul",
    "udiv",
    "urem",
    "sdiv",
    "srem",
    "and_",
    "or_",
    "xor",
    "not_",
    "neg",
    "shl",
    "lshr",
    "ashr",
    "rotl",
    "rotr",
    "concat",
    "concat_many",
    "extract",
    "zext",
    "sext",
    "ite",
    "eq",
    "ne",
    "ult",
    "ule",
    "ugt",
    "uge",
    "slt",
    "sle",
    "sgt",
    "sge",
    "implies",
    "conjoin",
    "disjoin",
    "TRUE",
    "FALSE",
    "is_true",
    "is_false",
    "evaluate",
    "variables",
    "term_size",
    "to_signed",
    "mask",
]


class SmtError(Exception):
    """Base class for solver-substrate errors."""


class WidthError(SmtError):
    """An operation was applied to terms of incompatible widths."""


def mask(width: int) -> int:
    """All-ones bitmask of ``width`` bits."""
    return (1 << width) - 1


def to_signed(value: int, width: int) -> int:
    """Interpret ``value`` (unsigned, ``width`` bits) as two's complement."""
    sign_bit = 1 << (width - 1)
    return (value & mask(width)) - ((value & sign_bit) << 1)


# Operator tags.  CONST and VAR are leaves; everything else is interior.
CONST = "const"
VAR = "var"
ADD = "add"
SUB = "sub"
MUL = "mul"
UDIV = "udiv"
UREM = "urem"
SDIV = "sdiv"
SREM = "srem"
AND = "and"
OR = "or"
XOR = "xor"
NOT = "not"
SHL = "shl"
LSHR = "lshr"
ASHR = "ashr"
CONCAT = "concat"
EXTRACT = "extract"
ZEXT = "zext"
SEXT = "sext"
ITE = "ite"
EQ = "eq"
ULT = "ult"
ULE = "ule"

_COMMUTATIVE = frozenset({ADD, MUL, AND, OR, XOR, EQ})


class Term:
    """An immutable bitvector expression node.

    Do not instantiate directly; use the module-level constructor functions
    (:func:`bv`, :func:`var`, :func:`add`, ...), which simplify and intern.
    """

    __slots__ = ("op", "width", "args", "value", "name", "params", "_id",
                 "_hash", "_digest")

    _counter = itertools.count()

    def __init__(self, op, width, args=(), value=None, name=None, params=()):
        self.op = op
        self.width = width
        self.args = args
        self.value = value
        self.name = name
        self.params = params
        self._id = next(Term._counter)
        self._hash = hash((op, width, value, name, params,
                           tuple(a._id for a in args)))
        # Lazily computed structural digest (see ``digest``): stable
        # across pools, processes and runs — the solver's query-cache key.
        self._digest = None

    @property
    def tid(self) -> int:
        """Globally unique term id (creation order)."""
        return self._id

    def is_const(self) -> bool:
        return self.op is CONST or self.op == CONST

    def is_var(self) -> bool:
        return self.op == VAR

    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        # Under hash-consing, identity suffices; structural fallback keeps
        # the no-consing ablation configuration correct.
        if self is other:
            return True
        if not isinstance(other, Term):
            return NotImplemented
        return (self.op == other.op and self.width == other.width
                and self.value == other.value and self.name == other.name
                and self.params == other.params and self.args == other.args)

    def __repr__(self):
        return "<Term {}>".format(render(self, max_depth=4))


def render(term: Term, max_depth: int = 12) -> str:
    """Human-readable rendering of a term, truncated at ``max_depth``."""
    if max_depth <= 0:
        return "..."
    if term.op == CONST:
        return "{:#x}[{}]".format(term.value, term.width)
    if term.op == VAR:
        return "{}[{}]".format(term.name, term.width)
    if term.op == EXTRACT:
        hi, lo = term.params
        return "{}[{}:{}]".format(render(term.args[0], max_depth - 1), hi, lo)
    inner = ", ".join(render(a, max_depth - 1) for a in term.args)
    if term.params:
        return "{}<{}>({})".format(
            term.op, ",".join(str(p) for p in term.params), inner)
    return "{}({})".format(term.op, inner)


class TermPool:
    """Interning pool plus construction-time simplification switches.

    ``hash_consing`` and ``simplify`` exist so the ablation benchmarks
    (DESIGN.md Table 5) can measure what each buys.
    """

    def __init__(self, hash_consing: bool = True, simplify: bool = True):
        self.hash_consing = hash_consing
        self.simplify = simplify
        self._interned: Dict[tuple, Term] = {}
        self._vars: Dict[str, Term] = {}
        self.hits = 0
        self.misses = 0

    def make(self, op, width, args=(), value=None, name=None, params=()) -> Term:
        if not self.hash_consing:
            self.misses += 1
            return Term(op, width, tuple(args), value, name, params)
        key = (op, width, value, name, params, tuple(a._id for a in args))
        found = self._interned.get(key)
        if found is not None:
            self.hits += 1
            return found
        self.misses += 1
        term = Term(op, width, tuple(args), value, name, params)
        self._interned[key] = term
        return term

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "interned": len(self._interned),
                "vars": len(self._vars)}

    def growth_since(self, before: Dict[str, int]) -> Dict[str, int]:
        """Stat deltas since an earlier :meth:`stats` snapshot.

        ``misses`` growth counts terms *constructed* in the window
        (every cache miss allocates one Term); ``interned`` growth is
        net live pool growth.  The health monitor samples this to
        surface term-pool blowup while a run is still in flight.
        """
        now = self.stats()
        return {key: now[key] - before.get(key, 0) for key in now}


_pool = TermPool()


def get_pool() -> TermPool:
    return _pool


def set_pool(pool: TermPool) -> TermPool:
    """Install ``pool`` as the active pool; returns the previous one."""
    global _pool, TRUE, FALSE
    previous = _pool
    _pool = pool
    TRUE = bv(1, 1)
    FALSE = bv(0, 1)
    return previous


def configure(hash_consing: Optional[bool] = None,
              simplify: Optional[bool] = None) -> TermPool:
    """Replace the active pool with a fresh one using the given switches."""
    pool = get_pool()
    new = TermPool(
        hash_consing=pool.hash_consing if hash_consing is None else hash_consing,
        simplify=pool.simplify if simplify is None else simplify,
    )
    set_pool(new)
    return new


def pool_stats() -> Dict[str, int]:
    return _pool.stats()


# ---------------------------------------------------------------------------
# Leaf constructors
# ---------------------------------------------------------------------------

def bv(value: int, width: int) -> Term:
    """A constant bitvector of ``width`` bits (value taken modulo 2**width)."""
    if width <= 0:
        raise WidthError("bitvector width must be positive, got %d" % width)
    return _pool.make(CONST, width, value=value & mask(width))


def var(name: str, width: int) -> Term:
    """A free bitvector variable.

    Within one pool a name is bound to a single width; reusing a name with a
    different width raises :class:`WidthError`.
    """
    if width <= 0:
        raise WidthError("bitvector width must be positive, got %d" % width)
    existing = _pool._vars.get(name)
    if existing is not None:
        if existing.width != width:
            raise WidthError(
                "variable %r already declared with width %d (asked for %d)"
                % (name, existing.width, width))
        return existing
    term = _pool.make(VAR, width, name=name)
    _pool._vars[name] = term
    return term


def _check_same_width(a: Term, b: Term, what: str) -> None:
    if a.width != b.width:
        raise WidthError("%s requires equal widths, got %d and %d"
                         % (what, a.width, b.width))


def _canonical_pair(a: Term, b: Term) -> Tuple[Term, Term]:
    """Order commutative operands: constants last, then by term id."""
    a_key = (0 if a.op != CONST else 1, a._id)
    b_key = (0 if b.op != CONST else 1, b._id)
    if b_key < a_key:
        return b, a
    return a, b


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------

def add(a: Term, b: Term) -> Term:
    _check_same_width(a, b, "add")
    w = a.width
    if _pool.simplify:
        if a.op == CONST and b.op == CONST:
            return bv(a.value + b.value, w)
        if a.op == CONST and a.value == 0:
            return b
        if b.op == CONST and b.value == 0:
            return a
        # Reassociate (x + c1) + c2 -> x + (c1+c2)
        if b.op == CONST and a.op == ADD and a.args[1].op == CONST:
            return add(a.args[0], bv(a.args[1].value + b.value, w))
        a, b = _canonical_pair(a, b)
    return _pool.make(ADD, w, (a, b))


def sub(a: Term, b: Term) -> Term:
    _check_same_width(a, b, "sub")
    w = a.width
    if _pool.simplify:
        if a.op == CONST and b.op == CONST:
            return bv(a.value - b.value, w)
        if b.op == CONST and b.value == 0:
            return a
        if a is b:
            return bv(0, w)
    return _pool.make(SUB, w, (a, b))


def neg(a: Term) -> Term:
    """Two's-complement negation."""
    return sub(bv(0, a.width), a)


def mul(a: Term, b: Term) -> Term:
    _check_same_width(a, b, "mul")
    w = a.width
    if _pool.simplify:
        if a.op == CONST and b.op == CONST:
            return bv(a.value * b.value, w)
        for x, y in ((a, b), (b, a)):
            if x.op == CONST:
                if x.value == 0:
                    return bv(0, w)
                if x.value == 1:
                    return y
        a, b = _canonical_pair(a, b)
    return _pool.make(MUL, w, (a, b))


def udiv(a: Term, b: Term) -> Term:
    _check_same_width(a, b, "udiv")
    w = a.width
    if _pool.simplify:
        if a.op == CONST and b.op == CONST:
            result = mask(w) if b.value == 0 else a.value // b.value
            return bv(result, w)
        if b.op == CONST and b.value == 1:
            return a
    return _pool.make(UDIV, w, (a, b))


def urem(a: Term, b: Term) -> Term:
    _check_same_width(a, b, "urem")
    w = a.width
    if _pool.simplify:
        if a.op == CONST and b.op == CONST:
            result = a.value if b.value == 0 else a.value % b.value
            return bv(result, w)
        if b.op == CONST and b.value == 1:
            return bv(0, w)
    return _pool.make(UREM, w, (a, b))


def sdiv(a: Term, b: Term) -> Term:
    _check_same_width(a, b, "sdiv")
    w = a.width
    if _pool.simplify and a.op == CONST and b.op == CONST:
        return bv(_const_sdiv(a.value, b.value, w), w)
    return _pool.make(SDIV, w, (a, b))


def srem(a: Term, b: Term) -> Term:
    _check_same_width(a, b, "srem")
    w = a.width
    if _pool.simplify and a.op == CONST and b.op == CONST:
        return bv(_const_srem(a.value, b.value, w), w)
    return _pool.make(SREM, w, (a, b))


def _const_sdiv(a: int, b: int, w: int) -> int:
    sa, sb = to_signed(a, w), to_signed(b, w)
    if sb == 0:
        return 1 if sa < 0 else mask(w)
    # SMT-LIB bvsdiv truncates toward zero.
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return q & mask(w)


def _const_srem(a: int, b: int, w: int) -> int:
    sa, sb = to_signed(a, w), to_signed(b, w)
    if sb == 0:
        return a
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return r & mask(w)


# ---------------------------------------------------------------------------
# Bitwise
# ---------------------------------------------------------------------------

def and_(a: Term, b: Term) -> Term:
    _check_same_width(a, b, "and")
    w = a.width
    if _pool.simplify:
        if a.op == CONST and b.op == CONST:
            return bv(a.value & b.value, w)
        for x, y in ((a, b), (b, a)):
            if x.op == CONST:
                if x.value == 0:
                    return bv(0, w)
                if x.value == mask(w):
                    return y
        if a is b:
            return a
        a, b = _canonical_pair(a, b)
    return _pool.make(AND, w, (a, b))


def or_(a: Term, b: Term) -> Term:
    _check_same_width(a, b, "or")
    w = a.width
    if _pool.simplify:
        if a.op == CONST and b.op == CONST:
            return bv(a.value | b.value, w)
        for x, y in ((a, b), (b, a)):
            if x.op == CONST:
                if x.value == 0:
                    return y
                if x.value == mask(w):
                    return bv(mask(w), w)
        if a is b:
            return a
        a, b = _canonical_pair(a, b)
    return _pool.make(OR, w, (a, b))


def xor(a: Term, b: Term) -> Term:
    _check_same_width(a, b, "xor")
    w = a.width
    if _pool.simplify:
        if a.op == CONST and b.op == CONST:
            return bv(a.value ^ b.value, w)
        for x, y in ((a, b), (b, a)):
            if x.op == CONST and x.value == 0:
                return y
        if a is b:
            return bv(0, w)
        a, b = _canonical_pair(a, b)
    return _pool.make(XOR, w, (a, b))


def not_(a: Term) -> Term:
    if _pool.simplify:
        if a.op == CONST:
            return bv(~a.value, a.width)
        if a.op == NOT:
            return a.args[0]
    return _pool.make(NOT, a.width, (a,))


# ---------------------------------------------------------------------------
# Shifts and rotates (shift amount has the same width as the value;
# over-shifting yields 0, or sign-fill for ashr, per SMT-LIB).
# ---------------------------------------------------------------------------

def shl(a: Term, amount: Term) -> Term:
    _check_same_width(a, amount, "shl")
    w = a.width
    if _pool.simplify:
        if amount.op == CONST:
            if amount.value == 0:
                return a
            if amount.value >= w:
                return bv(0, w)
            if a.op == CONST:
                return bv(a.value << amount.value, w)
    return _pool.make(SHL, w, (a, amount))


def lshr(a: Term, amount: Term) -> Term:
    _check_same_width(a, amount, "lshr")
    w = a.width
    if _pool.simplify:
        if amount.op == CONST:
            if amount.value == 0:
                return a
            if amount.value >= w:
                return bv(0, w)
            if a.op == CONST:
                return bv(a.value >> amount.value, w)
    return _pool.make(LSHR, w, (a, amount))


def ashr(a: Term, amount: Term) -> Term:
    _check_same_width(a, amount, "ashr")
    w = a.width
    if _pool.simplify:
        if amount.op == CONST:
            if amount.value == 0:
                return a
            if a.op == CONST:
                shift = min(amount.value, w - 1) if amount.value >= w else amount.value
                return bv(to_signed(a.value, w) >> shift, w)
            if amount.value >= w:
                # Pure sign fill.
                return _pool.make(ASHR, w, (a, bv(w - 1, w)))
    return _pool.make(ASHR, w, (a, amount))


def rotl(a: Term, amount: Term) -> Term:
    """Rotate left, lowered to shifts (correct for symbolic amounts)."""
    w = a.width
    amt = urem(amount, bv(w, w))
    return or_(shl(a, amt), lshr(a, sub(bv(w, w), amt)))


def rotr(a: Term, amount: Term) -> Term:
    """Rotate right, lowered to shifts (correct for symbolic amounts)."""
    w = a.width
    amt = urem(amount, bv(w, w))
    return or_(lshr(a, amt), shl(a, sub(bv(w, w), amt)))


# ---------------------------------------------------------------------------
# Structure: concat / extract / extension
# ---------------------------------------------------------------------------

def concat(hi: Term, lo: Term) -> Term:
    """Concatenate, with ``hi`` becoming the most significant bits."""
    w = hi.width + lo.width
    if _pool.simplify:
        if hi.op == CONST and lo.op == CONST:
            return bv((hi.value << lo.width) | lo.value, w)
        # concat of adjacent extracts of the same subject folds away.
        if (hi.op == EXTRACT and lo.op == EXTRACT
                and hi.args[0] is lo.args[0]
                and hi.params[1] == lo.params[0] + 1):
            return extract(hi.args[0], hi.params[0], lo.params[1])
    return _pool.make(CONCAT, w, (hi, lo))


def concat_many(parts: Iterable[Term]) -> Term:
    """Concatenate a most-significant-first sequence of terms."""
    parts = list(parts)
    if not parts:
        raise SmtError("concat_many needs at least one part")
    result = parts[0]
    for part in parts[1:]:
        result = concat(result, part)
    return result


def extract(a: Term, hi: int, lo: int) -> Term:
    """Bits ``hi`` down to ``lo`` inclusive (width ``hi - lo + 1``)."""
    if not (0 <= lo <= hi < a.width):
        raise WidthError("extract [%d:%d] out of range for width %d"
                         % (hi, lo, a.width))
    w = hi - lo + 1
    if _pool.simplify:
        if w == a.width:
            return a
        if a.op == CONST:
            return bv(a.value >> lo, w)
        if a.op == EXTRACT:
            inner_lo = a.params[1]
            return extract(a.args[0], inner_lo + hi, inner_lo + lo)
        if a.op == CONCAT:
            hi_part, lo_part = a.args
            if hi < lo_part.width:
                return extract(lo_part, hi, lo)
            if lo >= lo_part.width:
                return extract(hi_part, hi - lo_part.width, lo - lo_part.width)
        if a.op == ZEXT and hi < a.args[0].width:
            return extract(a.args[0], hi, lo)
        if a.op in (ZEXT, SEXT) and hi < a.args[0].width:
            return extract(a.args[0], hi, lo)
    return _pool.make(EXTRACT, w, (a,), params=(hi, lo))


def zext(a: Term, extra: int) -> Term:
    """Zero-extend by ``extra`` bits."""
    if extra < 0:
        raise WidthError("cannot extend by %d bits" % extra)
    if extra == 0:
        return a
    w = a.width + extra
    if _pool.simplify:
        if a.op == CONST:
            return bv(a.value, w)
        if a.op == ZEXT:
            return zext(a.args[0], w - a.args[0].width)
    return _pool.make(ZEXT, w, (a,), params=(extra,))


def sext(a: Term, extra: int) -> Term:
    """Sign-extend by ``extra`` bits."""
    if extra < 0:
        raise WidthError("cannot extend by %d bits" % extra)
    if extra == 0:
        return a
    w = a.width + extra
    if _pool.simplify:
        if a.op == CONST:
            return bv(to_signed(a.value, a.width), w)
        if a.op == SEXT:
            return sext(a.args[0], w - a.args[0].width)
        if a.op == ZEXT:
            # The zero-extended top bit is 0, so further extension is zero.
            return zext(a.args[0], w - a.args[0].width)
    return _pool.make(SEXT, w, (a,), params=(extra,))


# ---------------------------------------------------------------------------
# Predicates (width-1 results) and ite
# ---------------------------------------------------------------------------

def eq(a: Term, b: Term) -> Term:
    _check_same_width(a, b, "eq")
    if _pool.simplify:
        if a is b:
            return TRUE
        if a.op == CONST and b.op == CONST:
            return TRUE if a.value == b.value else FALSE
        if a.width == 1:
            # On booleans, eq is xnor; fold against constants.
            if a.op == CONST:
                return b if a.value == 1 else not_(b)
            if b.op == CONST:
                return a if b.value == 1 else not_(a)
        a, b = _canonical_pair(a, b)
    return _pool.make(EQ, 1, (a, b))


def ne(a: Term, b: Term) -> Term:
    return not_(eq(a, b))


def ult(a: Term, b: Term) -> Term:
    _check_same_width(a, b, "ult")
    if _pool.simplify:
        if a is b:
            return FALSE
        if a.op == CONST and b.op == CONST:
            return TRUE if a.value < b.value else FALSE
        if b.op == CONST and b.value == 0:
            return FALSE
        if a.op == CONST and a.value == mask(a.width):
            return FALSE
    return _pool.make(ULT, 1, (a, b))


def ule(a: Term, b: Term) -> Term:
    _check_same_width(a, b, "ule")
    if _pool.simplify:
        if a is b:
            return TRUE
        if a.op == CONST and b.op == CONST:
            return TRUE if a.value <= b.value else FALSE
        if a.op == CONST and a.value == 0:
            return TRUE
        if b.op == CONST and b.value == mask(b.width):
            return TRUE
    return _pool.make(ULE, 1, (a, b))


def ugt(a: Term, b: Term) -> Term:
    return ult(b, a)


def uge(a: Term, b: Term) -> Term:
    return ule(b, a)


def _flip_sign(a: Term) -> Term:
    return xor(a, bv(1 << (a.width - 1), a.width))


def slt(a: Term, b: Term) -> Term:
    """Signed less-than, lowered to unsigned with the sign bit flipped."""
    _check_same_width(a, b, "slt")
    return ult(_flip_sign(a), _flip_sign(b))


def sle(a: Term, b: Term) -> Term:
    _check_same_width(a, b, "sle")
    return ule(_flip_sign(a), _flip_sign(b))


def sgt(a: Term, b: Term) -> Term:
    return slt(b, a)


def sge(a: Term, b: Term) -> Term:
    return sle(b, a)


def ite(cond: Term, then: Term, other: Term) -> Term:
    if cond.width != 1:
        raise WidthError("ite condition must have width 1, got %d" % cond.width)
    _check_same_width(then, other, "ite")
    if _pool.simplify:
        if cond.op == CONST:
            return then if cond.value == 1 else other
        if then is other:
            return then
        if then.width == 1 and then.op == CONST and other.op == CONST:
            # ite(c, 1, 0) -> c ; ite(c, 0, 1) -> !c
            return cond if then.value == 1 else not_(cond)
    return _pool.make(ITE, then.width, (cond, then, other))


def implies(a: Term, b: Term) -> Term:
    return or_(not_(a), b)


def conjoin(conds: Iterable[Term]) -> Term:
    """AND of a sequence of booleans (TRUE for the empty sequence)."""
    result = TRUE
    for cond in conds:
        result = and_(result, cond)
    return result


def disjoin(conds: Iterable[Term]) -> Term:
    """OR of a sequence of booleans (FALSE for the empty sequence)."""
    result = FALSE
    for cond in conds:
        result = or_(result, cond)
    return result


TRUE = bv(1, 1)
FALSE = bv(0, 1)


def is_true(term: Term) -> bool:
    return term.op == CONST and term.width == 1 and term.value == 1


def is_false(term: Term) -> bool:
    return term.op == CONST and term.width == 1 and term.value == 0


# ---------------------------------------------------------------------------
# Evaluation and inspection
# ---------------------------------------------------------------------------

def evaluate(term: Term, assignment: Dict[str, int],
             default: Optional[int] = 0) -> int:
    """Concretely evaluate ``term`` under ``assignment`` (var name -> int).

    Unassigned variables take ``default`` (pass ``default=None`` to make them
    an error instead).  Iterative post-order traversal so deep terms do not
    hit the recursion limit.
    """
    cache: Dict[int, int] = {}
    stack = [(term, False)]
    while stack:
        node, ready = stack.pop()
        if node._id in cache:
            continue
        if not ready:
            if node.op == CONST:
                cache[node._id] = node.value
                continue
            if node.op == VAR:
                if node.name in assignment:
                    cache[node._id] = assignment[node.name] & mask(node.width)
                elif default is None:
                    raise SmtError("no value for variable %r" % node.name)
                else:
                    cache[node._id] = default & mask(node.width)
                continue
            stack.append((node, True))
            for arg in node.args:
                stack.append((arg, False))
            continue
        argv = [cache[a._id] for a in node.args]
        cache[node._id] = _eval_op(node, argv)
    return cache[term._id]


def _eval_op(node: Term, argv) -> int:
    op, w = node.op, node.width
    if op == ADD:
        return (argv[0] + argv[1]) & mask(w)
    if op == SUB:
        return (argv[0] - argv[1]) & mask(w)
    if op == MUL:
        return (argv[0] * argv[1]) & mask(w)
    if op == UDIV:
        return mask(w) if argv[1] == 0 else argv[0] // argv[1]
    if op == UREM:
        return argv[0] if argv[1] == 0 else argv[0] % argv[1]
    if op == SDIV:
        return _const_sdiv(argv[0], argv[1], w)
    if op == SREM:
        return _const_srem(argv[0], argv[1], w)
    if op == AND:
        return argv[0] & argv[1]
    if op == OR:
        return argv[0] | argv[1]
    if op == XOR:
        return argv[0] ^ argv[1]
    if op == NOT:
        return ~argv[0] & mask(w)
    if op == SHL:
        return (argv[0] << argv[1]) & mask(w) if argv[1] < w else 0
    if op == LSHR:
        return argv[0] >> argv[1] if argv[1] < w else 0
    if op == ASHR:
        shift = min(argv[1], w - 1) if argv[1] >= w else argv[1]
        return (to_signed(argv[0], w) >> shift) & mask(w)
    if op == CONCAT:
        return (argv[0] << node.args[1].width) | argv[1]
    if op == EXTRACT:
        hi, lo = node.params
        return (argv[0] >> lo) & mask(hi - lo + 1)
    if op == ZEXT:
        return argv[0]
    if op == SEXT:
        inner = node.args[0]
        return to_signed(argv[0], inner.width) & mask(w)
    if op == ITE:
        return argv[1] if argv[0] == 1 else argv[2]
    if op == EQ:
        return 1 if argv[0] == argv[1] else 0
    if op == ULT:
        return 1 if argv[0] < argv[1] else 0
    if op == ULE:
        return 1 if argv[0] <= argv[1] else 0
    raise SmtError("cannot evaluate operator %r" % op)


def all_true(terms: Iterable[Term], assignment: Dict[str, int],
             cache: Optional[Dict[int, int]] = None) -> bool:
    """True iff every boolean term evaluates to 1 under ``assignment``.

    Shares one memo table across the whole conjunction and bails at the
    first falsified conjunct — the hot path of the solver's model-cache
    layer, where re-walking shared path-condition DAGs per conjunct (or
    building a fresh ``conjoin`` term per query) would dominate.
    """
    if cache is None:
        cache = {}
    for term in terms:
        if _eval_cached(term, assignment, cache) != 1:
            return False
    return True


def _eval_cached(term: Term, assignment: Dict[str, int],
                 cache: Dict[int, int]) -> int:
    hit = cache.get(term._id)
    if hit is not None:
        return hit
    stack = [(term, False)]
    while stack:
        node, ready = stack.pop()
        if node._id in cache:
            continue
        if not ready:
            if node.op == CONST:
                cache[node._id] = node.value
                continue
            if node.op == VAR:
                cache[node._id] = assignment.get(node.name, 0) & mask(node.width)
                continue
            stack.append((node, True))
            for arg in node.args:
                stack.append((arg, False))
            continue
        argv = [cache[a._id] for a in node.args]
        cache[node._id] = _eval_op(node, argv)
    return cache[term._id]


def variables(term: Term) -> Dict[str, Term]:
    """All free variables in ``term``, keyed by name."""
    seen = set()
    found: Dict[str, Term] = {}
    stack = [term]
    while stack:
        node = stack.pop()
        if node._id in seen:
            continue
        seen.add(node._id)
        if node.op == VAR:
            found[node.name] = node
        else:
            stack.extend(node.args)
    return found


def term_size(term: Term) -> int:
    """Number of distinct nodes in the term DAG."""
    seen = set()
    stack = [term]
    while stack:
        node = stack.pop()
        if node._id in seen:
            continue
        seen.add(node._id)
        stack.extend(node.args)
    return len(seen)


# ---------------------------------------------------------------------------
# Stable structural digesting (the solver query-cache key material)
# ---------------------------------------------------------------------------

_DIGEST_SIZE = 16


def _node_digest(node: Term, child_digests) -> bytes:
    hasher = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    hasher.update(node.op.encode("ascii"))
    hasher.update(b"|%d|" % node.width)
    if node.op == CONST:
        hasher.update(b"%x" % node.value)
    elif node.op == VAR:
        hasher.update(node.name.encode("utf-8", "surrogatepass"))
    if node.params:
        hasher.update(("<%s>" % ",".join(str(p) for p in node.params))
                      .encode("ascii"))
    for child in child_digests:
        hasher.update(child)
    return hasher.digest()


def digest(term: Term) -> bytes:
    """Stable structural digest of a term (16-byte blake2b).

    Unlike ``hash(term)`` (which keys on interning ids), the digest is a
    pure function of the term's structure: identical across pools,
    processes and runs.  This makes it safe cache-key material — the
    solver's query cache keys each ``check()`` on the *set* of conjunct
    digests, so conjunct order and duplication cannot split cache
    entries (see :func:`query_key`).  Digests are memoized on the term,
    so amortized cost is one blake2b per distinct node.
    """
    cached = term._digest
    if cached is not None:
        return cached
    stack = [(term, False)]
    while stack:
        node, ready = stack.pop()
        if node._digest is not None:
            continue
        if not ready:
            stack.append((node, True))
            for arg in node.args:
                if arg._digest is None:
                    stack.append((arg, False))
            continue
        node._digest = _node_digest(node, (a._digest for a in node.args))
    return term._digest


def query_key(conds: Iterable[Term]) -> frozenset:
    """Canonical, order-independent key for a conjunction of booleans.

    The key is the frozenset of per-conjunct digests: reordered or
    duplicated conjuncts produce the same key, which is exactly the
    equivalence the solver's query cache wants (a conjunction is a set).
    """
    return frozenset(digest(cond) for cond in conds)
