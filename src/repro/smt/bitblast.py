"""Bit-blasting of bitvector terms to CNF.

Each :class:`~repro.smt.terms.Term` is translated into a list of SAT
literals, least-significant bit first.  The translation is cached per term
id, and gate outputs are cached structurally, so repeated sub-terms (the
common case with hash-consed path conditions) cost nothing the second time.

The blaster owns a :class:`~repro.smt.sat.SatSolver` and is *persistent*: the
SMT solver layer blasts every asserted term into the same CNF and solves
under assumptions, which lets learned clauses survive across path-feasibility
queries.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from . import terms as T
from .sat import SatSolver

__all__ = ["BitBlaster"]


class BitBlaster:
    """Translates terms to CNF inside a persistent SAT solver."""

    def __init__(self, solver: SatSolver = None):
        self.sat = solver if solver is not None else SatSolver()
        # Variable 1 is the constant TRUE.
        self._true = self.sat.new_var()
        self.sat.add_clause([self._true])
        self._term_bits: Dict[int, List[int]] = {}
        self._gate_cache: Dict[Tuple, int] = {}
        self._var_bits: Dict[str, Tuple[T.Term, List[int]]] = {}

    # -- gates ---------------------------------------------------------------

    @property
    def true_lit(self) -> int:
        return self._true

    @property
    def false_lit(self) -> int:
        return -self._true

    def _fresh(self) -> int:
        return self.sat.new_var()

    def _and(self, a: int, b: int) -> int:
        if a == self.false_lit or b == self.false_lit or a == -b:
            return self.false_lit
        if a == self.true_lit:
            return b
        if b == self.true_lit or a == b:
            return a
        key = ("and", a, b) if a < b else ("and", b, a)
        out = self._gate_cache.get(key)
        if out is not None:
            return out
        out = self._fresh()
        self.sat.add_clause([-out, a])
        self.sat.add_clause([-out, b])
        self.sat.add_clause([out, -a, -b])
        self._gate_cache[key] = out
        return out

    def _or(self, a: int, b: int) -> int:
        return -self._and(-a, -b)

    def _xor(self, a: int, b: int) -> int:
        if a == self.false_lit:
            return b
        if b == self.false_lit:
            return a
        if a == self.true_lit:
            return -b
        if b == self.true_lit:
            return -a
        if a == b:
            return self.false_lit
        if a == -b:
            return self.true_lit
        key = ("xor", a, b) if a < b else ("xor", b, a)
        out = self._gate_cache.get(key)
        if out is not None:
            return out
        out = self._fresh()
        self.sat.add_clause([-out, a, b])
        self.sat.add_clause([-out, -a, -b])
        self.sat.add_clause([out, -a, b])
        self.sat.add_clause([out, a, -b])
        self._gate_cache[key] = out
        return out

    def _mux(self, sel: int, then: int, other: int) -> int:
        """out = sel ? then : other."""
        if sel == self.true_lit:
            return then
        if sel == self.false_lit:
            return other
        if then == other:
            return then
        key = ("mux", sel, then, other)
        out = self._gate_cache.get(key)
        if out is not None:
            return out
        out = self._fresh()
        self.sat.add_clause([-sel, -then, out])
        self.sat.add_clause([-sel, then, -out])
        self.sat.add_clause([sel, -other, out])
        self.sat.add_clause([sel, other, -out])
        self._gate_cache[key] = out
        return out

    def _iff(self, a: int, b: int) -> int:
        return -self._xor(a, b)

    def _and_many(self, lits) -> int:
        out = self.true_lit
        for lit in lits:
            out = self._and(out, lit)
        return out

    def _or_many(self, lits) -> int:
        out = self.false_lit
        for lit in lits:
            out = self._or(out, lit)
        return out

    def _full_adder(self, a: int, b: int, cin: int) -> Tuple[int, int]:
        s = self._xor(self._xor(a, b), cin)
        cout = self._or(self._and(a, b), self._and(cin, self._xor(a, b)))
        return s, cout

    # -- word-level circuits ---------------------------------------------------

    def _adder(self, xs: List[int], ys: List[int], cin: int) -> List[int]:
        out = []
        carry = cin
        for a, b in zip(xs, ys):
            s, carry = self._full_adder(a, b, carry)
            out.append(s)
        return out

    def _negate(self, xs: List[int]) -> List[int]:
        return self._adder([-x for x in xs],
                           [self.false_lit] * len(xs), self.true_lit)

    def _multiplier(self, xs: List[int], ys: List[int]) -> List[int]:
        """Shift-and-add multiplier, truncated to len(xs) bits."""
        width = len(xs)
        acc = [self.false_lit] * width
        for i, y in enumerate(ys):
            if y == self.false_lit:
                continue
            partial = ([self.false_lit] * i
                       + [self._and(x, y) for x in xs[:width - i]])
            acc = self._adder(acc, partial, self.false_lit)
        return acc

    def _ult(self, xs: List[int], ys: List[int]) -> int:
        """Unsigned x < y, via the borrow-out of x - y."""
        borrow = self.false_lit
        for a, b in zip(xs, ys):
            diff = self._xor(a, b)
            borrow = self._or(self._and(-a, b), self._and(-diff, borrow))
        return borrow

    def _equal(self, xs: List[int], ys: List[int]) -> int:
        return self._and_many(self._iff(a, b) for a, b in zip(xs, ys))

    def _shifter(self, xs: List[int], amount: List[int], kind: str) -> List[int]:
        """Barrel shifter; over-shifts give 0 (or sign fill for 'ashr')."""
        width = len(xs)
        fill = xs[-1] if kind == "ashr" else self.false_lit
        stages = 0
        while (1 << stages) < width:
            stages += 1
        cur = list(xs)
        for stage in range(stages):
            sel = amount[stage]
            step = 1 << stage
            nxt = []
            for i in range(width):
                if kind == "shl":
                    shifted = cur[i - step] if i - step >= 0 else self.false_lit
                else:
                    shifted = cur[i + step] if i + step < width else fill
                nxt.append(self._mux(sel, shifted, cur[i]))
            cur = nxt
        # Any set bit of the amount beyond the stage bits means over-shift.
        over = self._or_many(amount[stages:])
        if over != self.false_lit:
            cur = [self._mux(over, fill, bit) for bit in cur]
        return cur

    def _divider(self, xs: List[int], ys: List[int]) -> Tuple[List[int], List[int]]:
        """Unsigned (quotient, remainder) with SMT-LIB division-by-zero.

        Uses the constraint formulation: fresh q/r with
        ``y != 0 -> (q*y + r == x  &&  r < y  &&  no overflow)``, and the
        by-zero results selected by mux.
        """
        width = len(xs)
        q = [self._fresh() for _ in range(width)]
        r = [self._fresh() for _ in range(width)]
        nz = self._or_many(ys)
        # Compute q*y + r at double width to rule out overflow.
        q2 = q + [self.false_lit] * width
        y2 = ys + [self.false_lit] * width
        r2 = r + [self.false_lit] * width
        prod = self._multiplier(q2, y2)
        total = self._adder(prod, r2, self.false_lit)
        # nz -> total == x (lower half) and total upper half == 0.
        for i in range(width):
            self._imply_iff(nz, total[i], xs[i])
        for i in range(width, 2 * width):
            self._imply_lit(nz, -total[i])
        # nz -> r < y.
        self._imply_lit(nz, self._ult(r, ys))
        q_out = [self._mux(nz, qi, self.true_lit) for qi in q]
        r_out = [self._mux(nz, ri, xi) for ri, xi in zip(r, xs)]
        return q_out, r_out

    def _imply_lit(self, cond: int, lit: int) -> None:
        self.sat.add_clause([-cond, lit])

    def _imply_iff(self, cond: int, a: int, b: int) -> None:
        self.sat.add_clause([-cond, -a, b])
        self.sat.add_clause([-cond, a, -b])

    # -- term translation ------------------------------------------------------

    def blast(self, term: T.Term) -> List[int]:
        """Literals of ``term``, LSB first (cached)."""
        cached = self._term_bits.get(term.tid)
        if cached is not None:
            return cached
        # Iterative post-order to avoid recursion limits on deep terms.
        stack = [(term, False)]
        while stack:
            node, ready = stack.pop()
            if node.tid in self._term_bits:
                continue
            if not ready:
                stack.append((node, True))
                for arg in node.args:
                    stack.append((arg, False))
                continue
            self._term_bits[node.tid] = self._blast_node(node)
        return self._term_bits[term.tid]

    def _blast_node(self, node: T.Term) -> List[int]:
        op = node.op
        if op == T.CONST:
            return [self.true_lit if (node.value >> i) & 1 else self.false_lit
                    for i in range(node.width)]
        if op == T.VAR:
            known = self._var_bits.get(node.name)
            if known is not None:
                return list(known[1])
            bits = [self._fresh() for _ in range(node.width)]
            self._var_bits[node.name] = (node, bits)
            return bits
        argv = [self._term_bits[a.tid] for a in node.args]
        if op == T.ADD:
            return self._adder(argv[0], argv[1], self.false_lit)
        if op == T.SUB:
            return self._adder(argv[0], [-b for b in argv[1]], self.true_lit)
        if op == T.MUL:
            return self._multiplier(argv[0], argv[1])
        if op == T.UDIV:
            return self._divider(argv[0], argv[1])[0]
        if op == T.UREM:
            return self._divider(argv[0], argv[1])[1]
        if op == T.SDIV or op == T.SREM:
            return self._signed_div(node, argv[0], argv[1])
        if op == T.AND:
            return [self._and(a, b) for a, b in zip(argv[0], argv[1])]
        if op == T.OR:
            return [self._or(a, b) for a, b in zip(argv[0], argv[1])]
        if op == T.XOR:
            return [self._xor(a, b) for a, b in zip(argv[0], argv[1])]
        if op == T.NOT:
            return [-a for a in argv[0]]
        if op == T.SHL:
            return self._shifter(argv[0], argv[1], "shl")
        if op == T.LSHR:
            return self._shifter(argv[0], argv[1], "lshr")
        if op == T.ASHR:
            return self._shifter(argv[0], argv[1], "ashr")
        if op == T.CONCAT:
            return argv[1] + argv[0]
        if op == T.EXTRACT:
            hi, lo = node.params
            return argv[0][lo:hi + 1]
        if op == T.ZEXT:
            return argv[0] + [self.false_lit] * node.params[0]
        if op == T.SEXT:
            return argv[0] + [argv[0][-1]] * node.params[0]
        if op == T.ITE:
            sel = argv[0][0]
            return [self._mux(sel, t, e) for t, e in zip(argv[1], argv[2])]
        if op == T.EQ:
            return [self._equal(argv[0], argv[1])]
        if op == T.ULT:
            return [self._ult(argv[0], argv[1])]
        if op == T.ULE:
            return [-self._ult(argv[1], argv[0])]
        raise T.SmtError("cannot bit-blast operator %r" % op)

    def _signed_div(self, node: T.Term, xs: List[int], ys: List[int]) -> List[int]:
        sign_x, sign_y = xs[-1], ys[-1]
        abs_x = [self._mux(sign_x, n, x) for n, x in zip(self._negate(xs), xs)]
        abs_y = [self._mux(sign_y, n, y) for n, y in zip(self._negate(ys), ys)]
        q_u, r_u = self._divider(abs_x, abs_y)
        if node.op == T.SDIV:
            flip = self._xor(sign_x, sign_y)
            return [self._mux(flip, n, q)
                    for n, q in zip(self._negate(q_u), q_u)]
        return [self._mux(sign_x, n, r) for n, r in zip(self._negate(r_u), r_u)]

    # -- query helpers ----------------------------------------------------------

    def literal_for(self, term: T.Term) -> int:
        """The single literal of a width-1 (boolean) term."""
        if term.width != 1:
            raise T.WidthError("expected a boolean term, got width %d" % term.width)
        return self.blast(term)[0]

    def to_dimacs(self, assumptions=()) -> str:
        """Export the current CNF (plus unit assumptions) in DIMACS format.

        Debugging/interop aid: the instance can be fed to any external SAT
        solver to cross-check answers.
        """
        clauses = list(self.sat._clauses) + [[lit] for lit in assumptions]
        lines = ["c repro bit-blaster export",
                 "p cnf %d %d" % (self.sat.num_vars, len(clauses))]
        for clause in clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    def extract_model(self, sat_model: Dict[int, int]) -> Dict[str, int]:
        """Read variable values out of a SAT model (missing bits are 0)."""
        model: Dict[str, int] = {}
        for name, (term, bits) in self._var_bits.items():
            value = 0
            for i, lit in enumerate(bits):
                if sat_model.get(abs(lit), 0) == (1 if lit > 0 else 0):
                    value |= 1 << i
            model[name] = value & T.mask(term.width)
        return model
