"""A CDCL SAT solver.

Implements the standard conflict-driven clause learning loop: two-watched-
literal propagation, first-UIP conflict analysis with learned-clause
minimization, EVSIDS branching, phase saving, and Luby restarts.  Pure
Python, tuned for the clause counts the bit-blaster produces (tens of
thousands of clauses), not for SAT-competition instances.

Literal encoding follows DIMACS: variables are positive integers, a negative
integer denotes the negated literal.  Internally literals map to indices
``2*v`` (positive) and ``2*v + 1`` (negative) for array-based watch lists.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["SatSolver", "SAT", "UNSAT"]

SAT = "sat"
UNSAT = "unsat"

_UNASSIGNED = -1


def _lit_index(lit: int) -> int:
    return 2 * lit if lit > 0 else -2 * lit + 1


def _index_lit(idx: int) -> int:
    var = idx >> 1
    return -var if idx & 1 else var


def luby(i: int) -> int:
    """The Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 ..."""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class SatSolver:
    """Incremental-ish CDCL solver.

    Clauses persist across :meth:`solve` calls; per-call *assumptions* give
    the incremental interface the SMT layer needs (assert once, query under
    different assumption sets).
    """

    def __init__(self, decay: float = 0.95, restart_base: int = 100):
        self._num_vars = 0
        self._clauses: List[List[int]] = []
        self._learned: List[List[int]] = []
        self._watches: List[List[List[int]]] = [[], []]  # index -> clauses
        self._assign: List[int] = [_UNASSIGNED]          # var -> 0/1
        self._level: List[int] = [0]
        self._reason: List[Optional[List[int]]] = [None]
        self._phase: List[int] = [0]
        self._activity: List[float] = [0.0]
        self._var_inc = 1.0
        self._decay = decay
        self._restart_base = restart_base
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._queue_head = 0
        self._empty_clause = False
        # Statistics, exposed for the benchmarks.
        self.stats = {"decisions": 0, "propagations": 0, "conflicts": 0,
                      "restarts": 0, "learned": 0}

    # -- construction -------------------------------------------------------

    def new_var(self) -> int:
        self._num_vars += 1
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._phase.append(0)
        self._activity.append(0.0)
        self._watches.append([])
        self._watches.append([])
        return self._num_vars

    def _ensure_var(self, var: int) -> None:
        while self._num_vars < var:
            self.new_var()

    def add_clause(self, lits: Sequence[int]) -> None:
        """Add a clause (a sequence of DIMACS literals)."""
        seen = set()
        clause: List[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            clause.append(lit)
            self._ensure_var(abs(lit))
        if not clause:
            self._empty_clause = True
            return
        if len(clause) == 1:
            # Stored as a clause so assumptions/restarts replay it uniformly.
            self._clauses.append(clause)
            return
        self._attach(clause)
        self._clauses.append(clause)

    def _attach(self, clause: List[int]) -> None:
        self._watches[_lit_index(-clause[0])].append(clause)
        self._watches[_lit_index(-clause[1])].append(clause)

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    # -- assignment helpers --------------------------------------------------

    def _value(self, lit: int) -> int:
        """0 false, 1 true, -1 unassigned."""
        val = self._assign[abs(lit)]
        if val == _UNASSIGNED:
            return _UNASSIGNED
        return val if lit > 0 else 1 - val

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> bool:
        val = self._value(lit)
        if val == 0:
            return False
        if val == 1:
            return True
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation; returns a conflicting clause or None."""
        while self._queue_head < len(self._trail):
            lit = self._trail[self._queue_head]
            self._queue_head += 1
            self.stats["propagations"] += 1
            watch_list = self._watches[_lit_index(lit)]
            i = 0
            while i < len(watch_list):
                clause = watch_list[i]
                # Make sure the falsified literal is in slot 1.
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    i += 1
                    continue
                # Look for a replacement watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[_lit_index(-clause[1])].append(clause)
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                if self._value(first) == 0:
                    return clause
                self._enqueue(first, clause)
                i += 1
        return None

    # -- conflict analysis ---------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _analyze(self, conflict: List[int]):
        """First-UIP learning; returns (learned clause, backtrack level)."""
        learned: List[int] = [0]  # slot 0 becomes the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = None
        reason = conflict
        index = len(self._trail)
        current_level = len(self._trail_lim)
        while True:
            for q in reason:
                if lit is not None and q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] == current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Walk the trail backwards to the next marked literal.
            while True:
                index -= 1
                lit = self._trail[index]
                if seen[abs(lit)]:
                    break
            counter -= 1
            seen[abs(lit)] = False
            if counter == 0:
                break
            reason = self._reason[abs(lit)]
        learned[0] = -lit
        # Clause minimization: drop literals implied by the rest.
        keep = [learned[0]]
        for q in learned[1:]:
            reason_q = self._reason[abs(q)]
            if reason_q is None:
                keep.append(q)
                continue
            if any(not seen[abs(r)] and self._level[abs(r)] > 0
                   for r in reason_q if abs(r) != abs(q)):
                keep.append(q)
        learned = keep
        if len(learned) == 1:
            back_level = 0
        else:
            # Second-highest decision level in the clause.
            levels = sorted((self._level[abs(q)] for q in learned[1:]),
                            reverse=True)
            back_level = levels[0]
            # Ensure the literal at that level is in slot 1 (watch invariant).
            for k in range(1, len(learned)):
                if self._level[abs(learned[k])] == back_level:
                    learned[1], learned[k] = learned[k], learned[1]
                    break
        return learned, back_level

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._phase[var] = self._assign[var]
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = len(self._trail)

    def _pick_branch(self) -> int:
        best_var = 0
        best_act = -1.0
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == _UNASSIGNED and self._activity[var] > best_act:
                best_act = self._activity[var]
                best_var = var
        if best_var == 0:
            return 0
        return best_var if self._phase[best_var] else -best_var

    # -- main loop -----------------------------------------------------------

    def solve(self, assumptions: Iterable[int] = ()) -> str:
        """Solve under ``assumptions``; returns :data:`SAT` or :data:`UNSAT`."""
        if self._empty_clause:
            return UNSAT
        self._backtrack(0)
        # Replay unit clauses at level 0.
        for clause in self._clauses:
            if len(clause) == 1 and not self._enqueue(clause[0], None):
                return UNSAT
        if self._propagate() is not None:
            return UNSAT
        assumptions = list(assumptions)
        for lit in assumptions:
            self._ensure_var(abs(lit))
        restart_round = 1
        conflicts_until_restart = self._restart_base * luby(restart_round)
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats["conflicts"] += 1
                conflicts_here += 1
                if not self._trail_lim:
                    return UNSAT
                if len(self._trail_lim) <= len(assumptions):
                    # Conflict forced purely by the assumptions.
                    return UNSAT
                learned, back_level = self._analyze(conflict)
                back_level = max(back_level, len(assumptions))
                if back_level >= len(self._trail_lim):
                    back_level = len(self._trail_lim) - 1
                self._backtrack(back_level)
                if len(learned) > 1:
                    self._attach(learned)
                    self._learned.append(learned)
                    self.stats["learned"] += 1
                self._enqueue(learned[0], learned)
                self._var_inc /= self._decay
                continue
            if conflicts_here >= conflicts_until_restart:
                self.stats["restarts"] += 1
                restart_round += 1
                conflicts_until_restart = self._restart_base * luby(restart_round)
                conflicts_here = 0
                self._backtrack(len(assumptions)
                                if len(self._trail_lim) > len(assumptions) else 0)
                continue
            # Apply pending assumptions, one decision level each.
            decision = 0
            if len(self._trail_lim) < len(assumptions):
                lit = assumptions[len(self._trail_lim)]
                val = self._value(lit)
                if val == 0:
                    return UNSAT
                self._trail_lim.append(len(self._trail))
                if val == _UNASSIGNED:
                    self._enqueue(lit, None)
                continue
            decision = self._pick_branch()
            if decision == 0:
                return SAT
            self.stats["decisions"] += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, None)

    def model(self) -> Dict[int, int]:
        """Assignment after a SAT answer: var -> 0/1 (unassigned vars -> 0)."""
        return {var: (self._assign[var] if self._assign[var] != _UNASSIGNED else 0)
                for var in range(1, self._num_vars + 1)}
