"""Conservative unsigned-interval analysis over bitvector terms.

Used as a cheap pre-filter before bit-blasting: if the interval of a path
condition is exactly ``[0, 0]`` the query is unsatisfiable without touching
the SAT solver.  The analysis is deliberately simple — soundness means the
computed interval always *contains* every feasible value, so ``[0, 0]``
implies genuinely-unsat while anything else is "don't know".
"""

from __future__ import annotations

from typing import Dict, Tuple

from . import terms as T

__all__ = ["interval", "definitely_false", "definitely_true",
           "refute_conjunction"]

Interval = Tuple[int, int]


def _full(width: int) -> Interval:
    return (0, T.mask(width))


def interval(term: T.Term, cache: Dict[int, Interval] = None) -> Interval:
    """Unsigned ``(lo, hi)`` bounds of ``term`` (iterative, memoized)."""
    if cache is None:
        cache = {}
    stack = [(term, False)]
    while stack:
        node, ready = stack.pop()
        if node.tid in cache:
            continue
        if not ready:
            if node.op == T.CONST:
                cache[node.tid] = (node.value, node.value)
                continue
            if node.op == T.VAR:
                cache[node.tid] = _full(node.width)
                continue
            stack.append((node, True))
            for arg in node.args:
                stack.append((arg, False))
            continue
        cache[node.tid] = _combine(node, [cache[a.tid] for a in node.args])
    return cache[term.tid]


def _bit_ceiling(value: int) -> int:
    """Smallest all-ones mask covering ``value``."""
    return (1 << value.bit_length()) - 1


def _combine(node: T.Term, argv) -> Interval:
    op, w = node.op, node.width
    top = T.mask(w)
    if op == T.ADD:
        lo = argv[0][0] + argv[1][0]
        hi = argv[0][1] + argv[1][1]
        return (lo, hi) if hi <= top else _full(w)
    if op == T.SUB:
        lo = argv[0][0] - argv[1][1]
        hi = argv[0][1] - argv[1][0]
        return (lo, hi) if lo >= 0 else _full(w)
    if op == T.MUL:
        lo = argv[0][0] * argv[1][0]
        hi = argv[0][1] * argv[1][1]
        return (lo, hi) if hi <= top else _full(w)
    if op == T.UDIV:
        (alo, ahi), (blo, bhi) = argv
        if blo > 0:
            return (alo // bhi, ahi // blo)
        return _full(w)
    if op == T.UREM:
        (alo, ahi), (blo, bhi) = argv
        if blo > 0:
            return (0, min(ahi, bhi - 1))
        return (0, max(ahi, bhi - 1 if bhi else 0))
    if op == T.AND:
        return (0, min(argv[0][1], argv[1][1]))
    if op == T.OR:
        return (max(argv[0][0], argv[1][0]),
                min(top, _bit_ceiling(argv[0][1] | argv[1][1])))
    if op == T.XOR:
        return (0, min(top, _bit_ceiling(argv[0][1] | argv[1][1])))
    if op == T.NOT:
        return (top - argv[0][1], top - argv[0][0])
    if op == T.SHL:
        (alo, ahi), (blo, bhi) = argv
        if blo == bhi:
            if blo >= w:
                return (0, 0)
            hi = ahi << blo
            if hi <= top:
                return (alo << blo, hi)
        return _full(w)
    if op == T.LSHR:
        (alo, ahi), (blo, bhi) = argv
        if blo == bhi:
            if blo >= w:
                return (0, 0)
            return (alo >> blo, ahi >> blo)
        return (0, argv[0][1])
    if op == T.ASHR:
        return _full(w)
    if op == T.CONCAT:
        lo_width = node.args[1].width
        return (argv[0][0] << lo_width, (argv[0][1] << lo_width) | argv[1][1])
    if op == T.EXTRACT:
        hi_bit, lo_bit = node.params
        if lo_bit == 0:
            return (0, min(T.mask(w), argv[0][1]))
        return _full(w)
    if op == T.ZEXT:
        return argv[0]
    if op == T.SEXT:
        inner_width = node.args[0].width
        if argv[0][1] < (1 << (inner_width - 1)):
            return argv[0]
        return _full(w)
    if op == T.ITE:
        clo, chi = argv[0]
        if clo == chi:
            return argv[1] if clo == 1 else argv[2]
        return (min(argv[1][0], argv[2][0]), max(argv[1][1], argv[2][1]))
    if op == T.EQ:
        (alo, ahi), (blo, bhi) = argv
        if ahi < blo or bhi < alo:
            return (0, 0)
        if alo == ahi == blo == bhi:
            return (1, 1)
        return (0, 1)
    if op == T.ULT:
        (alo, ahi), (blo, bhi) = argv
        if ahi < blo:
            return (1, 1)
        if alo >= bhi:
            return (0, 0)
        return (0, 1)
    if op == T.ULE:
        (alo, ahi), (blo, bhi) = argv
        if ahi <= blo:
            return (1, 1)
        if alo > bhi:
            return (0, 0)
        return (0, 1)
    return _full(w)


def definitely_false(term: T.Term) -> bool:
    """True when interval analysis proves a boolean term is 0."""
    return interval(term) == (0, 0)


def definitely_true(term: T.Term) -> bool:
    """True when interval analysis proves a boolean term is 1."""
    return interval(term) == (1, 1)


def _atom_bounds(cond: T.Term, bounds: Dict[int, Interval]) -> None:
    """Refine per-variable bounds from one atomic predicate, if it has the
    shape ``var <op> const`` (or its negation).  Sound refinements only."""
    negated = False
    while cond.op == T.NOT:
        negated = not negated
        cond = cond.args[0]
    if cond.op not in (T.EQ, T.ULT, T.ULE) or len(cond.args) != 2:
        return
    a, b = cond.args
    if a.op == T.VAR and b.op == T.CONST:
        v, c, var_on_left = a, b.value, True
    elif b.op == T.VAR and a.op == T.CONST:
        v, c, var_on_left = b, a.value, False
    else:
        return
    lo, hi = bounds.get(v.tid, _full(v.width))
    top = T.mask(v.width)
    op = cond.op
    if op == T.EQ:
        if not negated:
            lo, hi = max(lo, c), min(hi, c)
        # negated eq refines nothing interval-wise (a hole, not a bound)
    elif op == T.ULT:
        if var_on_left:      # v < c  /  not(v < c) == v >= c
            if not negated:
                hi = min(hi, c - 1)
            else:
                lo = max(lo, c)
        else:                # c < v  /  not(c < v) == v <= c
            if not negated:
                lo = max(lo, c + 1)
            else:
                hi = min(hi, c)
    elif op == T.ULE:
        if var_on_left:      # v <= c  /  v > c
            if not negated:
                hi = min(hi, c)
            else:
                lo = max(lo, c + 1)
        else:                # c <= v  /  v < c
            if not negated:
                lo = max(lo, c)
            else:
                hi = min(hi, c - 1)
    lo, hi = max(lo, 0), min(hi, top)
    bounds[v.tid] = (lo, hi)


def refute_conjunction(conds) -> bool:
    """True when interval propagation proves the conjunction unsatisfiable.

    First pass harvests per-variable bounds from atomic predicates; second
    pass re-evaluates every conjunct's interval with those refined variable
    ranges.  An empty variable range or a conjunct pinned to 0 is a proof of
    unsatisfiability.
    """
    conds = list(conds)
    bounds: Dict[int, Interval] = {}
    for cond in conds:
        _atom_bounds(cond, bounds)
    for lo, hi in bounds.values():
        if lo > hi:
            return True
    cache: Dict[int, Interval] = dict(bounds)
    for cond in conds:
        if interval(cond, cache) == (0, 0):
            return True
    return False
