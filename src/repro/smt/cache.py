"""Solver query-result cache: exact memoization + unsat subsumption.

Symbolic-execution workloads hammer the solver with *near-identical*
conjunctions: every branch feasibility check along a path shares the
whole path-condition prefix, a finished path's input query repeats the
last feasibility check verbatim, and checker queries re-ask the same
question at the same site on sibling paths.  The Survey of Symbolic
Execution Techniques (Baldoni et al.) names constraint caching the
standard lever — KLEE's counterexample cache — and this module is that
layer for :class:`repro.smt.solver.Solver`:

* **Exact cache** — every decided ``check()`` is stored under its
  canonical query key (:func:`repro.smt.terms.query_key`: the frozenset
  of per-conjunct structural digests, so conjunct order and duplication
  cannot split entries).  SAT entries memoize the model, so a repeat
  query returns both verdict *and* model without touching a solver
  layer.
* **Unsat subsumption** — a conjunction is unsat iff some subset of it
  is unsat.  Every UNSAT answer's key is kept in a bounded set; a new
  query that is a *superset* of any stored unsat set is unsat without
  solving.  (Without core extraction the stored set is the whole query —
  still sound, and supersets are exactly what path extension produces.)
* **Model reuse** — recent SAT models are replayed against new
  (typically superset) queries before any solving; a model that
  satisfies every conjunct proves SAT outright.  Each stored model
  carries a *persistent* evaluation memo (term id -> value under that
  model; term ids are never reused, so the memo can only be right), so
  replaying a model against a query that shares its path-condition
  prefix with earlier queries only evaluates the new conjuncts.

Everything here is *sound by construction*: exact hits replay a decided
verdict for a semantically identical query, subsumption only weakens
satisfiability, and model reuse proves SAT with an explicit witness.
The differential harness (``tests/smt/test_cache_differential.py``)
checks the claim against a cache-free twin on randomized query streams.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Iterator, Optional, Tuple

from .sat import SAT, UNSAT

__all__ = ["CacheEntry", "QueryCache"]


class CacheEntry:
    """One decided query: verdict plus (for SAT) the witnessing model."""

    __slots__ = ("verdict", "model")

    def __init__(self, verdict: str, model: Optional[Dict[str, int]]):
        self.verdict = verdict
        self.model = model

    def __repr__(self):
        return "<CacheEntry %s%s>" % (
            self.verdict, "" if self.model is None else " +model")


class QueryCache:
    """Bounded LRU of decided queries plus a bounded unsat-set index.

    ``max_entries`` bounds the exact cache, ``max_unsat_sets`` the
    subsumption index (scanned linearly per miss, so it stays small),
    and ``model_probe`` caps how many recent SAT models the solver
    replays per query.
    """

    def __init__(self, max_entries: int = 2048, max_unsat_sets: int = 64,
                 model_probe: int = 4):
        self.max_entries = max_entries
        self.max_unsat_sets = max_unsat_sets
        self.model_probe = model_probe
        self._entries: "OrderedDict[FrozenSet[bytes], CacheEntry]" = \
            OrderedDict()
        self._unsat_sets: "OrderedDict[FrozenSet[bytes], None]" = \
            OrderedDict()
        # Recent SAT models, newest last (bounded by model_probe).
        # Each entry pairs the model with its persistent evaluation
        # memo (term id -> value); the memo rides along so replays
        # against queries sharing a prefix stay incremental.
        self._models: "OrderedDict[tuple, Tuple[Dict[str, int], Dict[int, int]]]" = \
            OrderedDict()
        # The all-zero assignment is a candidate for every query (it
        # satisfies a surprising share of path conditions); it gets a
        # persistent memo of its own.
        self.zero_memo: Dict[int, int] = {}
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup --------------------------------------------------------------

    def lookup(self, key: FrozenSet[bytes]) -> Optional[CacheEntry]:
        """Exact hit (LRU-refreshing) or None."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def subsumes_unsat(self, key: FrozenSet[bytes]) -> bool:
        """True iff some stored unsat conjunction is a subset of ``key``.

        Any superset of an unsat set is unsat: adding conjuncts only
        strengthens a conjunction.
        """
        size = len(key)
        for unsat_key in self._unsat_sets:
            if len(unsat_key) <= size and unsat_key <= key:
                return True
        return False

    def recent_models(self) -> Iterator[Tuple[Dict[str, int], Dict[int, int]]]:
        """Candidate ``(model, memo)`` pairs for model reuse.

        Yields the all-zero assignment first, then the most recent SAT
        models newest-first (≤ ``model_probe``).  The memo is the
        model's persistent evaluation cache; callers pass it straight
        to ``terms.all_true`` so it keeps accumulating.
        """
        yield {}, self.zero_memo
        for pair in reversed(self._models.values()):
            yield pair

    # -- insertion -----------------------------------------------------------

    def store(self, key: FrozenSet[bytes], verdict: str,
              model: Optional[Dict[str, int]] = None) -> None:
        """Record a decided query (idempotent; refreshes recency)."""
        if key in self._entries:
            self._entries.move_to_end(key)
            entry = self._entries[key]
        else:
            entry = self._entries[key] = CacheEntry(verdict, model)
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        if verdict == UNSAT:
            self._remember_unsat(key)
        elif model is not None:
            entry.model = model
            self._remember_model(model)

    def _remember_unsat(self, key: FrozenSet[bytes]) -> None:
        if key in self._unsat_sets:
            self._unsat_sets.move_to_end(key)
            return
        # Drop stored sets subsumed by the newcomer: if ``key`` is a
        # subset of an existing set, the existing set is redundant.
        stale = [stored for stored in self._unsat_sets
                 if key < stored]
        for stored in stale:
            del self._unsat_sets[stored]
        self._unsat_sets[key] = None
        if len(self._unsat_sets) > self.max_unsat_sets:
            self._unsat_sets.popitem(last=False)

    def _remember_model(self, model: Dict[str, int]) -> None:
        if not model:
            return  # the zero assignment is always a candidate already
        fingerprint = tuple(sorted(model.items()))
        if fingerprint in self._models:
            # Refresh recency, keep the accumulated memo.
            self._models.move_to_end(fingerprint)
            return
        self._models[fingerprint] = (model, {})
        if len(self._models) > self.model_probe:
            self._models.popitem(last=False)

    # -- persistence ---------------------------------------------------------
    #
    # Cache keys are frozensets of *structural* term digests
    # (terms.digest / terms.query_key): 16-byte blake2b hashes computed
    # from operator + operands, independent of term ids or process.
    # That makes the whole cache process-portable — the run store
    # persists it alongside a recorded run so later explorations can
    # warm-start (repro.runstore).

    def save_state(self) -> Dict[str, object]:
        """JSON-able snapshot of every decided query, unsat set and
        recent model (evaluation memos are process-local and dropped)."""
        return {
            "version": 1,
            "entries": [
                {"key": sorted(digest.hex() for digest in key),
                 "verdict": entry.verdict,
                 "model": entry.model}
                for key, entry in self._entries.items()],
            "unsat_sets": [sorted(digest.hex() for digest in key)
                           for key in self._unsat_sets],
            "models": [model for model, _memo in self._models.values()],
        }

    def load_state(self, payload: Dict[str, object]) -> int:
        """Merge a :meth:`save_state` snapshot into this cache; returns
        the number of entries loaded.  Tolerant of malformed payloads
        (a corrupt warm-start file degrades to a cold cache)."""
        if not isinstance(payload, dict):
            return 0
        loaded = 0
        for record in payload.get("entries") or ():
            try:
                key = frozenset(bytes.fromhex(digest)
                                for digest in record["key"])
                verdict = record["verdict"]
                model = record.get("model")
            except (KeyError, TypeError, ValueError):
                continue
            if verdict not in (SAT, UNSAT):
                continue
            self.store(key, verdict,
                       model if isinstance(model, dict) else None)
            loaded += 1
        for row in payload.get("unsat_sets") or ():
            try:
                self._remember_unsat(frozenset(bytes.fromhex(digest)
                                               for digest in row))
            except (TypeError, ValueError):
                continue
        for model in payload.get("models") or ():
            if isinstance(model, dict):
                self._remember_model(model)
        return loaded

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> None:
        self._entries.clear()
        self._unsat_sets.clear()
        self._models.clear()
        self.zero_memo.clear()

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries),
                "unsat_sets": len(self._unsat_sets),
                "models": len(self._models),
                "evictions": self.evictions}

    def __repr__(self):
        return "<QueryCache %d entries, %d unsat sets>" % (
            len(self._entries), len(self._unsat_sets))
