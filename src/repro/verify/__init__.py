"""Translation validation for compiled transfer functions.

Statically proves the artifacts :mod:`repro.compile` emits — symbolic
plans and generated concrete Python — equivalent to the reference IR
semantics, rule by rule, over a fully symbolic pre-state.  Surfaces as
the ``transval-*`` lint pass family; see ``docs/LINT.md``.
"""

from .core import (
    COUNTEREXAMPLE,
    PROVED,
    UNSUPPORTED,
    VALIDATOR_VERSION,
    Counterexample,
    RuleResult,
    seeded_mutation,
    verify_model,
    verify_rule,
)
from .obligations import TIERS, ComparisonError, Mismatch, compare_paths
from .state import MachineState, PreState

__all__ = [
    "COUNTEREXAMPLE",
    "PROVED",
    "UNSUPPORTED",
    "VALIDATOR_VERSION",
    "TIERS",
    "ComparisonError",
    "Counterexample",
    "MachineState",
    "Mismatch",
    "PreState",
    "RuleResult",
    "compare_paths",
    "seeded_mutation",
    "verify_model",
    "verify_rule",
]
