"""Path pairing and tiered equivalence-obligation discharge.

Both evaluations of a rule produce guarded path sets over the shared
pre-state.  Equivalence is checked over the *path product*: for every
jointly feasible (reference path, candidate path) pair, each observable
destination — final register state per space, memory event log, output
bytes, input consumption, next PC, halt/trap outcome — must agree under
the joint guard.

Discharge is tiered, cheapest first, and every tier's hit count is
reported so the lint summary can show how little solver work a clean
spec needs:

1. **syntactic**  — infeasible pairs whose canonical guard sets contain
   a literal contradiction (``g`` and ``not g``) are dropped without
   any reasoning; this kills the off-diagonal pairs of structurally
   aligned forks.
2. **identity**   — both sides canonicalize
   (:func:`repro.smt.normalize.canon`) to the same hash-consed term.
3. **knownbits**  — :mod:`repro.smt.knownbits` proves or refutes the
   aligned equality bit-wise.
4. **interval**   — :mod:`repro.smt.interval` refutes the pair's guard
   conjunction, or decides the equality.
5. **solver**     — a single query per leftover obligation,
   ``guards ∧ lhs ≠ rhs``, batched through one solver (and its
   QueryCache) per rule; SAT models become concrete counterexamples.

A mismatch only counts once its pair is proven reachable (the guard
conjunction alone is SAT), so infeasible-path disagreements can never
produce false findings.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import sys

from ..smt import knownbits
from ..smt import terms as T
from ..smt import interval as _  # noqa: F401  (package attr is the fn)

#: ``repro.smt`` re-exports the :func:`interval` *function* as a
#: package attribute, shadowing the submodule — fetch the module.
interval = sys.modules["repro.smt.interval"]
from ..ir.symexec import Path
from .state import MachineState, PreState

__all__ = ["Mismatch", "ComparisonError", "compare_paths", "TIERS"]

#: Tier-counter keys, in discharge order.
TIERS = ("syntactic", "identity", "knownbits", "interval", "solver",
         "refuted_pairs")

#: Observation-index width for register-file final-state comparison
#: (any width at least as wide as every real index term works).
_OBS_WIDTH = 16


class ComparisonError(Exception):
    """The path product is too large to enumerate (explicit give-up)."""


class Mismatch:
    """One proven inequivalence: destination + concrete witness."""

    __slots__ = ("label", "model", "ref_value", "cand_value", "detail")

    def __init__(self, label: str, model: Dict[str, int],
                 ref_value: Optional[int] = None,
                 cand_value: Optional[int] = None,
                 detail: str = ""):
        self.label = label
        self.model = model
        self.ref_value = ref_value
        self.cand_value = cand_value
        self.detail = detail


class _Comparer:
    def __init__(self, pre: PreState, assumptions: List[T.Term],
                 single_spaces, solver, check: Callable,
                 tiers: Dict[str, int]):
        self.pre = pre
        self.assumptions = list(assumptions)
        self.single_spaces = set(single_spaces)
        self.solver = solver
        self.check = check
        self.tiers = tiers
        self._kb: Dict[int, Tuple[int, int]] = pre._kb_cache

    # -- guard handling ------------------------------------------------------

    def _guards(self, ref: Path, cand: Path) -> Optional[List[T.Term]]:
        """Joint canonical guard list, or None when syntactically or
        abstractly infeasible."""
        canon = self.pre.canon
        conds = [canon(g) for g in
                 tuple(self.assumptions) + ref[2] + cand[2]]
        seen = {T.digest(g) for g in conds}
        for cond in conds:
            if cond.is_const():
                if cond.value == 0:
                    self.tiers["syntactic"] += 1
                    return None
                continue
            if T.digest(T.not_(cond)) in seen:
                self.tiers["syntactic"] += 1
                return None
            known, value = knownbits.known_bits(cond, self._kb)
            if known & 1 and not (value & 1):
                self.tiers["knownbits"] += 1
                return None
        if interval.refute_conjunction(conds):
            self.tiers["interval"] += 1
            return None
        return [c for c in conds if not c.is_const()]

    def _pair_reachable(self, guards: List[T.Term]) -> bool:
        """Solver-confirm the pair's guards are satisfiable (only asked
        before reporting a mismatch — proofs never need it)."""
        verdict = self.check(self.solver, guards)
        if verdict != "sat":
            self.tiers["refuted_pairs"] += 1
            return False
        return True

    # -- single obligation ---------------------------------------------------

    def _discharge(self, label: str, ref_term: T.Term, cand_term: T.Term,
                   guards: List[T.Term],
                   mismatches: List[Mismatch]) -> None:
        a = self.pre.canon(ref_term)
        b = self.pre.canon(cand_term)
        if a is b:
            self.tiers["identity"] += 1
            return
        width = max(a.width, b.width)
        if a.width < width:
            a = T.zext(a, width - a.width)
        if b.width < width:
            b = T.zext(b, width - b.width)
        if a is b or knownbits.definitely_equal(a, b, self._kb):
            self.tiers["knownbits"] += 1
            return
        equal = T.eq(a, b)
        if interval.definitely_true(equal):
            self.tiers["interval"] += 1
            return
        self.tiers["solver"] += 1
        verdict = self.check(self.solver, guards + [T.not_(equal)])
        if verdict != "sat":
            return
        model = self.solver.model()
        mismatches.append(Mismatch(
            label, model,
            ref_value=T.evaluate(a, model),
            cand_value=T.evaluate(b, model)))

    # -- structural divergence ----------------------------------------------

    def _structure(self, ref: Path, cand: Path) -> Optional[str]:
        ref_machine, ref_outcome = ref[0], ref[1]
        cand_machine, cand_outcome = cand[0], cand[1]
        if ref_outcome.halted != cand_outcome.halted:
            return "halt behavior differs (ref halted=%s, compiled=%s)" \
                % (ref_outcome.halted, cand_outcome.halted)
        if ref_outcome.trapped != cand_outcome.trapped:
            return "trap behavior differs (ref trapped=%s, compiled=%s)" \
                % (ref_outcome.trapped, cand_outcome.trapped)
        if (ref_outcome.next_pc is None) != (cand_outcome.next_pc is None):
            return "next-pc presence differs (ref %s, compiled %s)" % (
                "set" if ref_outcome.next_pc is not None else "fallthrough",
                "set" if cand_outcome.next_pc is not None else "fallthrough")
        ref_events = [(e[0], e[-1]) for e in ref_machine.mem_log]
        cand_events = [(e[0], e[-1]) for e in cand_machine.mem_log]
        if ref_events != cand_events:
            return "memory access sequence differs (ref %r, compiled %r)" \
                % (ref_events, cand_events)
        if len(ref_machine.outputs) != len(cand_machine.outputs):
            return "output count differs (ref %d, compiled %d)" % (
                len(ref_machine.outputs), len(cand_machine.outputs))
        if ref_machine.input_count != cand_machine.input_count:
            return "input consumption differs (ref %d, compiled %d)" % (
                ref_machine.input_count, cand_machine.input_count)
        return None

    # -- one pair ------------------------------------------------------------

    def compare_pair(self, ref: Path, cand: Path,
                     mismatches: List[Mismatch]) -> None:
        guards = self._guards(ref, cand)
        if guards is None:
            return
        divergence = self._structure(ref, cand)
        if divergence is not None:
            if self._pair_reachable(guards):
                mismatches.append(Mismatch(
                    "structure", self.solver.model(), detail=divergence))
            return
        ref_machine: MachineState = ref[0]
        cand_machine: MachineState = cand[0]
        ref_outcome, cand_outcome = ref[1], cand[1]
        if ref_outcome.next_pc is not None:
            self._discharge("next_pc", ref_outcome.next_pc,
                            cand_outcome.next_pc, guards, mismatches)
        if ref_outcome.halted and ref_outcome.exit_code is not None \
                and cand_outcome.exit_code is not None:
            self._discharge("exit_code", ref_outcome.exit_code,
                            cand_outcome.exit_code, guards, mismatches)
        if ref_outcome.trapped and ref_outcome.trap_code is not None \
                and cand_outcome.trap_code is not None:
            self._discharge("trap_code", ref_outcome.trap_code,
                            cand_outcome.trap_code, guards, mismatches)
        spaces = sorted(set(ref_machine.touched_spaces())
                        | set(cand_machine.touched_spaces()))
        for space in spaces:
            obs = None if space in self.single_spaces \
                else self.pre.obs_var(space, _OBS_WIDTH)
            self._discharge("reg:%s" % space,
                            ref_machine.final_reg(space, obs),
                            cand_machine.final_reg(space, obs),
                            guards, mismatches)
        for position, (ref_event, cand_event) in enumerate(
                zip(ref_machine.mem_log, cand_machine.mem_log)):
            kind = ref_event[0]
            self._discharge("mem[%d]:%s addr" % (position, kind),
                            ref_event[1], cand_event[1], guards,
                            mismatches)
            if kind == "store":
                self._discharge("mem[%d]:store value" % position,
                                ref_event[2], cand_event[2], guards,
                                mismatches)
        for position, (ref_byte, cand_byte) in enumerate(
                zip(ref_machine.outputs, cand_machine.outputs)):
            self._discharge("output[%d]" % position, ref_byte,
                            cand_byte, guards, mismatches)


def compare_paths(ref_paths: List[Path], cand_paths: List[Path],
                  pre: PreState, assumptions: List[T.Term],
                  single_spaces, solver, check: Callable,
                  tiers: Dict[str, int], max_pairs: int = 512,
                  max_mismatches: int = 3) -> List[Mismatch]:
    """Compare the full path product; returns proven mismatches (empty
    means the rule is verified).  ``tiers`` is mutated with per-tier
    discharge counts; ``check`` is ``lambda solver, extra: verdict``
    (the lint pass routes it through ``ctx.check`` for attribution)."""
    if len(ref_paths) * len(cand_paths) > max_pairs:
        raise ComparisonError(
            "path product %d x %d exceeds limit %d"
            % (len(ref_paths), len(cand_paths), max_pairs))
    comparer = _Comparer(pre, assumptions, single_spaces, solver, check,
                         tiers)
    mismatches: List[Mismatch] = []
    for ref in ref_paths:
        for cand in cand_paths:
            comparer.compare_pair(ref, cand, mismatches)
            if len(mismatches) >= max_mismatches:
                return mismatches
    return mismatches
