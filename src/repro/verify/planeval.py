"""Re-execute generated symbolic plans over a fully symbolic pre-state.

The plans :mod:`repro.compile.symbolic` emits are specialized for the
engine's calling convention: field *terms* arrive pre-concretized
(``FT['rs1'].value`` is a decoded int), ``S.pc`` is a concrete program
counter, and loads/branch checks call back into the engine.  The
validator wants the same generated code run with every one of those
inputs symbolic — so this module re-executes the generated *source*
under a harness:

* ``FT[...].value`` is rewritten to ``FT[...]`` before compilation, so
  register indices stay terms (the only place ``.value`` appears in
  generated plan code is field-index concretization),
* ``T`` is shimmed so ``T.bv(S.pc, w)`` passes an already-symbolic pc
  term through (width-adapting, exactly like the reference evaluator's
  ``machine.pc``),
* the engine surface (``_load``/``_concrete_index``/``_check_div``) is
  a :class:`_HarnessEngine` that routes memory through the shared
  :class:`~repro.verify.state.MachineState` and keeps symbolic indices
  symbolic,
* the plan driver below replaces ``compile.symbolic._run``: same tag
  dispatch, same statement order, but a symbolic ``if`` always explores
  *both* arms (no feasibility pruning — the validator refutes
  infeasible path pairs during obligation matching instead), mirroring
  :func:`repro.ir.symexec.exec_block` path for path.

The result is a second set of :data:`repro.ir.symexec.Path` values over
the *same* pre-state variables as the reference evaluation — directly
comparable, and mostly hash-consing to identical terms.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..compile import symbolic as SP
from ..smt import terms as T
from ..ir.symexec import Path, SymExecError, SymOutcome
from .state import MachineState

__all__ = ["load_plans", "exec_plan"]

_FT_VALUE = re.compile(r"(FT\[[^\]]+\])\.value")


class _TermShim:
    """``T`` for re-executed plan code: ``bv`` tolerates term inputs
    (``T.bv(S.pc, w)``), everything else is the real module."""

    @staticmethod
    def bv(value, width: int) -> T.Term:
        if isinstance(value, T.Term):
            if value.width == width:
                return value
            if value.width > width:
                return T.extract(value, width - 1, 0)
            return T.zext(value, width - value.width)
        return T.bv(value, width)

    def __getattr__(self, name: str):
        return getattr(T, name)


class _HarnessConfig:
    # Division-by-zero feasibility probes are solver business, not
    # equivalence business: SMT-LIB total semantics (which both T.udiv
    # and the interpreter implement) carry the equivalence question.
    check_div_zero = False


class _HarnessEngine:
    config = _HarnessConfig()

    def _load(self, state: "_HarnessState", addr: T.Term, size: int,
              guards, decoded) -> T.Term:
        return state.machine.load(addr, size)

    def _concrete_index(self, state: "_HarnessState", term: T.Term,
                        decoded) -> T.Term:
        return term

    def _check_div(self, state, term, guards, decoded) -> None:
        raise SymExecError("div-zero probe reached with checks disabled")


class _HarnessState:
    """The ``S`` the generated expression code sees."""

    def __init__(self, machine: MachineState):
        self.machine = machine
        self.pc = machine.pc(machine.pre.pc_width)

    def read_reg(self, regfile: str, index) -> T.Term:
        return self.machine.read_reg(regfile, _index_term(index))


def _index_term(index) -> Optional[T.Term]:
    if index is None or isinstance(index, T.Term):
        return index
    # Constant index ('c' specs, match-fixed fields): minimal-width
    # constant, the canonical form a reference-side Const lowers to.
    return T.bv(index, max(int(index).bit_length(), 1))


def load_plans(symbolic_source: str, isa: str) -> Dict[str, tuple]:
    """Compile the generated symbolic module for harness execution."""
    rewritten = _FT_VALUE.sub(r"\1", symbolic_source)
    namespace: Dict[str, object] = {"T": _TermShim()}
    exec(compile(rewritten, "<repro.verify:%s:plans>" % isa, "exec"),
         namespace)
    plans = namespace["PLANS"]
    if not isinstance(plans, dict):
        raise SymExecError("generated symbolic module has no PLANS table")
    return plans


def exec_plan(plan: tuple, machine: MachineState,
              fields: Dict[str, T.Term]) -> List[Path]:
    """Run one rule's plan; returns every path's
    ``(machine, outcome, guards)`` — the reference evaluator's shape."""
    engine = _HarnessEngine()
    return _run(engine, _HarnessState(machine), [(plan, 0)], {},
                SymOutcome(), (), fields)


def _resolve_index(engine, state, spec, fields, local_values
                   ) -> Optional[T.Term]:
    if spec is None:
        return None
    kind = spec[0]
    if kind == "f":
        return fields[spec[1]]
    if kind == "c":
        return _index_term(spec[1])
    term = spec[1](engine, state, fields, {}, local_values, None)
    return term


def _run(engine, state: _HarnessState, frames, local_values,
         outcome: SymOutcome, guards: Tuple[T.Term, ...],
         fields: Dict[str, T.Term]) -> List[Path]:
    machine = state.machine
    while frames:
        stmts, index = frames[-1]
        if index >= len(stmts):
            frames.pop()
            continue
        frames[-1] = (stmts, index + 1)
        st = stmts[index]
        tag = st[0]
        if tag == SP.S_IF:
            cond = st[1](engine, state, fields, {}, local_values, None)
            if cond.is_const():
                body = st[2] if cond.value == 1 else st[3]
                if body:
                    frames.append((body, 0))
                continue
            return _fork(engine, state, st, cond, frames, local_values,
                         outcome, guards, fields)
        if tag == SP.S_REG:
            value = st[3](engine, state, fields, {}, local_values, None)
            machine.write_reg(
                st[1], _resolve_index(engine, state, st[2], fields,
                                      local_values), value)
        elif tag == SP.S_LOCAL:
            local_values[st[1]] = st[2](engine, state, fields, {},
                                        local_values, None)
        elif tag == SP.S_LOCAL_IN:
            local_values[st[1]] = machine.input_byte()
        elif tag == SP.S_REG_IN:
            value = machine.input_byte()
            machine.write_reg(
                st[1], _resolve_index(engine, state, st[2], fields,
                                      local_values), value)
        elif tag == SP.S_PC:
            outcome.next_pc = st[1](engine, state, fields, {},
                                    local_values, None)
        elif tag == SP.S_STORE:
            addr = st[1](engine, state, fields, {}, local_values, None)
            value = st[2](engine, state, fields, {}, local_values, None)
            machine.store(addr, value, st[3])
        elif tag == SP.S_OUT:
            machine.output_byte(st[1](engine, state, fields, {},
                                      local_values, None))
        elif tag == SP.S_HALT:
            outcome.halted = True
            outcome.exit_code = st[1](engine, state, fields, {},
                                      local_values, None)
            return [(machine, outcome, guards)]
        elif tag == SP.S_TRAP:
            outcome.trapped = True
            outcome.trap_code = st[1](engine, state, fields, {},
                                      local_values, None)
            return [(machine, outcome, guards)]
        else:
            raise SymExecError("unknown plan tag %r" % (tag,))
    return [(machine, outcome, guards)]


def _fork(engine, state: _HarnessState, st, cond: T.Term, frames,
          local_values, outcome: SymOutcome, guards: Tuple[T.Term, ...],
          fields: Dict[str, T.Term]) -> List[Path]:
    results: List[Path] = []
    branches = ((cond, st[2]), (T.not_(cond), st[3]))
    for position, (branch_cond, body) in enumerate(branches):
        last = position == len(branches) - 1
        branch_machine = state.machine if last else state.machine.fork()
        branch_state = state if last else _HarnessState(branch_machine)
        branch_frames = [(stmts, idx) for stmts, idx in frames]
        if body:
            branch_frames.append((body, 0))
        results.extend(_run(engine, branch_state, branch_frames,
                            dict(local_values), outcome.copy(),
                            guards + (branch_cond,), fields))
    return results
