"""Symbolic evaluation of *generated concrete Python* source.

The deepest layer of the translation validator: instead of trusting
that :mod:`repro.compile.concrete` emitted what its plan meant, this
module parses the emitted function with :mod:`ast` and executes it
symbolically — so a wrong mask literal, a reused walrus temp, a dropped
sign-extension or a reordered effect in the *generated text itself*
produces a counterexample, even when the generator's internal plan was
right.

Python ints are unbounded, so values are modeled exactly by
:class:`SymInt`: a bitvector term plus a signedness flag, where the
Python value is the term's unsigned (or two's-complement) reading.
Every arithmetic rule widens enough that no information is lost —
``a + b`` at ``max+1`` bits, ``a * b`` at ``wa+wb``, ``~a`` at a signed
``w+1`` — and the masking the generated code performs (``& 0xffffffff``)
is folded back down through :func:`repro.smt.normalize.lower`, so the
evaluated result usually hash-conses to the very term the reference IR
evaluation built.  The emitted sign-reinterpretation idiom
``((_w := x) - ((_w & 0x80..0) << 1))`` is recognized structurally and
becomes a signedness flip on the same term — which makes generated
signed comparisons meet the reference's ``slt`` by pointer identity.
The recognition is deliberately exact: a seeded mutation of the sign
literal fails the pattern and is evaluated generically, i.e. with the
mutated semantics.

Machine interaction (``C.read_reg``/``C.load``/``C.store``/…) routes
through the shared :class:`~repro.verify.state.MachineState`; ``if``
statements with symbolic conditions fork paths exactly like
:mod:`repro.ir.symexec`, and lazy ternaries with symbolic conditions
evaluate both arms (the reference evaluator's convention, so effect
logs stay aligned).  Only the grammar the concrete emitter produces is
supported; anything else raises :class:`PyEvalError`, which the lint
pass surfaces as an explicit WARN — never a silent skip.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from ..smt import terms as T
from ..ir.symexec import Path, SymOutcome
from .state import MachineState

__all__ = ["SymInt", "PyEvalError", "exec_function"]


class PyEvalError(Exception):
    """The generated source uses a construct this evaluator can't model."""


class SymInt:
    """An exact symbolic Python int: ``term`` read unsigned, or as
    two's complement when ``signed``."""

    __slots__ = ("term", "signed")

    def __init__(self, term: T.Term, signed: bool = False):
        self.term = term
        self.signed = signed

    @property
    def width(self) -> int:
        return self.term.width

    def __repr__(self) -> str:
        return "SymInt(%r, signed=%r)" % (self.term, self.signed)


def _lit(value: int) -> SymInt:
    if value >= 0:
        return SymInt(T.bv(value, max(value.bit_length(), 1)), False)
    width = value.bit_length() + 1
    return SymInt(T.bv(value & T.mask(width), width), True)


def _scw(x: SymInt) -> int:
    """Smallest *signed* width that holds ``x`` exactly."""
    return x.width if x.signed else x.width + 1


def _grow(x: SymInt, width: int) -> T.Term:
    """``x``'s exact value at ``width >= x.width`` bits."""
    if width == x.width:
        return x.term
    extra = width - x.width
    return T.sext(x.term, extra) if x.signed else T.zext(x.term, extra)


class _Evaluator:
    """One rule's symbolic execution over the generated function body."""

    _CMP_UNSIGNED = {ast.Lt: T.ult, ast.LtE: T.ule, ast.Gt: T.ugt,
                     ast.GtE: T.uge, ast.Eq: T.eq, ast.NotEq: T.ne}
    _CMP_SIGNED = {ast.Lt: T.slt, ast.LtE: T.sle, ast.Gt: T.sgt,
                   ast.GtE: T.sge, ast.Eq: T.eq, ast.NotEq: T.ne}

    def __init__(self, fields: Dict[str, T.Term]):
        self.fields = fields

    # -- value plumbing ------------------------------------------------------

    def to_bits(self, x: SymInt, width: int,
                machine: MachineState) -> T.Term:
        """Low ``width`` bits of ``x``'s two's-complement value."""
        if x.width == width:
            return x.term
        if x.width > width:
            return machine.pre.canon(x.term, width)
        return _grow(x, width)

    def to_bool(self, x: SymInt) -> T.Term:
        if x.width == 1 and not x.signed:
            return x.term
        return T.ne(x.term, T.bv(0, x.width))

    # -- expressions ---------------------------------------------------------

    def eval(self, node: ast.expr, env: Dict[str, SymInt],
             machine: MachineState):
        if isinstance(node, ast.Constant):
            if node.value is None or node.value is True \
                    or node.value is False:
                return node.value
            if isinstance(node.value, int):
                return _lit(node.value)
            raise PyEvalError("unsupported literal %r" % (node.value,))
        if isinstance(node, ast.Name):
            try:
                return env[node.id]
            except KeyError:
                raise PyEvalError("unbound name %r" % node.id)
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value, env, machine)
            if not isinstance(node.target, ast.Name):
                raise PyEvalError("unsupported walrus target")
            env[node.target.id] = value
            return value
        if isinstance(node, ast.Subscript):
            return self._field(node)
        if isinstance(node, ast.UnaryOp):
            return self._unary(node, env, machine)
        if isinstance(node, ast.BinOp):
            return self._binop(node, env, machine)
        if isinstance(node, ast.Compare):
            return self._compare(node, env, machine)
        if isinstance(node, ast.IfExp):
            return self._ternary(node, env, machine)
        if isinstance(node, ast.Call):
            return self._call(node, env, machine)
        raise PyEvalError("unsupported expression %s"
                          % type(node).__name__)

    def _field(self, node: ast.Subscript) -> SymInt:
        if not (isinstance(node.value, ast.Name)
                and node.value.id == "F"
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)):
            raise PyEvalError("unsupported subscript")
        name = node.slice.value
        term = self.fields.get(name)
        if term is None:
            raise PyEvalError("unknown field %r" % name)
        return SymInt(term, False)

    def _unary(self, node: ast.UnaryOp, env, machine) -> SymInt:
        if isinstance(node.op, ast.USub) \
                and isinstance(node.operand, ast.Constant) \
                and isinstance(node.operand.value, int):
            return _lit(-node.operand.value)
        x = self.eval(node.operand, env, machine)
        if isinstance(node.op, ast.USub):
            width = _scw(x) + 1
            return SymInt(T.sub(T.bv(0, width), _grow(x, width)), True)
        if isinstance(node.op, ast.Invert):
            width = _scw(x)
            return SymInt(T.not_(_grow(x, width)), True)
        raise PyEvalError("unsupported unary op %s"
                          % type(node.op).__name__)

    def _signed_trick(self, node: ast.BinOp, left: SymInt,
                      env: Dict[str, SymInt]) -> Optional[SymInt]:
        """Recognize ``(_w := x) - ((_w & SIGN) << 1)`` exactly."""
        if not isinstance(node.left, ast.NamedExpr) or left.signed:
            return None
        temp = node.left.target.id
        right = node.right
        if not (isinstance(right, ast.BinOp)
                and isinstance(right.op, ast.LShift)
                and isinstance(right.right, ast.Constant)
                and right.right.value == 1):
            return None
        inner = right.left
        if not (isinstance(inner, ast.BinOp)
                and isinstance(inner.op, ast.BitAnd)
                and isinstance(inner.left, ast.Name)
                and inner.left.id == temp
                and isinstance(inner.right, ast.Constant)
                and isinstance(inner.right.value, int)):
            return None
        sign = inner.right.value
        if sign == 1 << (left.width - 1):
            return SymInt(left.term, True)
        if sign != 0 and sign & (sign - 1) == 0 \
                and sign >= (1 << left.width):
            # The value provably misses the sign bit (our representation
            # already shrank below it): the reinterpretation is identity.
            return left
        return None  # mutated/odd sign literal: evaluate generically

    def _binop(self, node: ast.BinOp, env, machine) -> SymInt:
        a = self.eval(node.left, env, machine)
        if isinstance(node.op, ast.Sub):
            trick = self._signed_trick(node, a, env)
            if trick is not None:
                return trick
        b = self.eval(node.right, env, machine)
        op = node.op
        if isinstance(op, ast.Add):
            if a.signed or b.signed:
                width = max(_scw(a), _scw(b)) + 1
                return SymInt(T.add(_grow(a, width), _grow(b, width)),
                              True)
            width = max(a.width, b.width) + 1
            return SymInt(T.add(_grow(a, width), _grow(b, width)), False)
        if isinstance(op, ast.Sub):
            # boolnot: ``1 - (x & 1)`` over a 1-bit value is ``not``.
            if a.term.is_const() and a.term.value == 1 \
                    and not a.signed and b.width == 1 and not b.signed:
                return SymInt(T.not_(b.term), False)
            width = max(_scw(a), _scw(b)) + 1
            return SymInt(T.sub(_grow(a, width), _grow(b, width)), True)
        if isinstance(op, ast.Mult):
            if not a.signed and not b.signed:
                width = a.width + b.width
                return SymInt(T.mul(_grow(a, width), _grow(b, width)),
                              False)
            width = _scw(a) + _scw(b)
            return SymInt(T.mul(_grow(a, width), _grow(b, width)), True)
        if isinstance(op, ast.BitAnd):
            return self._bitand(a, b, machine)
        if isinstance(op, (ast.BitOr, ast.BitXor)):
            build = T.or_ if isinstance(op, ast.BitOr) else T.xor
            if not a.signed and not b.signed:
                width = max(a.width, b.width)
                return SymInt(build(_grow(a, width), _grow(b, width)),
                              False)
            width = max(_scw(a), _scw(b))
            return SymInt(build(_grow(a, width), _grow(b, width)), True)
        if isinstance(op, ast.LShift):
            return self._shift_left(a, b)
        if isinstance(op, ast.RShift):
            return self._shift_right(a, b)
        raise PyEvalError("unsupported binary op %s"
                          % type(op).__name__)

    def _bitand(self, a: SymInt, b: SymInt,
                machine: MachineState) -> SymInt:
        # Infinite two's-complement AND; a non-negative operand bounds
        # the result, so the representation re-shrinks to its width —
        # this is where the generated ``& mask`` collapses back onto
        # the reference term.
        if not a.signed and not b.signed:
            width = max(a.width, b.width)
            raw = T.and_(_grow(a, width), _grow(b, width))
            narrow = min(a.width, b.width)
            return SymInt(machine.pre.canon(raw, narrow), False)
        if a.signed and b.signed:
            width = max(a.width, b.width)
            return SymInt(T.and_(_grow(a, width), _grow(b, width)), True)
        unsigned, other = (a, b) if not a.signed else (b, a)
        width = max(_scw(a), _scw(b))
        raw = T.and_(_grow(a, width), _grow(b, width))
        return SymInt(machine.pre.canon(raw, unsigned.width), False)

    def _shift_left(self, a: SymInt, b: SymInt) -> SymInt:
        if not (b.term.is_const() and not b.signed):
            raise PyEvalError("symbolic shift amount outside helper")
        amount = b.term.value
        if amount == 0:
            return a
        width = a.width + amount
        return SymInt(T.shl(_grow(a, width), T.bv(amount, width)),
                      a.signed)

    def _shift_right(self, a: SymInt, b: SymInt) -> SymInt:
        if not (b.term.is_const() and not b.signed):
            raise PyEvalError("symbolic shift amount outside helper")
        amount = b.term.value
        if amount == 0:
            return a
        if a.signed:
            clamped = min(amount, a.width - 1)
            return SymInt(T.ashr(a.term, T.bv(clamped, a.width)), True)
        if amount >= a.width:
            return _lit(0)
        return SymInt(T.lshr(a.term, T.bv(amount, a.width)), False)

    def _compare(self, node: ast.Compare, env, machine) -> SymInt:
        if len(node.ops) != 1:
            raise PyEvalError("chained comparison")
        a = self.eval(node.left, env, machine)
        b = self.eval(node.comparators[0], env, machine)
        op = type(node.ops[0])
        if not a.signed and not b.signed:
            build = self._CMP_UNSIGNED.get(op)
            width = max(a.width, b.width)
        else:
            build = self._CMP_SIGNED.get(op)
            width = max(_scw(a), _scw(b))
        if build is None:
            raise PyEvalError("unsupported comparison %s" % op.__name__)
        return SymInt(build(_grow(a, width), _grow(b, width)), False)

    def _ternary(self, node: ast.IfExp, env, machine) -> SymInt:
        cond = self.to_bool(self.eval(node.test, env, machine))
        if cond.is_const():
            chosen = node.body if cond.value == 1 else node.orelse
            return self.eval(chosen, env, machine)
        # Symbolic condition: evaluate both arms (the reference
        # evaluator's IteExpr convention, keeping effect logs aligned).
        then = self.eval(node.body, env, machine)
        other = self.eval(node.orelse, env, machine)
        if then.signed or other.signed:
            width = max(_scw(then), _scw(other))
            return SymInt(T.ite(cond, _grow(then, width),
                                _grow(other, width)), True)
        width = max(then.width, other.width)
        return SymInt(T.ite(cond, _grow(then, width),
                            _grow(other, width)), False)

    # -- calls ---------------------------------------------------------------

    def _int_arg(self, node: ast.expr, what: str) -> int:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        raise PyEvalError("expected literal %s argument" % what)

    def _call(self, node: ast.Call, env, machine):
        func = node.func
        if isinstance(func, ast.Name):
            return self._helper(func.id, node.args, env, machine)
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "C":
            return self._machine_call(func.attr, node.args, env, machine)
        raise PyEvalError("unsupported call")

    def _helper(self, name: str, args, env, machine) -> SymInt:
        if name not in ("_udiv", "_urem", "_sdiv", "_srem", "_shl",
                        "_lshr", "_ashr"):
            raise PyEvalError("unknown helper %r" % name)
        left = self.eval(args[0], env, machine)
        right = self.eval(args[1], env, machine)
        if name == "_urem":
            width = max(left.width, right.width)
            return SymInt(T.urem(_grow(left, width), _grow(right, width)),
                          False)
        if name == "_udiv":
            width = self._int_arg(args[2], "mask").bit_length()
        else:
            width = self._int_arg(args[2], "width")
        build = {"_udiv": T.udiv, "_sdiv": T.sdiv, "_srem": T.srem,
                 "_shl": T.shl, "_lshr": T.lshr, "_ashr": T.ashr}[name]
        return SymInt(build(self.to_bits(left, width, machine),
                            self.to_bits(right, width, machine)),
                      False)

    def _machine_call(self, attr: str, args, env,
                      machine: MachineState):
        if attr == "current_pc":
            return SymInt(machine.pc(machine.pre.pc_width), False)
        if attr == "input_byte":
            return SymInt(machine.input_byte(), False)
        if attr == "read_reg":
            regfile = self._str_arg(args[0])
            index = self._index_arg(args[1], env, machine)
            return SymInt(machine.read_reg(regfile, index), False)
        if attr == "load":
            addr = self.eval(args[0], env, machine)
            size = self._int_arg(args[1], "size")
            return SymInt(machine.load(self._addr_term(addr, machine),
                                       size), False)
        if attr == "write_reg":
            regfile = self._str_arg(args[0])
            index = self._index_arg(args[1], env, machine)
            value = self.eval(args[2], env, machine)
            width = machine.reg_widths.get(regfile)
            if width is None:
                raise PyEvalError("unknown register space %r" % regfile)
            machine.write_reg(regfile, index,
                              self.to_bits(value, width, machine))
            return None
        if attr == "store":
            addr = self.eval(args[0], env, machine)
            value = self.eval(args[1], env, machine)
            size = self._int_arg(args[2], "size")
            machine.store(self._addr_term(addr, machine),
                          self.to_bits(value, 8 * size, machine), size)
            return None
        if attr == "output_byte":
            value = self.eval(args[0], env, machine)
            machine.output_byte(self.to_bits(value, 8, machine))
            return None
        raise PyEvalError("unsupported machine call C.%s" % attr)

    def _str_arg(self, node: ast.expr) -> str:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        raise PyEvalError("expected literal string argument")

    def _addr_term(self, addr: SymInt,
                   machine: MachineState) -> T.Term:
        return addr.term if not addr.signed \
            else self.to_bits(addr, addr.width, machine)

    def _index_arg(self, node: ast.expr, env,
                   machine: MachineState) -> Optional[T.Term]:
        value = self.eval(node, env, machine)
        if value is None:
            return None
        if not isinstance(value, SymInt):
            raise PyEvalError("unsupported register index")
        return value.term if not value.signed \
            else self.to_bits(value, value.width, machine)

    # -- statements ----------------------------------------------------------

    def run(self, body, machine: MachineState) -> List[Path]:
        return self._run(machine, [(tuple(body), 0)], {}, SymOutcome(),
                         ())

    def _run(self, machine: MachineState, frames, env: Dict[str, SymInt],
             outcome: SymOutcome,
             guards: Tuple[T.Term, ...]) -> List[Path]:
        while frames:
            stmts, index = frames[-1]
            if index >= len(stmts):
                frames.pop()
                continue
            frames[-1] = (stmts, index + 1)
            stmt = stmts[index]
            if isinstance(stmt, ast.Assign):
                self._assign(stmt, env, machine, outcome)
            elif isinstance(stmt, ast.Expr):
                if not isinstance(stmt.value, ast.Call):
                    raise PyEvalError("unsupported expression statement")
                self.eval(stmt.value, env, machine)
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    raise PyEvalError("unexpected return value")
                return [(machine, outcome, guards)]
            elif isinstance(stmt, ast.Pass):
                continue
            elif isinstance(stmt, ast.If):
                cond = self.to_bool(self.eval(stmt.test, env, machine))
                if cond.is_const():
                    body = stmt.body if cond.value == 1 else stmt.orelse
                    if body:
                        frames.append((tuple(body), 0))
                    continue
                return self._fork(machine, stmt, cond, frames, env,
                                  outcome, guards)
            else:
                raise PyEvalError("unsupported statement %s"
                                  % type(stmt).__name__)
        return [(machine, outcome, guards)]

    def _assign(self, stmt: ast.Assign, env, machine: MachineState,
                outcome: SymOutcome) -> None:
        if len(stmt.targets) != 1:
            raise PyEvalError("unsupported multi-target assignment")
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            value = self.eval(stmt.value, env, machine)
            if not isinstance(value, SymInt):
                raise PyEvalError("assignment of non-int value")
            env[target.id] = value
            return
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "O":
            value = self.eval(stmt.value, env, machine)
            if target.attr in ("halted", "trapped"):
                if value is not True:
                    raise PyEvalError("unexpected outcome flag value")
                setattr(outcome, target.attr, True)
                return
            if target.attr in ("next_pc", "exit_code", "trap_code"):
                if not isinstance(value, SymInt):
                    raise PyEvalError("assignment of non-int outcome")
                term = value.term if not value.signed \
                    else self.to_bits(value, value.width, machine)
                setattr(outcome, target.attr, term)
                return
        raise PyEvalError("unsupported assignment target")

    def _fork(self, machine: MachineState, stmt: ast.If, cond: T.Term,
              frames, env, outcome: SymOutcome,
              guards: Tuple[T.Term, ...]) -> List[Path]:
        results: List[Path] = []
        branches = ((cond, stmt.body), (T.not_(cond), stmt.orelse))
        for position, (branch_cond, body) in enumerate(branches):
            last = position == len(branches) - 1
            branch_machine = machine if last else machine.fork()
            branch_frames = [(block, idx) for block, idx in frames]
            if body:
                branch_frames.append((tuple(body), 0))
            results.extend(self._run(branch_machine, branch_frames,
                                     dict(env), outcome.copy(),
                                     guards + (branch_cond,)))
        return results


def exec_function(source: str, machine: MachineState,
                  fields: Dict[str, T.Term]) -> List[Path]:
    """Symbolically execute one generated transfer function's source."""
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        raise PyEvalError("generated source does not parse: %s" % error)
    for top in tree.body:
        if isinstance(top, ast.FunctionDef):
            return _Evaluator(fields).run(top.body, machine)
    raise PyEvalError("no function definition in generated source")
