"""Shared symbolic pre-state and effect-logging machine states.

Translation validation compares three executions of one rule — the
reference IR evaluation (:mod:`repro.ir.symexec`), the re-executed
symbolic plan, and the AST-evaluated concrete Python — and the
comparison is only meaningful if all three observe the *same* symbolic
pre-state.  :class:`PreState` owns that sharing: every read of a
machine location resolves to a memoized variable keyed on the
*canonicalized* location term (:func:`repro.smt.normalize.canon`), so
"register ``x[rs1]``" is one variable no matter which evaluator asks,
at which ambient width, or on which path.

Each evaluation runs on its own :class:`MachineState` (one per path),
which records machine-visible effects into ordered logs:

* ``reg_writes`` — ``(regfile, index term | None, value term)``; reads
  after writes fold through a McCarthy select over the log, so
  aliasing (``rs1 == rd``) and superseded writes are modeled exactly.
* ``mem_log`` — interleaved ``("load", addr, size)`` / ``("store",
  addr, value, size)`` events.  Load results are keyed by ``(address,
  size, prior-store count)``: two sides that perform the same
  load/store interleaving bind the same variables, while a load issued
  after a *different* number of stores gets a fresh variable — which
  is what makes "reorder a load past a store" show up as an
  inequivalence instead of being silently absorbed.
* ``outputs`` / ``input_count`` — the observable byte streams.

Zero-register semantics (``zero_index`` regfiles) are deliberately
*not* special-cased: every evaluation goes through the same machine
abstraction, so hardwired-zero folding cancels out of the equivalence
question and stays the simulator's/engine's business.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from ..smt import normalize
from ..smt import terms as T
from ..ir import symexec

__all__ = ["PreState", "MachineState", "RegWrite", "MemEvent"]

#: (regfile, canonical index term or None, value term)
RegWrite = Tuple[str, Optional[T.Term], T.Term]
#: ("load", addr, size) or ("store", addr, value, size)
MemEvent = Union[Tuple[str, T.Term, int], Tuple[str, T.Term, T.Term, int]]


class PreState:
    """The rule's symbolic pre-state, shared by every evaluation."""

    def __init__(self, mkvar: Callable[[str, int], T.Term],
                 pc_width: int):
        self._mkvar = mkvar
        self.pc_width = pc_width
        self._reads: Dict[object, T.Term] = {}
        #: variable name -> human-readable location ("x[rs1]", "pc"),
        #: for rendering counterexample pre-states.
        self.labels: Dict[str, str] = {}
        self._canon_cache: Dict[Tuple[int, int], T.Term] = {}
        self._kb_cache: Dict[int, Tuple[int, int]] = {}

    # -- canonical location keys ---------------------------------------------

    def canon(self, term: T.Term, width: Optional[int] = None) -> T.Term:
        return normalize.canon(term, width, self._canon_cache,
                               self._kb_cache)

    def _key(self, term: Optional[T.Term]):
        if term is None:
            return None
        return T.digest(self.canon(term))

    # -- pre-state variables --------------------------------------------------

    def _read_var(self, key, what: str, width: int,
                  label: str) -> T.Term:
        var = self._reads.get(key)
        if var is None:
            var = self._mkvar("%s%d" % (what, len(self._reads)), width)
            self._reads[key] = var
            self.labels[var.name] = label
        if var.width != width:
            raise symexec.SymExecError(
                "pre-state location read at widths %d and %d"
                % (var.width, width))
        return var

    def pc_term(self, width: int) -> T.Term:
        var = self._read_var(("pc",), "pc", self.pc_width, "pc")
        if width == self.pc_width:
            return var
        if width < self.pc_width:
            return T.extract(var, width - 1, 0)
        return T.zext(var, width - self.pc_width)

    def reg_var(self, regfile: str, index: Optional[T.Term],
                width: int) -> T.Term:
        label = regfile if index is None \
            else "%s[%s]" % (regfile, _short(index))
        return self._read_var(("reg", regfile, self._key(index)),
                              "r", width, label)

    def mem_var(self, addr: T.Term, size: int, epoch: int) -> T.Term:
        label = "mem[%s]:%d" % (_short(addr), size)
        if epoch:
            label += "@%d" % epoch
        return self._read_var(("mem", self._key(addr), size, epoch),
                              "m", 8 * size, label)

    def input_var(self, position: int) -> T.Term:
        return self._read_var(("in", position), "in", 8,
                              "in[%d]" % position)

    def obs_var(self, regfile: str, width: int) -> T.Term:
        """Observation index for final-state register comparison."""
        return self._read_var(("obs", regfile), "obs", width,
                              "obs(%s)" % regfile)

    def read_vars(self) -> Dict[object, T.Term]:
        """Every pre-state variable handed out so far (witness rendering)."""
        return dict(self._reads)


class MachineState(symexec.SymbolicMachine):
    """One path's machine state: shared pre-state + ordered effect logs.

    ``reg_widths`` maps regfile *and* single-register names to their
    declared width; reads and writes are normalized to that width at
    the machine boundary (the real machine masks on write, so low
    ``width`` bits are exactly what is architecturally observable).
    """

    def __init__(self, pre: PreState, reg_widths: Dict[str, int]):
        self.pre = pre
        self.reg_widths = reg_widths
        self.reg_writes: List[RegWrite] = []
        self.mem_log: List[MemEvent] = []
        self.outputs: List[T.Term] = []
        self.input_count = 0
        self.store_count = 0

    def fork(self) -> "MachineState":
        clone = MachineState(self.pre, self.reg_widths)
        clone.reg_writes = list(self.reg_writes)
        clone.mem_log = list(self.mem_log)
        clone.outputs = list(self.outputs)
        clone.input_count = self.input_count
        clone.store_count = self.store_count
        return clone

    # -- widths ----------------------------------------------------------------

    def _reg_width(self, regfile: str) -> int:
        width = self.reg_widths.get(regfile)
        if width is None:
            raise symexec.SymExecError("unknown register space %r"
                                       % regfile)
        return width

    # -- SymbolicMachine surface ----------------------------------------------

    def read_reg(self, regfile: str,
                 index: Optional[T.Term]) -> T.Term:
        width = self._reg_width(regfile)
        index = None if index is None else self.pre.canon(index)
        value = self.pre.reg_var(regfile, index, width)
        # McCarthy select over this path's writes, oldest first.
        for written_file, written_index, written_value in self.reg_writes:
            if written_file != regfile:
                continue
            if index is None or written_index is None:
                if index is None and written_index is None:
                    value = written_value
                continue
            value = T.ite(index_eq(index, written_index),
                          written_value, value)
        return value

    def write_reg(self, regfile: str, index: Optional[T.Term],
                  value: T.Term) -> None:
        width = self._reg_width(regfile)
        index = None if index is None else self.pre.canon(index)
        self.reg_writes.append((regfile, index, self._fit(value, width)))

    def load(self, addr: T.Term, size: int) -> T.Term:
        addr = self.pre.canon(addr)
        self.mem_log.append(("load", addr, size))
        value: Optional[T.Term] = None
        epoch = 0
        for event in self.mem_log[:-1]:
            if event[0] != "store":
                continue
            epoch += 1
            _, stored_addr, stored_value, stored_size = event
            if stored_size != size:
                value = None  # partial overlap: fall back to an
                continue      # epoch-fresh variable below
            base = value if value is not None \
                else self.pre.mem_var(addr, size, epoch - 1)
            value = T.ite(index_eq(addr, stored_addr), stored_value,
                          base)
        if value is None:
            value = self.pre.mem_var(addr, size, epoch)
        return value

    def store(self, addr: T.Term, value: T.Term, size: int) -> None:
        self.mem_log.append(("store", self.pre.canon(addr),
                             self._fit(value, 8 * size), size))
        self.store_count += 1

    def _fit(self, value: T.Term, width: int) -> T.Term:
        """Canonical ``width``-bit view of a written value (the machine
        masks on write; narrower inputs — ``in()`` bytes — zero-extend)."""
        if value.width < width:
            value = T.zext(value, width - value.width)
        return self.pre.canon(value, width)

    def input_byte(self) -> T.Term:
        var = self.pre.input_var(self.input_count)
        self.input_count += 1
        return var

    def output_byte(self, value: T.Term) -> None:
        self.outputs.append(_to_width(value, 8))

    def pc(self, width: int) -> T.Term:
        return self.pre.pc_term(width)

    # -- final-state views ----------------------------------------------------

    def touched_spaces(self) -> List[str]:
        return sorted({write[0] for write in self.reg_writes})

    def final_reg(self, regfile: str, obs: Optional[T.Term]) -> T.Term:
        """Final value of ``regfile`` at observation index ``obs``
        (``None`` for single registers), folded over the write log."""
        width = self._reg_width(regfile)
        value = self.pre.reg_var(regfile, obs if obs is not None else None,
                                 width)
        for written_file, written_index, written_value in self.reg_writes:
            if written_file != regfile:
                continue
            if obs is None or written_index is None:
                if obs is None and written_index is None:
                    value = written_value
                continue
            value = T.ite(index_eq(obs, written_index), written_value,
                          value)
        return value


def _short(term: T.Term) -> str:
    if term.is_const():
        return "%#x" % term.value
    if term.op == T.VAR:
        return term.name
    return "<expr>"


def index_eq(a: T.Term, b: T.Term) -> T.Term:
    """Width-aligning equality for index/address terms."""
    if a.width < b.width:
        a = T.zext(a, b.width - a.width)
    elif b.width < a.width:
        b = T.zext(b, a.width - b.width)
    return T.eq(a, b)


def _to_width(term: T.Term, width: int) -> T.Term:
    if term.width == width:
        return term
    if term.width > width:
        return T.extract(term, width - 1, 0)
    return T.zext(term, width - term.width)
