"""Translation validation: prove compiled transfer functions equal the IR.

For one rule, :func:`verify_rule` runs three artifacts over one shared
symbolic pre-state (:class:`~repro.verify.state.PreState`):

* the reference IR block via :mod:`repro.ir.symexec`,
* either the generated *concrete* Python source via
  :mod:`repro.verify.pyeval` (mode ``"concrete"``) or the generated
  *symbolic* plan via :mod:`repro.verify.planeval` (mode
  ``"symbolic"``),

and discharges the resulting per-destination equivalence obligations
through :mod:`repro.verify.obligations`.  Operand fields are free
bitvector variables constrained only by decode validity (register
fields index inside their regfile; ``match``-fixed fields are the
constants the decoder guarantees), so a "proved" verdict covers *every*
decodable instance of the rule and every machine pre-state.

:func:`verify_model` maps this over a whole
:class:`~repro.isa.model.ArchModel` and never skips silently: a rule
the validator cannot handle comes back ``status="unsupported"`` with
the reason, which the lint pass escalates to a WARN finding.

``seeded_mutation`` is the canned codegen-bug injector behind the
``REPRO_TRANSVAL_SEED_BUG`` CI fixture: it corrupts the first mask
literal of a generated function, which a correct validator must catch
with a concrete counterexample.
"""

from __future__ import annotations

import itertools
import re
from typing import Callable, Dict, List, Optional

from ..adl import ast as A
from ..compile.errors import CompileError
from ..ir import symexec
from ..smt import terms as T
from . import planeval, pyeval
from .obligations import TIERS, ComparisonError, Mismatch, compare_paths
from .state import MachineState, PreState

__all__ = ["VALIDATOR_VERSION", "Counterexample", "RuleResult",
           "verify_rule", "verify_model", "seeded_mutation"]

#: Bump when validator semantics change (part of the certificate key).
VALIDATOR_VERSION = 1

PROVED = "proved"
COUNTEREXAMPLE = "counterexample"
UNSUPPORTED = "unsupported"

_UIDS = itertools.count()


class Counterexample:
    """A concrete decodable instruction + pre-state that separates the
    reference semantics from the compiled artifact."""

    __slots__ = ("rule", "label", "word", "length", "fields", "prestate",
                 "ref_value", "cand_value", "detail")

    def __init__(self, rule: str, label: str, word: int, length: int,
                 fields: Dict[str, int], prestate: Dict[str, int],
                 ref_value: Optional[int], cand_value: Optional[int],
                 detail: str):
        self.rule = rule
        self.label = label
        self.word = word
        self.length = length          # bytes
        self.fields = fields          # free encoding fields only
        self.prestate = prestate      # location label -> value
        self.ref_value = ref_value
        self.cand_value = cand_value
        self.detail = detail

    @property
    def word_hex(self) -> str:
        return "0x%0*x" % (self.length * 2, self.word)

    def describe(self) -> str:
        parts = ["%s: word %s" % (self.label, self.word_hex)]
        if self.fields:
            parts.append("fields " + ", ".join(
                "%s=%#x" % (name, value)
                for name, value in sorted(self.fields.items())))
        if self.prestate:
            parts.append("pre-state " + ", ".join(
                "%s=%#x" % (name, value)
                for name, value in sorted(self.prestate.items())))
        if self.ref_value is not None:
            parts.append("reference=%#x compiled=%#x"
                         % (self.ref_value, self.cand_value or 0))
        if self.detail:
            parts.append(self.detail)
        return "; ".join(parts)


class RuleResult:
    """Verdict for one rule — proved, counterexample, or unsupported."""

    __slots__ = ("rule", "status", "tiers", "counterexamples", "detail",
                 "ref_paths", "cand_paths")

    def __init__(self, rule: str, status: str, tiers: Dict[str, int],
                 counterexamples: List[Counterexample], detail: str = "",
                 ref_paths: int = 0, cand_paths: int = 0):
        self.rule = rule
        self.status = status
        self.tiers = tiers
        self.counterexamples = counterexamples
        self.detail = detail
        self.ref_paths = ref_paths
        self.cand_paths = cand_paths

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "status": self.status,
            "tiers": dict(self.tiers),
            "ref_paths": self.ref_paths,
            "cand_paths": self.cand_paths,
            "detail": self.detail,
            "counterexamples": [ce.describe()
                                for ce in self.counterexamples],
        }


def _operand_term(enc: A.EncodingDecl, operand: A.OperandDecl,
                  field_terms: Dict[str, T.Term]) -> T.Term:
    """MSB-first part concatenation — the symbolic twin of
    ``Instruction.operand_value`` (zero-pad parts become zero bits)."""
    parts: List[T.Term] = []
    for part in operand.parts:
        if part.field_name is None:
            if part.zero_bits:
                parts.append(T.bv(0, part.zero_bits))
        else:
            parts.append(field_terms[part.field_name])
    if not parts:
        return T.bv(0, 1)
    return T.concat_many(parts)


def _rule_environment(model, instr):
    """(pre, reg_widths, fields, field_terms, assumptions) for one rule."""
    uid = next(_UIDS)

    def mkvar(name: str, width: int) -> T.Term:
        return T.var("tv%d_%s" % (uid, name), width)

    pre = PreState(mkvar, model.pc_width)
    reg_widths: Dict[str, int] = {
        name: regfile.width for name, regfile in model.regfiles.items()}
    reg_widths.update(model.registers)
    enc = instr.encoding
    field_terms: Dict[str, T.Term] = {}
    for field in enc.fields:
        fixed = instr.decl.match.get(field.name)
        if fixed is not None:
            field_terms[field.name] = T.bv(fixed, field.width)
        else:
            field_terms[field.name] = mkvar(
                "f_%s_%s" % (enc.name, field.name), field.width)
    fields = dict(field_terms)
    for operand in instr.decl.operands:
        fields[operand.name] = _operand_term(enc, operand, field_terms)
    assumptions: List[T.Term] = []
    for name, limit in sorted(instr.reg_field_limits.items()):
        term = field_terms.get(name)
        if term is None or term.is_const() or limit >= (1 << term.width):
            continue
        assumptions.append(T.ult(term, T.bv(limit, term.width)))
    return pre, reg_widths, fields, field_terms, assumptions


_UID_PREFIX = re.compile(r"tv\d+_")


def _render(instr, pre: PreState, field_terms: Dict[str, T.Term],
            mismatch: Mismatch) -> Counterexample:
    field_ints: Dict[str, int] = {}
    renames: Dict[str, str] = {}
    for name, term in field_terms.items():
        if term.is_const():
            field_ints[name] = term.value
        else:
            field_ints[name] = mismatch.model.get(term.name, 0)
            renames[term.name] = name

    def pretty(label: str) -> str:
        for var_name, short in renames.items():
            label = label.replace(var_name, short)
        return _UID_PREFIX.sub("", label)

    word = instr.assemble_word(field_ints)
    free_fields = {name: value for name, value in field_ints.items()
                   if name not in instr.decl.match}
    prestate = {pretty(pre.labels[name]): value
                for name, value in mismatch.model.items()
                if name in pre.labels}
    return Counterexample(
        instr.name, mismatch.label, word, instr.length, free_fields,
        prestate, mismatch.ref_value, mismatch.cand_value,
        mismatch.detail)


def verify_rule(model, instr, mode: str, solver, check: Callable,
                concrete_source: Optional[str] = None,
                plan: Optional[tuple] = None,
                max_pairs: int = 512) -> RuleResult:
    """Prove one rule's compiled artifact equivalent to its IR."""
    tiers = {key: 0 for key in TIERS}
    try:
        pre, reg_widths, fields, field_terms, assumptions = \
            _rule_environment(model, instr)
        ref_paths = symexec.exec_block(
            instr.semantics, MachineState(pre, reg_widths), fields)
        if mode == "concrete":
            if concrete_source is None:
                raise pyeval.PyEvalError("no generated source for rule")
            cand_paths = pyeval.exec_function(
                concrete_source, MachineState(pre, reg_widths), fields)
        elif mode == "symbolic":
            if plan is None:
                raise symexec.SymExecError("no compiled plan for rule")
            cand_paths = planeval.exec_plan(
                plan, MachineState(pre, reg_widths), fields)
        else:
            raise ValueError("unknown verification mode %r" % mode)
        mismatches = compare_paths(
            ref_paths, cand_paths, pre, assumptions,
            set(model.registers), solver, check, tiers,
            max_pairs=max_pairs)
    except (symexec.SymExecError, pyeval.PyEvalError, CompileError,
            ComparisonError, T.SmtError) as error:
        return RuleResult(instr.name, UNSUPPORTED, tiers, [],
                          detail="%s: %s" % (type(error).__name__, error))
    if mismatches:
        counterexamples = [_render(instr, pre, field_terms, mismatch)
                           for mismatch in mismatches]
        return RuleResult(instr.name, COUNTEREXAMPLE, tiers,
                          counterexamples, ref_paths=len(ref_paths),
                          cand_paths=len(cand_paths))
    return RuleResult(instr.name, PROVED, tiers, [],
                      ref_paths=len(ref_paths),
                      cand_paths=len(cand_paths))


def verify_model(model, mode: str, solver_factory: Optional[Callable] = None,
                 check: Optional[Callable] = None,
                 source_overrides: Optional[Dict[str, str]] = None,
                 max_pairs: int = 512) -> List[RuleResult]:
    """Verify every rule of ``model``; one :class:`RuleResult` each, in
    instruction order — nothing is skipped silently."""
    from ..compile import compiled_for

    if check is None:
        check = lambda solver, extra: solver.check(extra)  # noqa: E731
    if solver_factory is not None:
        solver = solver_factory()
    else:
        from ..smt.solver import Solver
        solver = Solver()
    overrides = source_overrides or {}
    try:
        compiled = compiled_for(model)
    except CompileError as error:
        return [RuleResult(instr.name, UNSUPPORTED,
                           {key: 0 for key in TIERS}, [],
                           detail="codegen failed: %s" % error)
                for instr in model.instructions]
    plans: Dict[str, tuple] = {}
    if mode == "symbolic":
        plans = planeval.load_plans(compiled.symbolic_source, model.name)
    results: List[RuleResult] = []
    for instr in model.instructions:
        source = None
        if mode == "concrete":
            source = overrides.get(instr.name)
            if source is None:
                fn = compiled.concrete.get(instr.name)
                source = getattr(fn, "generated_source", None)
        results.append(verify_rule(
            model, instr, mode, solver, check,
            concrete_source=source, plan=plans.get(instr.name),
            max_pairs=max_pairs))
    return results


_MASK_LITERAL = re.compile(r"& (0x[0-9a-fA-F]+)")


def seeded_mutation(source: str) -> str:
    """Corrupt the first mask literal of a generated function
    (``& 0x1f`` -> ``& 0x1e``): the canned codegen bug for CI/tests."""
    match = _MASK_LITERAL.search(source)
    if match is None:
        raise ValueError("no mask literal to mutate in generated source")
    value = int(match.group(1), 16)
    mutated = "& %#x" % (value - 1 if value else 1)
    start, end = match.span()
    return source[:start] + mutated + source[end:]
