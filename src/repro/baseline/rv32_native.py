"""Hand-written RV32 symbolic executor — the Table 4 baseline.

This is what the paper's approach replaces: a symbolic execution engine
written *directly against one ISA*, with a hand-coded decoder and a
hand-coded symbolic transfer function per instruction.  It shares only the
solver substrate with the generated engine, so the Table 4 comparison
isolates the cost of generality (ADL -> IR -> interpretation) against
native dispatch.

Feature-wise it is deliberately the same shape as the generated engine on
rv32 workloads: concrete pc, fork-on-branch, trap/halt handling, the
div-zero and out-of-bounds checkers, DFS exploration.  It does not support
any other ISA — which is precisely the point.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..core.memory import MemoryMap, Region, SymMemory
from ..core.reporting import (
    DIV_BY_ZERO,
    INVALID_INSTRUCTION,
    OOB_ACCESS,
    TRAP,
    Defect,
    ExplorationResult,
    PathResult,
)
from ..smt import SAT, Solver
from ..smt import terms as T

__all__ = ["Rv32NativeEngine", "NativeState"]

_WORD = 32
_MASK32 = 0xffffffff


class NativeState:
    """Path state: 32 registers, memory, path condition, concrete pc."""

    def __init__(self, memory: SymMemory):
        self.regs: List[T.Term] = [T.bv(0, _WORD)] * 32
        self.memory = memory
        self.pc = 0
        self.path: List[T.Term] = []
        self.inputs: List[T.Term] = []
        self.steps = 0

    def fork(self) -> "NativeState":
        child = NativeState.__new__(NativeState)
        child.regs = list(self.regs)
        child.memory = self.memory.fork()
        child.pc = self.pc
        child.path = list(self.path)
        child.inputs = list(self.inputs)
        child.steps = self.steps
        return child

    def get(self, index: int) -> T.Term:
        return T.bv(0, _WORD) if index == 0 else self.regs[index]

    def put(self, index: int, value: T.Term) -> None:
        if index:
            self.regs[index] = value

    def next_input(self) -> T.Term:
        var = T.var("in_%d" % len(self.inputs), 8)
        self.inputs.append(var)
        return var

    def input_from_model(self, model: Dict[str, int]) -> bytes:
        return bytes(model.get("in_%d" % i, 0) & 0xff
                     for i in range(len(self.inputs)))


def _sx(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & ((1 << bits) - 1)) - ((value & sign) << 1)


class Rv32NativeEngine:
    """DFS symbolic executor hard-wired to the rv32 instruction set."""

    def __init__(self, solver: Optional[Solver] = None,
                 max_steps_per_path: int = 4096,
                 max_fork_targets: int = 4):
        self.solver = solver if solver is not None else Solver()
        self.max_steps_per_path = max_steps_per_path
        self.max_fork_targets = max_fork_targets
        self.memory_map = MemoryMap()
        self._memory = SymMemory(self.memory_map)
        self._entry = 0
        self._defect_sites: set = set()

    def load_image(self, image) -> None:
        self._memory.load_image(image.base, bytes(image.data), name="image")
        self._entry = image.entry

    def add_region(self, start: int, size: int, name: str = "region") -> None:
        self.memory_map.add(Region(start, size, name))

    # -- exploration --------------------------------------------------------------

    def explore(self) -> ExplorationResult:
        result = ExplorationResult()
        self._defect_sites = set()
        solver_before = self.solver.stats.as_dict()
        started = time.perf_counter()
        root = NativeState(self._memory.fork())
        root.pc = self._entry
        stack = [root]
        while stack:
            state = stack.pop()
            stack.extend(self._step(state, result))
        result.wall_time = time.perf_counter() - started
        # Per-exploration delta, matching the generated engine.
        result.solver_stats = self.solver.stats.delta_since(solver_before)
        return result

    # -- fetch/decode/execute ------------------------------------------------------

    def _step(self, state: NativeState,
              result: ExplorationResult) -> List[NativeState]:
        window = state.memory.concrete_window(state.pc, 4)
        if window is None or len(window) < 4:
            self._defect(result, state, INVALID_INSTRUCTION, "bad fetch")
            return []
        word = int.from_bytes(window, "little")
        result.instructions_executed += 1
        state.steps += 1
        if state.steps > self.max_steps_per_path:
            result.paths.append(PathResult("depth-limit", state, b""))
            return []
        try:
            return self._execute(state, word, result)
        except _Stop:
            return []

    # Field helpers (hand-written decode).

    @staticmethod
    def _fields(word: int) -> Tuple[int, int, int, int, int, int]:
        opcode = word & 0x7f
        rd = (word >> 7) & 0x1f
        funct3 = (word >> 12) & 0x7
        rs1 = (word >> 15) & 0x1f
        rs2 = (word >> 20) & 0x1f
        funct7 = (word >> 25) & 0x7f
        return opcode, rd, funct3, rs1, rs2, funct7

    def _execute(self, state: NativeState, word: int,
                 result: ExplorationResult) -> List[NativeState]:
        opcode, rd, funct3, rs1, rs2, funct7 = self._fields(word)
        imm_i = _sx(word >> 20, 12)
        pc = state.pc
        nxt = (pc + 4) & _MASK32

        if opcode == 0x33 and funct7 != 1:      # ALU register
            state.put(rd, self._alu_reg(state, funct3, funct7, rs1, rs2))
            state.pc = nxt
            return [state]
        if opcode == 0x33 and funct7 == 1:      # M extension
            state.put(rd, self._alu_mul(state, funct3, rs1, rs2, result,
                                        pc))
            state.pc = nxt
            return [state]
        if opcode == 0x13:                       # ALU immediate
            state.put(rd, self._alu_imm(state, funct3, funct7, rs1, rs2,
                                        imm_i))
            state.pc = nxt
            return [state]
        if opcode == 0x03:                       # loads
            addr = T.add(state.get(rs1), T.bv(imm_i, _WORD))
            value = self._load(state, addr, funct3, result, pc)
            state.put(rd, value)
            state.pc = nxt
            return [state]
        if opcode == 0x23:                       # stores
            imm_s = _sx(((word >> 25) << 5) | ((word >> 7) & 0x1f), 12)
            addr = T.add(state.get(rs1), T.bv(imm_s, _WORD))
            self._store(state, addr, funct3, rs2, result, pc)
            state.pc = nxt
            return [state]
        if opcode == 0x63:                       # branches
            imm_b = _sx((((word >> 25) << 5) | ((word >> 7) & 0x1f)) << 1,
                        13)
            return self._branch(state, funct3, rs1, rs2, imm_b, result)
        if opcode == 0x37:                       # lui
            state.put(rd, T.bv((word >> 12) << 12, _WORD))
            state.pc = nxt
            return [state]
        if opcode == 0x17:                       # auipc
            state.put(rd, T.bv((pc + ((word >> 12) << 12)) & _MASK32, _WORD))
            state.pc = nxt
            return [state]
        if opcode == 0x6f:                       # jal
            off = _sx((word >> 12) << 1, 21)
            state.put(rd, T.bv(nxt, _WORD))
            state.pc = (pc + off) & _MASK32
            return [state]
        if opcode == 0x67 and funct3 == 0:       # jalr
            target = T.and_(T.add(state.get(rs1), T.bv(imm_i, _WORD)),
                            T.bv(0xfffffffe, _WORD))
            state.put(rd, T.bv(nxt, _WORD))
            return self._indirect(state, target, result)
        if opcode == 0x0b:                       # environment
            return self._env(state, funct3, rd, rs1, imm_i, nxt, result)
        self._defect(result, state, INVALID_INSTRUCTION,
                     "undecodable word %#x" % word)
        return []

    # -- instruction groups ---------------------------------------------------------

    def _alu_reg(self, state, funct3, funct7, rs1, rs2) -> T.Term:
        a, b = state.get(rs1), state.get(rs2)
        amount = T.and_(b, T.bv(31, _WORD))
        if funct3 == 0:
            return T.sub(a, b) if funct7 == 0x20 else T.add(a, b)
        if funct3 == 1:
            return T.shl(a, amount)
        if funct3 == 2:
            return T.zext(T.slt(a, b), 31)
        if funct3 == 3:
            return T.zext(T.ult(a, b), 31)
        if funct3 == 4:
            return T.xor(a, b)
        if funct3 == 5:
            return T.ashr(a, amount) if funct7 == 0x20 else T.lshr(a, amount)
        if funct3 == 6:
            return T.or_(a, b)
        return T.and_(a, b)

    def _alu_mul(self, state, funct3, rs1, rs2, result, pc) -> T.Term:
        a, b = state.get(rs1), state.get(rs2)
        if funct3 == 0:
            return T.mul(a, b)
        if funct3 == 1:
            return T.extract(T.mul(T.sext(a, 32), T.sext(b, 32)), 63, 32)
        if funct3 == 3:
            return T.extract(T.mul(T.zext(a, 32), T.zext(b, 32)), 63, 32)
        self._check_div(state, b, result, pc)
        zero, ones = T.bv(0, _WORD), T.bv(_MASK32, _WORD)
        most_neg = T.bv(0x80000000, _WORD)
        if funct3 == 4:      # div
            overflow = T.and_(T.eq(a, most_neg), T.eq(b, ones))
            return T.ite(T.eq(b, zero), ones,
                         T.ite(overflow, most_neg, T.sdiv(a, b)))
        if funct3 == 5:      # divu
            return T.ite(T.eq(b, zero), ones, T.udiv(a, b))
        if funct3 == 6:      # rem
            overflow = T.and_(T.eq(a, most_neg), T.eq(b, ones))
            return T.ite(T.eq(b, zero), a,
                         T.ite(overflow, zero, T.srem(a, b)))
        return T.ite(T.eq(b, zero), a, T.urem(a, b))    # remu

    def _alu_imm(self, state, funct3, funct7, rs1, rs2, imm) -> T.Term:
        a = state.get(rs1)
        imm_term = T.bv(imm, _WORD)
        if funct3 == 0:
            return T.add(a, imm_term)
        if funct3 == 1:
            return T.shl(a, T.bv(rs2, _WORD))
        if funct3 == 2:
            return T.zext(T.slt(a, imm_term), 31)
        if funct3 == 3:
            return T.zext(T.ult(a, imm_term), 31)
        if funct3 == 4:
            return T.xor(a, imm_term)
        if funct3 == 5:
            shift = T.bv(rs2, _WORD)
            return T.ashr(a, shift) if funct7 == 0x20 else T.lshr(a, shift)
        if funct3 == 6:
            return T.or_(a, imm_term)
        return T.and_(a, imm_term)

    def _branch(self, state, funct3, rs1, rs2, offset, result):
        a, b = state.get(rs1), state.get(rs2)
        conditions = {0: T.eq, 1: T.ne, 4: T.slt, 5: T.sge, 6: T.ult,
                      7: T.uge}
        cond = conditions[funct3](a, b)
        taken_pc = (state.pc + offset) & _MASK32
        fall_pc = (state.pc + 4) & _MASK32
        if cond.is_const():
            state.pc = taken_pc if cond.value else fall_pc
            return [state]
        out = []
        for branch_cond, target in ((cond, taken_pc), (T.not_(cond),
                                                       fall_pc)):
            if self.solver.check(extra=state.path + [branch_cond]) == SAT:
                out.append((branch_cond, target))
        states = []
        for index, (branch_cond, target) in enumerate(out):
            branch = state if index == len(out) - 1 else state.fork()
            branch.path.append(branch_cond)
            branch.pc = target
            states.append(branch)
        if len(states) > 1:
            result.states_forked += 1
        return states

    def _indirect(self, state, target, result):
        if target.is_const():
            state.pc = target.value
            return [state]
        states = []
        exclusions: List[T.Term] = []
        while len(states) < self.max_fork_targets:
            if self.solver.check(extra=state.path + exclusions) != SAT:
                break
            value = T.evaluate(target, self.solver.model())
            branch = state.fork()
            branch.path.append(T.eq(target, T.bv(value, _WORD)))
            branch.pc = value
            states.append(branch)
            exclusions.append(T.ne(target, T.bv(value, _WORD)))
        result.states_forked += max(0, len(states) - 1)
        return states

    def _load(self, state, addr, funct3, result, pc) -> T.Term:
        concrete = self._concretize_addr(state, addr, result, pc)
        size = {0: 1, 1: 2, 2: 4, 4: 1, 5: 2}[funct3]
        raw = state.memory.read(concrete, size, "little")
        if funct3 in (0, 1):
            return T.sext(raw, _WORD - raw.width)
        if funct3 in (4, 5):
            return T.zext(raw, _WORD - raw.width)
        return raw

    def _store(self, state, addr, funct3, rs2, result, pc) -> None:
        concrete = self._concretize_addr(state, addr, result, pc)
        size = {0: 1, 1: 2, 2: 4}[funct3]
        value = T.extract(state.get(rs2), 8 * size - 1, 0)
        state.memory.write(concrete, value, size, "little")

    def _concretize_addr(self, state, addr, result, pc) -> int:
        inside = self.memory_map.membership_term(addr)
        if addr.is_const():
            if not self.memory_map.is_mapped(addr.value):
                self._defect(result, state, OOB_ACCESS,
                             "unmapped %#x" % addr.value, pc)
                raise _Stop()
            return addr.value
        site = (OOB_ACCESS, pc)
        if site not in self._defect_sites and self.solver.check(
                extra=state.path + [T.not_(inside)]) == SAT:
            self._defect(result, state, OOB_ACCESS,
                         "can reach unmapped memory", pc,
                         model=self.solver.model())
        state.path.append(inside)
        if self.solver.check(extra=state.path) != SAT:
            raise _Stop()
        value = T.evaluate(addr, self.solver.model())
        state.path.append(T.eq(addr, T.bv(value, _WORD)))
        return value

    def _check_div(self, state, divisor, result, pc) -> None:
        site = (DIV_BY_ZERO, pc)
        if site in self._defect_sites:
            return
        zero = T.eq(divisor, T.bv(0, _WORD))
        if T.is_false(zero):
            return
        if self.solver.check(extra=state.path + [zero]) == SAT:
            self._defect(result, state, DIV_BY_ZERO, "divisor can be zero",
                         pc, model=self.solver.model())

    def _env(self, state, funct3, rd, rs1, imm, nxt, result):
        if funct3 == 0:      # inb
            state.put(rd, T.zext(state.next_input(), 24))
            state.pc = nxt
            return [state]
        if funct3 == 1:      # outb
            state.pc = nxt
            return [state]
        if funct3 == 2:      # halt
            model = {}
            if state.path:
                if self.solver.check(extra=state.path) != SAT:
                    return []
                model = self.solver.model()
            result.paths.append(PathResult(
                "halted", state, state.input_from_model(model), imm & 0xff))
            return []
        # trap
        self._defect(result, state, TRAP, "trap instruction reached",
                     state.pc)
        return []

    def _defect(self, result, state, kind, message, pc=None,
                model=None) -> None:
        pc = state.pc if pc is None else pc
        site = (kind, pc)
        if site in self._defect_sites:
            return
        self._defect_sites.add(site)
        if model is None:
            if state.path and self.solver.check(extra=state.path) != SAT:
                return
            model = self.solver.model() if state.path else {}
        result.defects.append(Defect(kind, pc, "native", message,
                                     state.input_from_model(model), model,
                                     0, state.steps))


class _Stop(Exception):
    """The current path cannot continue."""
