"""Hand-written baseline engines (the comparison targets)."""

from .rv32_native import NativeState, Rv32NativeEngine  # noqa: F401
