"""Baseline files: accepted-findings suppression for ``repro lint``.

A baseline is a JSON file listing finding *fingerprints* that are known
and accepted.  Fingerprints deliberately exclude the line number and the
witness word, so routine edits to a spec (reordering declarations,
re-numbering lines) do not resurrect suppressed findings; only a change
to the pass, file, instruction, or message text does.

``repro lint --baseline FILE`` filters matched findings out of the
report (they are counted as *suppressed*); ``--write-baseline FILE``
records the current findings as the new baseline.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Set

from .findings import Finding

__all__ = ["Baseline", "load_baseline", "write_baseline"]

_FORMAT = "repro-lint-baseline"
_VERSION = 1


class Baseline:
    """A set of accepted finding fingerprints."""

    def __init__(self, fingerprints: Iterable[str] = ()):
        self.fingerprints: Set[str] = set(fingerprints)

    def __len__(self) -> int:
        return len(self.fingerprints)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.fingerprints

    def matches(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.fingerprints

    def split(self, findings: Iterable[Finding]):
        """Partition ``findings`` into ``(new, suppressed)`` lists."""
        new: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            (suppressed if self.matches(finding) else new).append(finding)
        return new, suppressed

    def to_dict(self) -> Dict:
        return {
            "format": _FORMAT,
            "version": _VERSION,
            "fingerprints": sorted(self.fingerprints),
        }


def load_baseline(path: str) -> Baseline:
    """Read a baseline file; raises ``ValueError`` on a malformed one."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("format") != _FORMAT:
        raise ValueError("%s is not a repro lint baseline file" % path)
    fingerprints = data.get("fingerprints", [])
    if not isinstance(fingerprints, list) or any(
            not isinstance(item, str) for item in fingerprints):
        raise ValueError("%s: fingerprints must be a list of strings" % path)
    return Baseline(fingerprints)


def write_baseline(path: str, findings: Iterable[Finding]) -> Baseline:
    """Record ``findings`` as the accepted baseline at ``path``."""
    baseline = Baseline(finding.fingerprint() for finding in findings)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return baseline
