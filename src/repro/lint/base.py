"""Pass framework: registry, lint context, and the pass base class.

A lint pass is a small object with an ``id``, a human ``title``, a
``family`` (``structural`` passes walk the AST/IR; ``smt`` passes pose
solver queries), and a :meth:`LintPass.run` method that yields
:class:`~repro.lint.findings.Finding` objects.  Passes register
themselves with :func:`register`, and the runner
(:mod:`repro.lint.runner`) executes every enabled pass under a profiler
phase so ``repro lint`` reports per-pass wall time like any other
subsystem phase.

The :class:`LintContext` hands passes a *tolerantly* analyzed spec:
encoding layout and decode patterns are always present, but individual
instructions whose semantics failed translation carry ``None`` IR (the
failure itself is reported by the ``translation`` pass), so every other
pass can keep checking the rest of the spec.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..adl import ast as A
from ..adl.analyze import syntax_placeholders
from ..ir import nodes as N
from .findings import Finding

__all__ = ["LintPass", "LintContext", "register", "all_passes",
           "pass_by_id", "STRUCTURAL", "SMT", "TRANSVAL", "FAMILIES"]

STRUCTURAL = "structural"
SMT = "smt"
TRANSVAL = "transval"

#: Every pass family, in execution-group order: structural AST/IR
#: walks, SMT proof passes over the encoding space, translation
#: validation of the compiled transfer functions.
FAMILIES = (STRUCTURAL, SMT, TRANSVAL)

_REGISTRY: Dict[str, "LintPass"] = {}

#: Every LintContext gets a distinct SMT-variable namespace: the term
#: pool is process-global and binds a variable name to one width, so
#: ``rd`` being 5 bits in rv32 and 4 bits in armlite must not share a
#: variable name across lint runs.
_CONTEXT_IDS = itertools.count()


class LintContext:
    """Everything a pass may inspect for one spec."""

    def __init__(self, spec: A.ArchSpec, path: str,
                 ir_blocks: Dict[str, Optional[Tuple[N.Stmt, ...]]],
                 translate_errors: Dict[str, Tuple[str, int]],
                 solver_factory: Optional[Callable] = None):
        self.spec = spec
        self.path = path
        #: instruction name -> translated IR block (None if translation
        #: failed; the ``translation`` pass owns reporting that).
        self.ir_blocks = ir_blocks
        #: instruction name -> (message, line) for failed translations.
        self.translate_errors = translate_errors
        self._solver_factory = solver_factory
        #: Distinct SMT-variable namespace for this lint run.
        self.uid = next(_CONTEXT_IDS)
        # Filled by the runner: cumulative solver time/checks attributed
        # to the currently executing pass.
        self.solver_seconds = 0.0
        self.solver_checks = 0

    # -- solver access -------------------------------------------------------

    def new_solver(self):
        """A fresh SMT solver for a proof pass (time is accounted to the
        pass via :meth:`checked`)."""
        if self._solver_factory is not None:
            return self._solver_factory()
        from ..smt.solver import Solver
        return Solver()

    def mkvar(self, name: str, width: int):
        """A bitvector variable scoped to this lint run.

        The term pool binds a name to a single width process-wide, so
        proof passes must not name variables after bare instruction or
        field names (``rd`` is 5 bits in rv32, 4 in armlite)."""
        from ..smt import terms as T
        return T.var("lint%d_%s" % (self.uid, name), width)

    def check(self, solver, extra=()) -> str:
        """``solver.check(extra)`` with the wall time and query count
        attributed to the currently executing pass (the runner snapshots
        and resets these between passes)."""
        import time
        start = time.perf_counter()
        try:
            return solver.check(extra)
        finally:
            self.solver_seconds += time.perf_counter() - start
            self.solver_checks += 1

    # -- spec helpers --------------------------------------------------------

    def instructions(self) -> List[A.InstrDecl]:
        return list(self.spec.instructions)

    def encoding_of(self, instr: A.InstrDecl) -> A.EncodingDecl:
        return self.spec.encodings[instr.encoding]

    def free_fields(self, instr: A.InstrDecl) -> List[A.EncodingField]:
        """Encoding fields not fixed by the instruction's ``match``."""
        enc = self.encoding_of(instr)
        return [f for f in enc.fields if f.name not in instr.match]

    def reg_field_limits(self, instr: A.InstrDecl) -> Dict[str, int]:
        """Register-typed syntax fields and their valid index bound.

        Mirrors :class:`repro.isa.model.Instruction.reg_field_limits`
        without requiring a successfully built model: a decoded word
        whose register field reaches past the regfile is not a valid
        instance of the instruction.
        """
        limits: Dict[str, int] = {}
        for name, kind in syntax_placeholders(instr.syntax):
            if kind is None:
                continue
            regfile = self.spec.regfiles.get(kind)
            if regfile is not None:
                limits[name] = regfile.count
        return limits

    def flag_registers(self) -> List[str]:
        """Width-1 single registers — the spec's condition-flag set."""
        return sorted(name for name, decl in self.spec.registers.items()
                      if decl.width == 1)


class LintPass:
    """Base class for lint passes; subclasses set the class attributes
    and implement :meth:`run`."""

    #: Unique pass identifier (kebab-case; the ``--enable``/``--disable``
    #: and baseline key).
    id: str = ""
    #: One-line description (shown by ``repro lint --list-passes`` and
    #: exported as the SARIF rule description).
    title: str = ""
    #: ``structural``, ``smt``, or ``transval``.
    family: str = STRUCTURAL
    #: Default severity of this pass's findings (individual findings may
    #: override).
    default_severity: str = "error"

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, message: str, line: int = 0,
                instruction: Optional[str] = None,
                severity: Optional[str] = None,
                witness: Optional[int] = None,
                details: Optional[dict] = None) -> Finding:
        return Finding(self.id, severity or self.default_severity, message,
                       path=ctx.path, line=line, instruction=instruction,
                       witness=witness, details=details)

    def __repr__(self):
        return "<LintPass %s (%s)>" % (self.id, self.family)


def register(pass_cls):
    """Class decorator: instantiate and register a pass by its id."""
    instance = pass_cls()
    if not instance.id:
        raise ValueError("lint pass %r has no id" % pass_cls.__name__)
    if instance.id in _REGISTRY:
        raise ValueError("duplicate lint pass id %r" % instance.id)
    _REGISTRY[instance.id] = instance
    return pass_cls


def all_passes() -> List[LintPass]:
    """Registered passes grouped by family (:data:`FAMILIES` order:
    structural, smt, transval), each group in registration order."""
    ordered = list(_REGISTRY.values())
    rank = {family: position for position, family in enumerate(FAMILIES)}
    groups: List[List[LintPass]] = [[] for _ in FAMILIES]
    tail: List[LintPass] = []
    for lint_pass in ordered:
        position = rank.get(lint_pass.family)
        if position is None:
            tail.append(lint_pass)
        else:
            groups[position].append(lint_pass)
    return [p for group in groups for p in group] + tail


def pass_by_id(pass_id: str) -> LintPass:
    try:
        return _REGISTRY[pass_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError("unknown lint pass %r (have: %s)" % (pass_id, known))


def iter_stmts(block: Iterable[N.Stmt]) -> Iterator[N.Stmt]:
    """Every statement in a block, descending into ``if`` bodies."""
    for stmt in block:
        yield stmt
        if isinstance(stmt, N.IfStmt):
            for inner in iter_stmts(stmt.then_body):
                yield inner
            for inner in iter_stmts(stmt.else_body):
                yield inner


def iter_exprs(block: Iterable[N.Stmt]) -> Iterator[N.Expr]:
    """Every expression (recursively) in a block."""
    stack: List[N.Expr] = []
    for stmt in iter_stmts(block):
        if isinstance(stmt, (N.SetLocal, N.SetPc, N.Output)):
            stack.append(stmt.value)
        elif isinstance(stmt, N.SetReg):
            if stmt.index is not None:
                stack.append(stmt.index)
            stack.append(stmt.value)
        elif isinstance(stmt, N.Store):
            stack.extend((stmt.addr, stmt.value))
        elif isinstance(stmt, (N.Halt, N.Trap)):
            stack.append(stmt.code)
        elif isinstance(stmt, N.IfStmt):
            stack.append(stmt.cond)
    while stack:
        expr = stack.pop()
        yield expr
        stack.extend(expr.children())
