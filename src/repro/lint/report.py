"""Rendering lint reports: text, JSON, and SARIF 2.1.0.

The text renderer is what a developer reads in a terminal; the JSON
renderer is the machine-readable envelope (one object over all linted
specs, with per-pass timings and suppression counts); the SARIF renderer
emits a minimal SARIF 2.1.0 log so findings can be uploaded to code
scanning UIs (one ``run``, one ``rule`` per pass, one ``result`` per
finding with the witness word attached as a property).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from .base import all_passes
from .findings import ERROR, INFO, SEVERITIES, WARN, Finding, LintReport

__all__ = ["render_text", "render_json", "render_sarif", "FORMATS"]

FORMATS = ("text", "json", "sarif")

_SARIF_LEVEL = {ERROR: "error", WARN: "warning", INFO: "note"}


# ---------------------------------------------------------------------------
# text


def _plural(count: int, noun: str) -> str:
    return "%d %s%s" % (count, noun, "" if count == 1 else "s")


def render_text(reports: Sequence[LintReport],
                suppressed: Sequence[Finding] = (),
                show_timings: bool = False) -> str:
    """Human-readable listing, one line per finding plus a summary."""
    lines: List[str] = []
    totals = {severity: 0 for severity in SEVERITIES}
    for report in reports:
        for finding in report.findings:
            totals[finding.severity] += 1
            extra = ""
            if finding.witness is not None:
                extra = " [witness %#x]" % finding.witness
            lines.append("%s: %s: %s: %s%s" % (
                finding.location(), finding.severity.upper(),
                finding.pass_id, finding.message, extra))
        if show_timings and report.timings:
            lines.append("-- %s pass timings --" % report.spec_name)
            for timing in report.timings:
                lines.append(
                    "  %-18s %8.3fs  %s%s" % (
                        timing.pass_id, timing.seconds,
                        _plural(timing.findings, "finding"),
                        ("  (solver %.3fs / %d checks)"
                         % (timing.solver_seconds, timing.solver_checks))
                        if timing.solver_checks else ""))
    summary = "lint: %s across %s: %s" % (
        _plural(sum(totals.values()), "finding"),
        _plural(len(reports), "spec"),
        ", ".join("%d %s" % (totals[sev], sev) for sev in SEVERITIES))
    if suppressed:
        summary += " (%s baselined)" % _plural(len(suppressed), "finding")
    lines.append(summary)
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# JSON


def render_json(reports: Sequence[LintReport],
                suppressed: Sequence[Finding] = ()) -> str:
    totals = {severity: 0 for severity in SEVERITIES}
    for report in reports:
        for severity, count in report.by_severity().items():
            totals[severity] = totals.get(severity, 0) + count
    envelope: Dict[str, Any] = {
        "format": "repro-lint",
        "version": 1,
        "counts": totals,
        "suppressed": [f.to_dict() for f in suppressed],
        "reports": [report.to_dict() for report in reports],
    }
    return json.dumps(envelope, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# SARIF 2.1.0


def _sarif_rules() -> List[Dict[str, Any]]:
    rules = []
    for lint_pass in all_passes():
        rules.append({
            "id": lint_pass.id,
            "name": lint_pass.id,
            "shortDescription": {"text": lint_pass.title},
            "defaultConfiguration": {
                "level": _SARIF_LEVEL.get(lint_pass.default_severity,
                                          "warning"),
            },
            "properties": {"family": lint_pass.family},
        })
    return rules


def _sarif_result(finding: Finding,
                  rule_index: Dict[str, int]) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.pass_id,
        "level": _SARIF_LEVEL.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "partialFingerprints": {
            "reproLint/v1": finding.fingerprint(),
        },
    }
    if finding.pass_id in rule_index:
        result["ruleIndex"] = rule_index[finding.pass_id]
    location: Dict[str, Any] = {
        "physicalLocation": {
            "artifactLocation": {"uri": finding.path or "<spec>"},
        },
    }
    if finding.line:
        location["physicalLocation"]["region"] = {
            "startLine": finding.line,
        }
    result["locations"] = [location]
    properties: Dict[str, Any] = {}
    if finding.instruction is not None:
        properties["instruction"] = finding.instruction
    if finding.witness is not None:
        properties["witness"] = "%#x" % finding.witness
    if finding.details:
        properties["details"] = dict(finding.details)
    if properties:
        result["properties"] = properties
    return result


def render_sarif(reports: Sequence[LintReport],
                 suppressed: Sequence[Finding] = (),
                 tool_version: Optional[str] = None) -> str:
    rules = _sarif_rules()
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}
    results: List[Dict[str, Any]] = []
    for report in reports:
        for finding in report.findings:
            results.append(_sarif_result(finding, rule_index))
    for finding in suppressed:
        result = _sarif_result(finding, rule_index)
        result["suppressions"] = [{"kind": "external",
                                   "justification": "baselined"}]
        results.append(result)
    driver: Dict[str, Any] = {
        "name": "repro-lint",
        "informationUri": "https://example.invalid/repro",
        "rules": rules,
    }
    if tool_version:
        driver["version"] = tool_version
    log = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": driver},
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True) + "\n"
