"""``repro.lint`` — an SMT-backed static verifier for ADL specs.

A pluggable pass framework over the ADL front end and the generated IR:
*structural* passes walk the AST/IR (use-before-def, dead assignments,
width mismatches, shadowed decode rules, syntax/operand hygiene, missing
PC updates on branches, flag-write completeness), *SMT proof* passes
pose solver queries over the full encoding space (decode ambiguity with
concrete witness words, decoder completeness, assembler->decoder
round-trip, semantic sanity obligations), and *transval* passes
statically prove the compiled transfer functions equivalent to the
reference IR (:mod:`repro.lint.transval` over :mod:`repro.verify`).

Entry points: :func:`run_lint` / :func:`run_lint_all` drive the passes;
:mod:`repro.lint.report` renders text / JSON / SARIF;
:mod:`repro.lint.baseline` implements the accepted-findings suppression
workflow.  ``repro lint`` is the CLI surface; see ``docs/LINT.md``.
"""

from .base import (  # noqa: F401
    FAMILIES,
    SMT,
    STRUCTURAL,
    TRANSVAL,
    LintContext,
    LintPass,
    all_passes,
    pass_by_id,
    register,
)
from .baseline import Baseline, load_baseline, write_baseline  # noqa: F401
from .findings import (  # noqa: F401
    ERROR,
    INFO,
    SEVERITIES,
    WARN,
    Finding,
    LintReport,
    PassTiming,
    severity_rank,
)
from .report import FORMATS, render_json, render_sarif, render_text  # noqa: F401
from .runner import (  # noqa: F401
    LintConfig,
    LintError,
    resolve_spec,
    run_lint,
    run_lint_all,
)

# Importing the pass modules registers every shipped pass.
from . import structural  # noqa: F401,E402
from . import proofs  # noqa: F401,E402
from . import transval  # noqa: F401,E402

__all__ = [
    "ERROR", "WARN", "INFO", "SEVERITIES", "severity_rank",
    "Finding", "PassTiming", "LintReport",
    "LintPass", "LintContext", "register", "all_passes", "pass_by_id",
    "STRUCTURAL", "SMT", "TRANSVAL", "FAMILIES",
    "Baseline", "load_baseline", "write_baseline",
    "render_text", "render_json", "render_sarif", "FORMATS",
    "LintConfig", "LintError", "run_lint", "run_lint_all", "resolve_spec",
]
