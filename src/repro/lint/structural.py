"""Structural and dataflow lint passes.

These passes walk the parsed spec (AST) and the translated IR; they need
no solver.  Each catches a class of retargeting bug that the dynamic
differential tests only find if a run happens to exercise the broken
rule:

* ``translation``       — semantics blocks that fail IR lowering (width
                          mismatches, unknown names, bad builtins).
* ``ir-width``          — ``ir/validate.py`` run on every successfully
                          translated rule (cross-check: even with
                          translation-time validation disabled, lint
                          re-proves structural/width sanity).
* ``use-before-def``    — locals that are only defined on *some* paths
                          to a use (the semantics language has flat
                          scoping, so this is legal syntax but undefined
                          behaviour at runtime).
* ``dead-assignment``   — locals that are never read, and values
                          overwritten before any read.
* ``shadowed-rule``     — rules that can never decode because an
                          earlier/shorter rule matches every one of
                          their encodings.
* ``syntax-operands``   — declared operands that neither the syntax nor
                          the semantics reference; semantics reading
                          fields fixed by ``match``.
* ``missing-pc-update`` — branch-shaped rules (pc-relative operands)
                          whose semantics never assign ``pc``.
* ``flag-completeness`` — instructions that write a strict subset of the
                          spec's condition-flag class, or write a flag
                          on only some paths.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..adl import ast as A
from ..adl.analyze import overlapping_pairs, syntax_placeholders
from ..ir import IrError, validate_block
from .base import LintContext, LintPass, register
from .findings import ERROR, INFO, WARN, Finding

__all__ = ["ast_names_used", "must_defined_walk"]


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------

def _expr_children(expr: A.SExpr) -> Tuple[A.SExpr, ...]:
    if isinstance(expr, A.SBin):
        return (expr.left, expr.right)
    if isinstance(expr, A.SUn):
        return (expr.operand,)
    if isinstance(expr, A.SCall):
        return tuple(expr.args)
    if isinstance(expr, A.STernary):
        return (expr.cond, expr.then, expr.other)
    if isinstance(expr, A.SIndex):
        return (expr.index,)
    return ()


def _expr_names(expr: A.SExpr) -> Iterable[Tuple[str, int]]:
    """Yield ``(name, line)`` for every name/index read in ``expr``."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, A.SName):
            yield node.name, node.line
        elif isinstance(node, A.SIndex):
            yield node.name, node.line
        stack.extend(_expr_children(node))


def ast_names_used(stmts: Sequence[A.SStmt]) -> Set[str]:
    """Every name read anywhere in a semantics block (not targets)."""
    names: Set[str] = set()
    for stmt in stmts:
        for expr in _stmt_exprs(stmt):
            names.update(name for name, _ in _expr_names(expr))
        if isinstance(stmt, A.AIf):
            names |= ast_names_used(stmt.then_body)
            names |= ast_names_used(stmt.else_body)
    return names


def _stmt_exprs(stmt: A.SStmt) -> Tuple[A.SExpr, ...]:
    """The expressions *read* by one statement (excluding sub-blocks).

    For assignments the target's index expression counts as a read, the
    target name itself does not.
    """
    if isinstance(stmt, A.ALocal):
        return (stmt.value,)
    if isinstance(stmt, A.AAssign):
        if isinstance(stmt.target, A.SIndex):
            return (stmt.target.index, stmt.value)
        return (stmt.value,)
    if isinstance(stmt, A.AIf):
        return (stmt.cond,)
    if isinstance(stmt, A.AStore):
        return (stmt.addr, stmt.value)
    if isinstance(stmt, A.AOut):
        return (stmt.value,)
    if isinstance(stmt, (A.AHalt, A.ATrap)):
        return (stmt.code,)
    return ()


def _declared_locals(stmts: Sequence[A.SStmt]) -> Dict[str, int]:
    """All ``local`` declarations in a block (flat scope), name -> line."""
    declared: Dict[str, int] = {}
    for stmt in stmts:
        if isinstance(stmt, A.ALocal) and stmt.name not in declared:
            declared[stmt.name] = stmt.line
        elif isinstance(stmt, A.AIf):
            for name, line in _declared_locals(stmt.then_body).items():
                declared.setdefault(name, line)
            for name, line in _declared_locals(stmt.else_body).items():
                declared.setdefault(name, line)
    return declared


def must_defined_walk(stmts: Sequence[A.SStmt], locals_all: Set[str],
                      defined: Set[str],
                      problems: List[Tuple[str, int]]) -> Set[str]:
    """Path-sensitive must-define analysis over a semantics block.

    ``defined`` is the set of locals guaranteed defined on entry; the
    return value is the set guaranteed defined on exit (intersection over
    paths for ``if``).  Reads of a local not in the current must-defined
    set are recorded in ``problems`` as ``(name, line)``.
    """
    current = set(defined)

    def check_expr(expr: A.SExpr) -> None:
        for name, line in _expr_names(expr):
            if name in locals_all and name not in current:
                problems.append((name, line))

    for stmt in stmts:
        for expr in _stmt_exprs(stmt):
            check_expr(expr)
        if isinstance(stmt, A.ALocal):
            current.add(stmt.name)
        elif isinstance(stmt, A.AAssign):
            target = stmt.target
            if isinstance(target, A.SName) and target.name in locals_all:
                current.add(target.name)
        elif isinstance(stmt, A.AIf):
            then_out = must_defined_walk(stmt.then_body, locals_all,
                                         current, problems)
            else_out = must_defined_walk(stmt.else_body, locals_all,
                                         current, problems)
            current = then_out & else_out
    return current


# ---------------------------------------------------------------------------
# Passes
# ---------------------------------------------------------------------------

@register
class TranslationPass(LintPass):
    id = "translation"
    title = "semantics blocks must lower to IR (width/name discipline)"
    default_severity = ERROR

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for name in sorted(ctx.translate_errors):
            message, line = ctx.translate_errors[name]
            yield self.finding(
                ctx, "semantics failed IR translation: %s" % message,
                line=line, instruction=name)


@register
class IrWidthPass(LintPass):
    id = "ir-width"
    title = "translated IR passes structural/width validation"
    default_severity = ERROR

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        wordsize = ctx.spec.wordsize
        for instr in ctx.instructions():
            block = ctx.ir_blocks.get(instr.name)
            if block is None:
                continue  # translation failure already reported
            try:
                validate_block(block)
            except IrError as error:
                yield self.finding(
                    ctx, "invalid IR: %s" % error, line=instr.line,
                    instruction=instr.name)
            for finding in self._check_machine_widths(ctx, instr, block):
                yield finding
            for stmt in instr.semantics:
                for finding in self._check_access_sizes(ctx, instr, stmt,
                                                        wordsize):
                    yield finding

    def _check_machine_widths(self, ctx: LintContext, instr: A.InstrDecl,
                              block) -> Iterable[Finding]:
        """Spec-aware width checks ``ir/validate.py`` cannot do on its
        own: register reads/writes and pc updates must use the widths
        the spec declares for those storage locations."""
        from ..ir import nodes as N
        from .base import iter_exprs, iter_stmts
        spec = ctx.spec

        def storage_width(regfile: str, index) -> Optional[int]:
            if index is None and regfile in spec.registers:
                return spec.registers[regfile].width
            decl = spec.regfiles.get(regfile)
            return decl.width if decl is not None else None

        for stmt in iter_stmts(block):
            if isinstance(stmt, N.SetReg):
                want = storage_width(stmt.regfile, stmt.index)
                if want is not None and stmt.value.width != want:
                    yield self.finding(
                        ctx, "writes %d bits into %d-bit register %r"
                        % (stmt.value.width, want, stmt.regfile),
                        line=instr.line, instruction=instr.name)
            elif isinstance(stmt, N.SetPc):
                if stmt.value.width != spec.pc.width:
                    yield self.finding(
                        ctx, "assigns %d bits to the %d-bit pc"
                        % (stmt.value.width, spec.pc.width),
                        line=instr.line, instruction=instr.name)
        for expr in iter_exprs(block):
            if isinstance(expr, N.ReadReg):
                want = storage_width(expr.regfile, expr.index)
                if want is not None and expr.width != want:
                    yield self.finding(
                        ctx, "reads register %r (%d bits) at width %d"
                        % (expr.regfile, want, expr.width),
                        line=instr.line, instruction=instr.name)

    def _check_access_sizes(self, ctx: LintContext, instr: A.InstrDecl,
                            stmt: A.SStmt, wordsize: int
                            ) -> Iterable[Finding]:
        """Memory accesses wider than the architecture word are almost
        always a spec typo (the engines would still execute them)."""
        if isinstance(stmt, A.AStore) and 8 * stmt.size > wordsize:
            yield self.finding(
                ctx, "store of %d bytes exceeds the %d-bit word size"
                % (stmt.size, wordsize), line=stmt.line,
                instruction=instr.name, severity=WARN)
        for expr in _walk_exprs(_stmt_exprs(stmt)):
            if (isinstance(expr, A.SCall) and expr.name == "load"
                    and len(expr.args) == 2
                    and isinstance(expr.args[1], A.SLit)
                    and 8 * expr.args[1].value > wordsize):
                yield self.finding(
                    ctx, "load of %d bytes exceeds the %d-bit word size"
                    % (expr.args[1].value, wordsize), line=expr.line,
                    instruction=instr.name, severity=WARN)
        if isinstance(stmt, A.AIf):
            for body in (stmt.then_body, stmt.else_body):
                for inner in body:
                    for finding in self._check_access_sizes(
                            ctx, instr, inner, wordsize):
                        yield finding


def _walk_exprs(roots: Iterable[A.SExpr]) -> Iterable[A.SExpr]:
    stack = list(roots)
    while stack:
        node = stack.pop()
        yield node
        stack.extend(_expr_children(node))


@register
class UseBeforeDefPass(LintPass):
    id = "use-before-def"
    title = "locals must be defined on every path before use"
    default_severity = ERROR

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for instr in ctx.instructions():
            declared = _declared_locals(instr.semantics)
            if not declared:
                continue
            problems: List[Tuple[str, int]] = []
            must_defined_walk(instr.semantics, set(declared), set(),
                              problems)
            seen: Set[Tuple[str, int]] = set()
            for name, line in problems:
                if (name, line) in seen:
                    continue
                seen.add((name, line))
                yield self.finding(
                    ctx, "local %r may be used before definition "
                    "(declared at line %d on only some paths)"
                    % (name, declared[name]),
                    line=line or declared[name], instruction=instr.name)


@register
class DeadAssignmentPass(LintPass):
    id = "dead-assignment"
    title = "every local assignment should be read"
    default_severity = WARN

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for instr in ctx.instructions():
            declared = _declared_locals(instr.semantics)
            if not declared:
                continue
            used = ast_names_used(instr.semantics)
            for name in sorted(declared):
                if name not in used:
                    yield self.finding(
                        ctx, "local %r is assigned but never read "
                        "(dead temporary)" % name,
                        line=declared[name], instruction=instr.name)
            for name, line in self._overwrites(instr.semantics, declared,
                                               used):
                yield self.finding(
                    ctx, "value of local %r is overwritten before any "
                    "read" % name, line=line, instruction=instr.name)

    def _overwrites(self, stmts: Sequence[A.SStmt],
                    declared: Dict[str, int], used: Set[str]
                    ) -> Iterable[Tuple[str, int]]:
        """Straight-line redefinition-before-read at one nesting level."""
        pending: Dict[str, int] = {}
        for stmt in stmts:
            reads = {name for expr in _stmt_exprs(stmt)
                     for name, _ in _expr_names(expr)}
            for name in reads:
                pending.pop(name, None)
            if isinstance(stmt, A.AIf):
                # A branch may read anything: drop pending writes that the
                # branch bodies mention at all (conservative).
                inner = ast_names_used(stmt.then_body) \
                    | ast_names_used(stmt.else_body)
                for name in inner:
                    pending.pop(name, None)
                continue
            target: Optional[str] = None
            line = stmt.line
            if isinstance(stmt, A.ALocal):
                target = stmt.name
            elif isinstance(stmt, A.AAssign) \
                    and isinstance(stmt.target, A.SName) \
                    and stmt.target.name in declared:
                target = stmt.target.name
            if target is None:
                continue
            if target in pending and target in used:
                yield target, pending[target]
            pending[target] = line


@register
class ShadowedRulePass(LintPass):
    id = "shadowed-rule"
    title = "every rule must be reachable by the generated decoder"
    default_severity = ERROR

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for left, right, witness, prefix in overlapping_pairs(ctx.spec):
            shadowed = self._subsumed(left, right, prefix, ctx.spec.endian)
            if shadowed is None:
                continue  # partial overlap: the SMT ambiguity pass owns it
            winner = left if shadowed is right else right
            if winner.pattern.length < shadowed.pattern.length:
                how = ("the decoder tries %d-byte encodings first"
                       % winner.pattern.length)
            else:
                how = "its fixed bits are a superset"
            yield self.finding(
                ctx, "rule %r is unreachable: every encoding also "
                "matches %r (%s; witness word %#x)"
                % (shadowed.name, winner.name, how, witness),
                line=shadowed.line, instruction=shadowed.name,
                witness=witness)

    @staticmethod
    def _subsumed(left: A.InstrDecl, right: A.InstrDecl, prefix: int,
                  endian: str) -> Optional[A.InstrDecl]:
        """Which of an overlapping pair (if either) can never decode.

        ``b`` is subsumed by ``a`` when every word matching ``b``'s
        pattern also matches ``a``'s over the fetch prefix *and* the
        decoder would pick ``a`` (equal length, or ``a`` shorter —
        shortest-first decode).  Prefers reporting the later declaration
        as the shadowed one when both subsume each other (identical
        patterns).
        """
        from ..adl.analyze import _fetch_prefix
        mask_l, match_l = _fetch_prefix(left.pattern, prefix, endian)
        mask_r, match_r = _fetch_prefix(right.pattern, prefix, endian)
        l_covers_r = (mask_l & ~mask_r) == 0 \
            and left.pattern.length <= right.pattern.length
        r_covers_l = (mask_r & ~mask_l) == 0 \
            and right.pattern.length <= left.pattern.length
        if l_covers_r and r_covers_l:
            return left if left.line > right.line else right
        if l_covers_r:
            return right
        if r_covers_l:
            return left
        return None


@register
class SyntaxOperandPass(LintPass):
    id = "syntax-operands"
    title = "operands and placeholders agree with the encoding"
    default_severity = WARN

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for instr in ctx.instructions():
            placeholders = {name for name, _ in
                            syntax_placeholders(instr.syntax)}
            used = ast_names_used(instr.semantics)
            for operand in instr.operands:
                if operand.name not in placeholders \
                        and operand.name not in used:
                    yield self.finding(
                        ctx, "operand %r is declared but neither the "
                        "syntax nor the semantics reference it"
                        % operand.name,
                        line=operand.line or instr.line,
                        instruction=instr.name)
            for field_name in sorted(set(instr.match) & used):
                yield self.finding(
                    ctx, "semantics read field %r, which 'match' fixes "
                    "to %#x (constant fold intended?)"
                    % (field_name, instr.match[field_name]),
                    line=instr.line, instruction=instr.name,
                    severity=INFO)


@register
class MissingPcUpdatePass(LintPass):
    id = "missing-pc-update"
    title = "branch-shaped rules must assign pc"
    default_severity = ERROR

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for instr in ctx.instructions():
            pcrel = [op.name for op in instr.operands if op.pcrel]
            if not pcrel:
                continue
            if self._assigns_pc(instr.semantics):
                continue
            yield self.finding(
                ctx, "declares pc-relative operand%s %s but the "
                "semantics never assign pc (branch without a branch)"
                % ("" if len(pcrel) == 1 else "s", ", ".join(pcrel)),
                line=instr.line, instruction=instr.name)

    def _assigns_pc(self, stmts: Sequence[A.SStmt]) -> bool:
        for stmt in stmts:
            if isinstance(stmt, A.AAssign) \
                    and isinstance(stmt.target, A.SName) \
                    and stmt.target.name == "pc":
                return True
            if isinstance(stmt, A.AIf):
                if self._assigns_pc(stmt.then_body) \
                        or self._assigns_pc(stmt.else_body):
                    return True
        return False


@register
class FlagCompletenessPass(LintPass):
    id = "flag-completeness"
    title = "flag-writing rules update the whole flag class"
    default_severity = WARN

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        flags = set(ctx.flag_registers())
        if not flags:
            return
        writes: Dict[str, Tuple[Set[str], Set[str]]] = {}
        for instr in ctx.instructions():
            may, must = self._flag_writes(instr.semantics, flags)
            if may:
                writes[instr.name] = (may, must)
        if not writes:
            return
        #: The spec's flag class: every flag some instruction writes.
        flag_class: Set[str] = set()
        for may, _ in writes.values():
            flag_class |= may
        for instr in ctx.instructions():
            if instr.name not in writes:
                continue
            may, must = writes[instr.name]
            conditional = sorted(may - must)
            if conditional:
                yield self.finding(
                    ctx, "flags %s are written on only some paths "
                    "(stale flag values on the others)"
                    % ", ".join(conditional),
                    line=instr.line, instruction=instr.name)
            missing = sorted(flag_class - may)
            if missing:
                yield self.finding(
                    ctx, "writes flags %s but not %s (the spec's flag "
                    "class is %s)"
                    % (", ".join(sorted(may)), ", ".join(missing),
                       ", ".join(sorted(flag_class))),
                    line=instr.line, instruction=instr.name,
                    severity=INFO)

    def _flag_writes(self, stmts: Sequence[A.SStmt], flags: Set[str]
                     ) -> Tuple[Set[str], Set[str]]:
        """(may-write, must-write) flag sets of a semantics block."""
        may: Set[str] = set()
        must: Set[str] = set()
        for stmt in stmts:
            if isinstance(stmt, A.AAssign) \
                    and isinstance(stmt.target, A.SName) \
                    and stmt.target.name in flags:
                may.add(stmt.target.name)
                must.add(stmt.target.name)
            elif isinstance(stmt, A.AIf):
                then_may, then_must = self._flag_writes(stmt.then_body,
                                                        flags)
                else_may, else_must = self._flag_writes(stmt.else_body,
                                                        flags)
                may |= then_may | else_may
                must |= then_must & else_must
        return may, must
