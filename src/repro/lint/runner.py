"""The lint driver: tolerant front-end pipeline + pass execution.

:func:`run_lint` takes a built-in spec name (``rv32``) or a filesystem
path to an ``.adl`` file, runs the ADL front end *tolerantly* — decode
ambiguity does not abort analysis (the SMT ambiguity pass reports every
pair with witnesses), and per-instruction translation failures are
collected instead of raised (inline IR validation is turned off so the
``ir-width`` pass can diagnose invalid blocks itself) — then executes
every enabled pass under an :class:`~repro.obs.Obs` profiler phase
(``lint.<pass-id>``) and emits ``lint.*`` counters so ``repro stats``
can report lint runs like any other subsystem.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import adl
from ..adl import ast as A
from ..adl.errors import AdlError
from ..adl.translate import set_ir_validation, translate_instruction
from ..ir import nodes as N
from ..obs import Obs
from .base import (FAMILIES, LintContext, LintPass, all_passes,
                   pass_by_id)
from .findings import ERROR, INFO, WARN, LintReport, PassTiming

__all__ = ["LintConfig", "run_lint", "run_lint_all", "resolve_spec",
           "LintError"]


class LintError(Exception):
    """The spec could not be linted at all (unreadable / unparseable)."""


class LintConfig:
    """Which passes run, and with what solver."""

    def __init__(self, enable: Optional[Sequence[str]] = None,
                 disable: Optional[Sequence[str]] = None,
                 solver_factory: Optional[Callable] = None,
                 families: Optional[Sequence[str]] = None):
        #: When non-empty, run *only* these pass ids.
        self.enable = list(enable) if enable else []
        #: Pass ids to skip (applied after ``enable``).
        self.disable = list(disable) if disable else []
        #: When non-empty, restrict to these pass families
        #: (``--family transval`` runs just the translation validator).
        self.families = list(families) if families else []
        self.solver_factory = solver_factory

    def selected_passes(self) -> List[LintPass]:
        """Resolve the family/enable/disable selection against the
        registry.

        Unknown ids or families raise immediately (a typo in
        ``--enable``/``--family`` should not silently lint nothing).
        """
        for pass_id in list(self.enable) + list(self.disable):
            pass_by_id(pass_id)  # raises on unknown id
        for family in self.families:
            if family not in FAMILIES:
                raise KeyError("unknown lint pass family %r (have: %s)"
                               % (family, ", ".join(FAMILIES)))
        selected = all_passes()
        if self.families:
            wanted_families = set(self.families)
            selected = [p for p in selected
                        if p.family in wanted_families]
        if self.enable:
            wanted = set(self.enable)
            selected = [p for p in selected if p.id in wanted]
        if self.disable:
            unwanted = set(self.disable)
            selected = [p for p in selected if p.id not in unwanted]
        return selected


def resolve_spec(spec_or_path: str) -> Tuple[str, str]:
    """``(spec_name, path)`` for a built-in name or an ``.adl`` path."""
    if spec_or_path in adl.builtin_spec_names():
        return spec_or_path, adl.builtin_spec_path(spec_or_path)
    if os.path.exists(spec_or_path):
        base = os.path.basename(spec_or_path)
        name = base[:-4] if base.endswith(".adl") else base
        return name, spec_or_path
    raise LintError(
        "no spec named %r: not a built-in (%s) and no such file"
        % (spec_or_path, ", ".join(adl.builtin_spec_names())))


def _front_end(path: str) -> Tuple[A.ArchSpec,
                                   Dict[str, Optional[Tuple[N.Stmt, ...]]],
                                   Dict[str, Tuple[str, int]]]:
    """Parse + analyze + translate, tolerantly.

    Returns ``(spec, ir_blocks, translate_errors)``.  Decode-ambiguity
    checking is skipped (the SMT ambiguity pass owns it) and inline IR
    validation is off during translation (the ``ir-width`` pass owns
    it), so a deliberately broken spec still yields a full context.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise LintError("cannot read %s: %s" % (path, error))
    try:
        spec = adl.analyze(adl.parse_spec(text), check_ambiguity=False)
    except AdlError as error:
        raise LintError("%s: %s" % (path, error))
    ir_blocks: Dict[str, Optional[Tuple[N.Stmt, ...]]] = {}
    translate_errors: Dict[str, Tuple[str, int]] = {}
    previous = set_ir_validation(False)
    try:
        for instr in spec.instructions:
            try:
                ir_blocks[instr.name] = tuple(
                    translate_instruction(spec, instr))
            except AdlError as error:
                ir_blocks[instr.name] = None
                line = getattr(error, "line", 0) or instr.line
                translate_errors[instr.name] = (str(error), line)
    finally:
        set_ir_validation(previous)
    return spec, ir_blocks, translate_errors


def run_lint(spec_or_path: str, config: Optional[LintConfig] = None,
             obs: Optional[Obs] = None) -> LintReport:
    """Lint one spec; returns a finalized :class:`LintReport`."""
    config = config or LintConfig()
    obs = obs or Obs.default()
    spec_name, path = resolve_spec(spec_or_path)
    with obs.profiler.phase("lint.front-end"):
        spec, ir_blocks, translate_errors = _front_end(path)
    ctx = LintContext(spec, path, ir_blocks, translate_errors,
                      solver_factory=config.solver_factory)
    report = LintReport(spec_name, path)
    for lint_pass in config.selected_passes():
        ctx.solver_seconds = 0.0
        ctx.solver_checks = 0
        start = time.perf_counter()
        with obs.profiler.phase("lint.%s" % lint_pass.id):
            findings = list(lint_pass.run(ctx))
        elapsed = time.perf_counter() - start
        report.extend(findings)
        report.passes_run.append(lint_pass.id)
        report.timings.append(PassTiming(
            lint_pass.id, elapsed, len(findings),
            solver_seconds=ctx.solver_seconds,
            solver_checks=ctx.solver_checks))
    report.finalize()
    _emit_metrics(obs, report)
    return report


def run_lint_all(config: Optional[LintConfig] = None,
                 obs: Optional[Obs] = None) -> List[LintReport]:
    """Lint every built-in spec, in name order."""
    obs = obs or Obs.default()
    return [run_lint(name, config=config, obs=obs)
            for name in adl.builtin_spec_names()]


def _emit_metrics(obs: Obs, report: LintReport) -> None:
    """``lint.*`` counters for ``repro stats`` / telemetry export."""
    metrics = obs.metrics
    if not metrics.enabled:
        return
    counts = report.by_severity()
    metrics.counter("lint.specs").inc()
    metrics.counter("lint.passes_run").inc(len(report.passes_run))
    metrics.counter("lint.findings.error").inc(counts[ERROR])
    metrics.counter("lint.findings.warn").inc(counts[WARN])
    metrics.counter("lint.findings.info").inc(counts[INFO])
    metrics.counter("lint.solver.checks").inc(
        sum(t.solver_checks for t in report.timings))
    metrics.counter("lint.solver.ms").inc(
        int(round(1000.0 * report.solver_seconds())))
