"""``transval-*`` passes: translation validation as lint findings.

The heavy lifting lives in :mod:`repro.verify`; these passes adapt it
to the lint pipeline.  For each spec they statically prove every
compiled transfer function — the generated concrete Python
(``transval-concrete``) and the symbolic plan (``transval-symbolic``)
— equivalent to the reference IR semantics over *all* decodable
operand values and machine pre-states, and report:

* one ``error`` finding per proven inequivalence, carrying a concrete
  witness (encoding word + operand fields + machine pre-state) and a
  ready-to-run repro command,
* one ``warn`` finding per rule the validator could not decide
  (explicit, never silent — an unverified rule is a visible gap),
* one ``info`` summary finding per spec with rule counts and per-tier
  discharge statistics.

Clean verdicts are cached as certificates in the run store
(:mod:`repro.runstore.certs`), keyed on the spec digest, the codegen
version and the validator version; a cache hit skips the proofs and
says so in the summary finding.  ``REPRO_TRANSVAL_SEED_BUG=<isa>:<rule>``
injects a canned codegen bug (first mask literal corrupted) into the
concrete pass for that rule — the CI gate-efficacy fixture; seeded runs
neither read nor write certificates.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterable, Optional

from .base import TRANSVAL, LintContext, LintPass, register
from .findings import ERROR, INFO, WARN, Finding

__all__ = ["TransvalConcretePass", "TransvalSymbolicPass"]

SEED_BUG_ENV = "REPRO_TRANSVAL_SEED_BUG"


def _seed_bug_override(model, mode: str) -> Optional[Dict[str, str]]:
    """The ``{rule: mutated source}`` override requested via the
    environment, or None.  Unknown rule names raise: a CI fixture that
    silently seeds nothing would "prove" the gate works when it can't.
    """
    spec = os.environ.get(SEED_BUG_ENV, "").strip()
    if not spec or mode != "concrete":
        return None
    isa, _, rule = spec.partition(":")
    if isa != model.name or not rule:
        return None
    from ..compile import compiled_for
    from ..verify import seeded_mutation
    fn = compiled_for(model).concrete.get(rule)
    source = getattr(fn, "generated_source", None)
    if source is None:
        raise ValueError("%s=%s: %s has no rule %r"
                         % (SEED_BUG_ENV, spec, isa, rule))
    return {rule: seeded_mutation(source)}


class _TransvalPass(LintPass):
    """Shared driver; subclasses pick the compiled artifact to verify."""

    family = TRANSVAL
    default_severity = ERROR
    mode = ""

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        from ..compile import CODEGEN_VERSION
        from ..isa.model import ArchModel
        from ..runstore.certs import load_certificate, save_certificate
        from ..runstore.provenance import spec_digest
        from ..verify import (COUNTEREXAMPLE, PROVED, TIERS, UNSUPPORTED,
                              VALIDATOR_VERSION, verify_model)

        try:
            model = ArchModel(ctx.spec)
            if os.path.exists(ctx.path):
                model.source_path = os.path.abspath(ctx.path)
        except Exception as error:  # broken spec: other passes own it
            yield self.finding(
                ctx, "translation validation skipped: cannot build "
                "machine model (%s)" % error, severity=WARN)
            return
        digest = spec_digest(model)
        overrides = _seed_bug_override(model, self.mode)
        if overrides is None:
            cert = load_certificate(digest, CODEGEN_VERSION,
                                    VALIDATOR_VERSION, self.id)
            if cert is not None:
                summary = cert.get("summary", {})
                yield self.finding(
                    ctx, "translation validated (cached certificate): "
                    "%s/%s rules proved equivalent [%s]"
                    % (summary.get("proved", "?"),
                       summary.get("rules", "?"), self.mode),
                    severity=INFO,
                    details={"cached": True, "certificate": cert["key"],
                             "summary": summary})
                return

        start = time.perf_counter()
        results = verify_model(model, self.mode,
                               solver_factory=ctx.new_solver,
                               check=ctx.check,
                               source_overrides=overrides)
        elapsed = time.perf_counter() - start
        tiers = {key: 0 for key in TIERS}
        proved = 0
        for result in results:
            for key, count in result.tiers.items():
                tiers[key] += count
            line = model.by_name[result.rule].decl.line
            if result.status == PROVED:
                proved += 1
            elif result.status == COUNTEREXAMPLE:
                for ce in result.counterexamples:
                    yield self.finding(
                        ctx, "compiled %s semantics diverge from the "
                        "reference IR — %s"
                        % (self.mode, ce.describe()),
                        line=line, instruction=result.rule,
                        severity=ERROR, witness=ce.word,
                        details={
                            "destination": ce.label,
                            "word": ce.word_hex,
                            "fields": dict(ce.fields),
                            "prestate": dict(ce.prestate),
                            "reference": ce.ref_value,
                            "compiled": ce.cand_value,
                            "repro": _repro_snippet(model.name, self.mode,
                                                    result.rule),
                        })
            else:  # UNSUPPORTED — explicit gap, never a silent skip
                assert result.status == UNSUPPORTED
                yield self.finding(
                    ctx, "rule not verified (%s mode): %s"
                    % (self.mode, result.detail),
                    line=line, instruction=result.rule, severity=WARN)
        summary = {
            "isa": model.name,
            "mode": self.mode,
            "rules": len(results),
            "proved": proved,
            "tiers": tiers,
            "seconds": round(elapsed, 3),
        }
        yield self.finding(
            ctx, "translation validated: %d/%d rules proved equivalent "
            "[%s] (discharged: %s)"
            % (proved, len(results), self.mode,
               ", ".join("%s=%d" % (key, tiers[key])
                         for key in TIERS if tiers[key])),
            severity=INFO, details=dict(summary, cached=False))
        if proved == len(results) and overrides is None:
            save_certificate(digest, CODEGEN_VERSION, VALIDATOR_VERSION,
                             self.id, summary)


def _repro_snippet(isa: str, mode: str, rule: str) -> str:
    return ("PYTHONPATH=src python -c \"from repro.isa import build; "
            "from repro.verify import verify_model; "
            "[print(r.to_dict()) for r in verify_model(build(%r), %r) "
            "if r.rule == %r]\"" % (isa, mode, rule))


@register
class TransvalConcretePass(_TransvalPass):
    id = "transval-concrete"
    title = ("prove the generated concrete transfer functions "
             "equivalent to the reference IR (all operands, all "
             "pre-states)")
    mode = "concrete"


@register
class TransvalSymbolicPass(_TransvalPass):
    id = "transval-symbolic"
    title = ("prove the compiled symbolic plans equivalent to the "
             "reference IR (all operands, all pre-states)")
    mode = "symbolic"
