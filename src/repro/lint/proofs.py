"""SMT-backed proof passes.

Where the structural passes reason over fixed bits, these passes pose
solver queries over the *full encoding space* — including the validity
constraints the generated decoder enforces (register-typed fields must
index inside their regfile) — and emit a concrete **witness word** when a
proof fails:

* ``smt-ambiguity``    — no two rules can decode one word.  Mask-level
                         overlap is the (exact) pre-filter; the solver
                         then decides whether an overlap survives the
                         register-range constraints and produces the
                         witness.
* ``smt-completeness`` — is there a word the decoder rejects?  One query
                         per instruction length: the conjunction of all
                         pattern negations.  Real ISAs keep spare opcode
                         space, so a witness is an ``info`` observation
                         (and "decoder is total" is reported when the
                         query is unsat).
* ``smt-roundtrip``    — assembler→decoder consistency per instruction
                         form: no assignment of an instruction's free
                         fields may assemble to a word that an equal- or
                         shorter-length rule steals, and every operand's
                         field split/concatenation must invert.
* ``smt-obligations``  — semantic sanity: register-file indices stay in
                         range under decode validity, and divisions whose
                         divisor can be zero are flagged (SMT-LIB
                         semantics apply, but the spec author should have
                         said so on purpose).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..adl import ast as A
from ..adl.analyze import _fetch_prefix  # shared prefix arithmetic
from ..ir import nodes as N
from ..smt import terms as T
from .base import SMT, LintContext, LintPass, register
from .findings import ERROR, INFO, WARN, Finding
from .structural import ShadowedRulePass

__all__ = ["SymbolicIR"]

SAT = "sat"
UNSAT = "unsat"


# ---------------------------------------------------------------------------
# Encoding-space helpers
# ---------------------------------------------------------------------------

def _pattern_matches(word: T.Term, mask: int, match: int) -> T.Term:
    bits = word.width
    return T.eq(T.and_(word, T.bv(mask, bits)), T.bv(match, bits))


def _field_slice(field: A.EncodingField, total_bits: int, prefix_bits: int,
                 endian: str) -> Optional[Tuple[int, int]]:
    """``(hi, lo)`` of a field inside the fetched *prefix* word, or
    ``None`` when the field is not wholly contained in the prefix."""
    if endian == "little":
        lo = field.lsb
        hi = field.lsb + field.width - 1
        if hi >= prefix_bits:
            return None
        return hi, lo
    shift = total_bits - prefix_bits
    lo = field.lsb - shift
    hi = lo + field.width - 1
    if lo < 0:
        return None
    return hi, lo


def _validity(ctx: LintContext, instr: A.InstrDecl, word: T.Term,
              prefix_bytes: int) -> List[T.Term]:
    """Decode-validity constraints of ``instr`` over a prefix word:
    register-typed fields visible in the prefix index inside their
    regfile (mirrors ``Decoder.decode_bytes``'s ``reg_field_limits``)."""
    enc = ctx.encoding_of(instr)
    limits = ctx.reg_field_limits(instr)
    conds: List[T.Term] = []
    for field in enc.fields:
        limit = limits.get(field.name)
        if limit is None or limit >= (1 << field.width):
            continue
        where = _field_slice(field, enc.total_bits, 8 * prefix_bytes,
                             ctx.spec.endian)
        if where is None:
            continue
        hi, lo = where
        conds.append(T.ult(T.extract(word, hi, lo),
                           T.bv(limit, field.width)))
    return conds


def _compatible(ctx, instr_a: A.InstrDecl, instr_b: A.InstrDecl
                ) -> Optional[Tuple[int, int, int, int, int]]:
    """Cheap exact pre-filter for fixed-bit overlap over the common
    prefix; returns ``(prefix_bytes, mask_a, match_a, mask_b, match_b)``
    or ``None`` when the fixed bits alone already rule overlap out."""
    prefix = min(instr_a.pattern.length, instr_b.pattern.length)
    mask_a, match_a = _fetch_prefix(instr_a.pattern, prefix,
                                    ctx.spec.endian)
    mask_b, match_b = _fetch_prefix(instr_b.pattern, prefix,
                                    ctx.spec.endian)
    common = mask_a & mask_b
    if (match_a & common) != (match_b & common):
        return None
    return prefix, mask_a, match_a, mask_b, match_b


# ---------------------------------------------------------------------------
# Symbolic IR evaluation (for the semantic obligations)
# ---------------------------------------------------------------------------

class SymbolicIR:
    """Evaluate one rule's IR over symbolic encoding fields.

    Fields/operands become bitvector variables (``f_<name>``); machine
    state reads (registers, memory, input) become fresh unconstrained
    variables — sound for the obligations we pose, which only constrain
    field-derived values.  Walking statements collects *obligation
    sites*: ``(path_condition, kind, term, detail)`` tuples the proof
    pass turns into solver queries.
    """

    def __init__(self, instr: A.InstrDecl, enc: A.EncodingDecl,
                 wordsize: int, pc_width: int, mkvar=T.var):
        self.instr = instr
        self.wordsize = wordsize
        self.pc_width = pc_width
        self._mkvar = mkvar
        self._fresh = itertools.count()
        self.fields: Dict[str, T.Term] = {
            field.name: mkvar("f_%s_%s" % (enc.name, field.name),
                              field.width)
            for field in enc.fields}
        for operand in instr.operands:
            self.fields[operand.name] = operand_term(enc, operand,
                                                     self.fields,
                                                     mkvar=mkvar)
        self.locals: Dict[str, T.Term] = {}
        #: (path_condition_terms, kind, interesting_term, detail)
        self.obligations: List[Tuple[Tuple[T.Term, ...], str, T.Term,
                                     str]] = []

    # -- expression translation ---------------------------------------------

    def fresh(self, what: str, width: int) -> T.Term:
        return self._mkvar("%s_%s_%d" % (what, self.instr.name,
                                         next(self._fresh)), width)

    def expr(self, node: N.Expr, path: Tuple[T.Term, ...]) -> T.Term:
        if isinstance(node, N.Const):
            return T.bv(node.value, node.width)
        if isinstance(node, N.Field):
            term = self.fields.get(node.name)
            if term is None or term.width != node.width:
                return self.fresh("field", node.width)
            return term
        if isinstance(node, N.Local):
            term = self.locals.get(node.name)
            if term is None or term.width != node.width:
                return self.fresh("local", node.width)
            return term
        if isinstance(node, N.Pc):
            return self._mkvar("pc_%s" % self.instr.name, node.width)
        if isinstance(node, N.ReadReg):
            if node.index is not None:
                self._note_index(node.regfile, node.index, path)
            return self.fresh("reg", node.width)
        if isinstance(node, (N.Load, N.InputByte)):
            return self.fresh("mem", node.width)
        if isinstance(node, N.BinOp):
            left = self.expr(node.left, path)
            right = self.expr(node.right, path)
            if node.op in ("udiv", "urem", "sdiv", "srem"):
                self.obligations.append(
                    (path, "div-by-zero",
                     T.eq(right, T.bv(0, right.width)), node.op))
            return _BINOPS[node.op](left, right)
        if isinstance(node, N.UnOp):
            operand = self.expr(node.operand, path)
            if node.op == "neg":
                return T.neg(operand)
            return T.not_(operand)  # 'not' and width-1 'boolnot'
        if isinstance(node, N.Ext):
            operand = self.expr(node.operand, path)
            extra = node.width - operand.width
            return (T.zext(operand, extra) if node.kind == "zext"
                    else T.sext(operand, extra))
        if isinstance(node, N.ExtractBits):
            return T.extract(self.expr(node.operand, path), node.hi,
                             node.lo)
        if isinstance(node, N.ConcatBits):
            return T.concat(self.expr(node.hi_part, path),
                            self.expr(node.lo_part, path))
        if isinstance(node, N.IteExpr):
            return T.ite(self.expr(node.cond, path),
                         self.expr(node.then, path),
                         self.expr(node.other, path))
        return self.fresh("opaque", node.width)

    def _note_index(self, regfile: str, index: N.Expr,
                    path: Tuple[T.Term, ...]) -> None:
        term = self.expr(index, path)
        self.obligations.append((path, "reg-index", term, regfile))

    # -- statement walk ------------------------------------------------------

    def walk(self, block: Iterable[N.Stmt],
             path: Tuple[T.Term, ...] = ()) -> None:
        for stmt in block:
            if isinstance(stmt, N.SetLocal):
                self.locals[stmt.name] = self.expr(stmt.value, path)
            elif isinstance(stmt, N.SetReg):
                if stmt.index is not None:
                    self._note_index(stmt.regfile, stmt.index, path)
                self.expr(stmt.value, path)
            elif isinstance(stmt, (N.SetPc, N.Output)):
                self.expr(stmt.value, path)
            elif isinstance(stmt, (N.Halt, N.Trap)):
                self.expr(stmt.code, path)
            elif isinstance(stmt, N.Store):
                self.expr(stmt.addr, path)
                self.expr(stmt.value, path)
            elif isinstance(stmt, N.IfStmt):
                cond = self.expr(stmt.cond, path)
                before = dict(self.locals)
                self.walk(stmt.then_body, path + (cond,))
                then_locals = self.locals
                self.locals = dict(before)
                self.walk(stmt.else_body, path + (T.not_(cond),))
                merged = dict(self.locals)
                for name, then_term in then_locals.items():
                    else_term = merged.get(name)
                    if else_term is None:
                        merged[name] = then_term
                    elif else_term is not then_term \
                            and else_term.width == then_term.width:
                        merged[name] = T.ite(cond, then_term, else_term)
                self.locals = merged


_BINOPS = {
    "add": T.add, "sub": T.sub, "mul": T.mul, "udiv": T.udiv,
    "urem": T.urem, "sdiv": T.sdiv, "srem": T.srem, "and": T.and_,
    "or": T.or_, "xor": T.xor, "shl": T.shl, "lshr": T.lshr,
    "ashr": T.ashr, "eq": T.eq, "ne": T.ne, "ult": T.ult, "ule": T.ule,
    "ugt": T.ugt, "uge": T.uge, "slt": T.slt, "sle": T.sle,
    "sgt": T.sgt, "sge": T.sge,
}


def operand_term(enc: A.EncodingDecl, operand: A.OperandDecl,
                 fields: Dict[str, T.Term], mkvar=T.var) -> T.Term:
    """The operand's value as the MSB-first concatenation of its parts."""
    parts: List[T.Term] = []
    for part in operand.parts:
        if part.field_name is None:
            if part.zero_bits:
                parts.append(T.bv(0, part.zero_bits))
        else:
            field = enc.field(part.field_name)
            parts.append(fields.get(part.field_name,
                                    mkvar("f_%s_%s" % (enc.name,
                                                       part.field_name),
                                          field.width)))
    if not parts:
        return T.bv(0, 1)
    return T.concat_many(parts)


# ---------------------------------------------------------------------------
# Passes
# ---------------------------------------------------------------------------

@register
class SmtAmbiguityPass(LintPass):
    id = "smt-ambiguity"
    title = "no two rules decode one word (proof over full space)"
    family = SMT
    default_severity = ERROR

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        solver = ctx.new_solver()
        instrs = ctx.instructions()
        for i, first in enumerate(instrs):
            for second in instrs[i + 1:]:
                compat = _compatible(ctx, first, second)
                if compat is None:
                    continue
                prefix, mask_a, match_a, mask_b, match_b = compat
                if ShadowedRulePass._subsumed(first, second, prefix,
                                              ctx.spec.endian) is not None:
                    continue  # reported (with witness) by shadowed-rule
                bits = 8 * prefix
                word = ctx.mkvar("w_%s_%s" % (first.name, second.name),
                                 bits)
                query = [_pattern_matches(word, mask_a, match_a),
                         _pattern_matches(word, mask_b, match_b)]
                query += _validity(ctx, first, word, prefix)
                query += _validity(ctx, second, word, prefix)
                verdict = ctx.check(solver, query)
                left, right = sorted((first, second),
                                     key=lambda item: item.name)
                if verdict == SAT:
                    witness = T.evaluate(word, solver.model())
                    yield self.finding(
                        ctx, "instructions %r and %r can decode the same "
                        "word (witness word %#0*x)"
                        % (left.name, right.name, 2 + 2 * prefix, witness),
                        line=max(first.line, second.line),
                        instruction=right.name, witness=witness,
                        details={"other": left.name,
                                 "prefix_bytes": prefix})
                else:
                    yield self.finding(
                        ctx, "fixed-bit masks of %r and %r overlap, but "
                        "the register-range constraints make the overlap "
                        "undecodable (proven unsat)"
                        % (left.name, right.name),
                        line=max(first.line, second.line),
                        instruction=right.name, severity=INFO)


@register
class SmtCompletenessPass(LintPass):
    id = "smt-completeness"
    title = "how much of the encoding space decodes (witness if not all)"
    family = SMT
    default_severity = INFO

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        solver = ctx.new_solver()
        by_length: Dict[int, List[A.InstrDecl]] = {}
        for instr in ctx.instructions():
            by_length.setdefault(instr.pattern.length, []).append(instr)
        for length in sorted(by_length):
            bits = 8 * length
            word = ctx.mkvar("w_len%d" % length, bits)
            rejects: List[T.Term] = []
            for instr in ctx.instructions():
                if instr.pattern.length > length:
                    continue
                prefix = instr.pattern.length
                mask, match = _fetch_prefix(instr.pattern, prefix,
                                            ctx.spec.endian)
                sub = _prefix_of(word, 8 * prefix, ctx.spec.endian)
                matches = T.conjoin(
                    [_pattern_matches(sub, mask, match)]
                    + _validity(ctx, instr, sub, prefix))
                rejects.append(T.not_(matches))
            verdict = ctx.check(solver, rejects)
            if verdict == SAT:
                witness = T.evaluate(word, solver.model())
                yield self.finding(
                    ctx, "%d-byte windows are not exhaustively decodable: "
                    "witness word %#0*x matches no rule (spare opcode "
                    "space — expected for most ISAs)"
                    % (length, 2 + 2 * length, witness),
                    witness=witness, details={"length": length})
            else:
                yield self.finding(
                    ctx, "decoder is total over %d-byte windows (proven: "
                    "every word decodes)" % length,
                    details={"length": length})


def _prefix_of(word: T.Term, prefix_bits: int, endian: str) -> T.Term:
    if prefix_bits >= word.width:
        return word
    if endian == "little":
        return T.extract(word, prefix_bits - 1, 0)
    return T.extract(word, word.width - 1, word.width - prefix_bits)


@register
class SmtRoundTripPass(LintPass):
    id = "smt-roundtrip"
    title = "assemble→decode is the identity for every rule form"
    family = SMT
    default_severity = ERROR

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        solver = ctx.new_solver()
        for instr in ctx.instructions():
            word, field_vars = self._assembled(ctx, instr)
            own_validity = self._field_validity(ctx, instr, field_vars)
            for other in ctx.instructions():
                if other is instr:
                    continue
                if other.pattern.length > instr.pattern.length:
                    continue
                for finding in self._steals(ctx, solver, instr, other,
                                            word, field_vars,
                                            own_validity):
                    yield finding
            for finding in self._operand_roundtrip(ctx, instr):
                yield finding

    # -- assembled-word model ------------------------------------------------

    def _assembled(self, ctx: LintContext, instr: A.InstrDecl
                   ) -> Tuple[T.Term, Dict[str, T.Term]]:
        """The instruction word as the assembler builds it: fixed match
        bits OR'd with one variable per free field."""
        enc = ctx.encoding_of(instr)
        bits = enc.total_bits
        word = T.bv(instr.pattern.match, bits)
        field_vars: Dict[str, T.Term] = {}
        for field in enc.fields:
            if field.name in instr.match:
                continue
            var = ctx.mkvar("a_%s_%s" % (instr.name, field.name),
                            field.width)
            field_vars[field.name] = var
            placed = T.shl(T.zext(var, bits - field.width),
                           T.bv(field.lsb, bits))
            word = T.or_(word, placed)
        return word, field_vars

    def _field_validity(self, ctx: LintContext, instr: A.InstrDecl,
                        field_vars: Dict[str, T.Term]) -> List[T.Term]:
        conds: List[T.Term] = []
        for name, limit in ctx.reg_field_limits(instr).items():
            var = field_vars.get(name)
            if var is not None and limit < (1 << var.width):
                conds.append(T.ult(var, T.bv(limit, var.width)))
        return conds

    def _steals(self, ctx: LintContext, solver, instr: A.InstrDecl,
                other: A.InstrDecl, word: T.Term,
                field_vars: Dict[str, T.Term],
                own_validity: List[T.Term]) -> Iterable[Finding]:
        compat = _compatible(ctx, instr, other)
        if compat is None:
            return
        prefix = other.pattern.length
        mask, match = _fetch_prefix(other.pattern, prefix,
                                    ctx.spec.endian)
        sub = _prefix_of(word, 8 * prefix, ctx.spec.endian)
        query = [_pattern_matches(sub, mask, match)]
        query += _validity(ctx, other, sub, prefix)
        query += own_validity
        if ctx.check(solver, query) != SAT:
            return
        model = solver.model()
        witness = T.evaluate(word, model)
        assignment = {name: T.evaluate(var, model)
                      for name, var in sorted(field_vars.items())}
        how = ("shorter rule wins the shortest-first decode"
               if other.pattern.length < instr.pattern.length
               else "equal-length patterns collide")
        yield self.finding(
            ctx, "assembling %r with fields %s yields word %#x, which "
            "decodes as %r (%s)"
            % (instr.name,
               ", ".join("%s=%#x" % item for item in assignment.items()),
               witness, other.name, how),
            line=instr.line, instruction=instr.name, witness=witness,
            details={"decodes_as": other.name, "fields": assignment})

    # -- operand split/concat inversion --------------------------------------

    def _operand_roundtrip(self, ctx: LintContext, instr: A.InstrDecl
                           ) -> Iterable[Finding]:
        """Prove ``encode_operand`` inverts ``operand_value``: splitting
        the concatenated operand back into fields recovers every field.
        Fails when a field appears twice in the concatenation with
        conflicting positions (a classic copy/paste spec bug)."""
        solver = ctx.new_solver()
        enc = ctx.encoding_of(instr)
        for operand in instr.operands:
            field_vars: Dict[str, T.Term] = {}
            for part in operand.parts:
                if part.field_name is None:
                    continue
                field = enc.field(part.field_name)
                if field is None:
                    continue  # analyze already rejected; stay tolerant
                field_vars.setdefault(
                    part.field_name,
                    ctx.mkvar("o_%s_%s_%s" % (instr.name, operand.name,
                                              part.field_name),
                              field.width))
            if not field_vars:
                continue
            value = operand_term(enc, operand, field_vars,
                                 mkvar=ctx.mkvar)
            # encode_operand walks the parts LSB-first, peeling each
            # field off the low end.
            mismatches: List[T.Term] = []
            shift = 0
            for part in reversed(operand.parts):
                if part.field_name is None:
                    shift += part.zero_bits
                    continue
                field = enc.field(part.field_name)
                if field is None:
                    continue
                recovered = T.extract(value, shift + field.width - 1,
                                      shift)
                mismatches.append(T.ne(recovered,
                                       field_vars[part.field_name]))
                shift += field.width
            if not mismatches:
                continue
            if ctx.check(solver, [T.disjoin(mismatches)]) == SAT:
                model = solver.model()
                assignment = {name: T.evaluate(var, model)
                              for name, var in sorted(field_vars.items())}
                yield self.finding(
                    ctx, "operand %r does not round-trip through "
                    "encode/decode: fields %s are not recovered from "
                    "value %#x"
                    % (operand.name,
                       ", ".join("%s=%#x" % item
                                 for item in assignment.items()),
                       T.evaluate(value, model)),
                    line=operand.line or instr.line,
                    instruction=instr.name)


@register
class SmtObligationsPass(LintPass):
    id = "smt-obligations"
    title = "semantic sanity: reg indices in range, guarded division"
    family = SMT
    default_severity = WARN

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        solver = ctx.new_solver()
        spec = ctx.spec
        for instr in ctx.instructions():
            block = ctx.ir_blocks.get(instr.name)
            if block is None:
                continue
            enc = ctx.encoding_of(instr)
            sym = SymbolicIR(instr, enc, spec.wordsize, spec.pc.width,
                             mkvar=ctx.mkvar)
            sym.walk(block)
            validity = [T.ult(sym.fields[name],
                              T.bv(limit, sym.fields[name].width))
                        for name, limit in
                        sorted(ctx.reg_field_limits(instr).items())
                        if limit < (1 << sym.fields[name].width)]
            # Fields fixed by `match` are constants at decode time.
            fixed = [T.eq(sym.fields[name],
                          T.bv(value, sym.fields[name].width))
                     for name, value in sorted(instr.match.items())
                     if name in sym.fields]
            assumptions = validity + fixed
            seen: Set[Tuple[str, str, bytes]] = set()
            for path, kind, term, detail in sym.obligations:
                key = (kind, detail, T.digest(term))
                if key in seen:
                    continue
                seen.add(key)
                if kind == "reg-index":
                    for finding in self._check_index(
                            ctx, solver, instr, spec, path, term, detail,
                            assumptions):
                        yield finding
                elif kind == "div-by-zero":
                    for finding in self._check_division(
                            ctx, solver, instr, path, term, detail,
                            assumptions):
                        yield finding

    def _check_index(self, ctx: LintContext, solver, instr, spec, path,
                     index: T.Term, regfile: str,
                     assumptions: List[T.Term]) -> Iterable[Finding]:
        decl = spec.regfiles.get(regfile)
        if decl is None or decl.count >= (1 << index.width):
            return
        out_of_range = T.uge(index, T.bv(decl.count, index.width))
        query = list(assumptions) + list(path) + [out_of_range]
        if ctx.check(solver, query) == SAT:
            witness = T.evaluate(index, solver.model())
            yield self.finding(
                ctx, "register index into %r can reach %d, past the "
                "declared count %d (witness index %d)"
                % (regfile, witness, decl.count, witness),
                line=instr.line, instruction=instr.name,
                witness=witness)

    def _check_division(self, ctx: LintContext, solver, instr, path,
                        divisor_is_zero: T.Term, op: str,
                        assumptions: List[T.Term]) -> Iterable[Finding]:
        query = list(assumptions) + list(path) + [divisor_is_zero]
        if ctx.check(solver, query) == SAT:
            yield self.finding(
                ctx, "divisor of %r can be zero on a feasible path "
                "(SMT-LIB semantics apply: all-ones / identity); guard "
                "explicitly if that is not intended" % op,
                line=instr.line, instruction=instr.name, severity=INFO)
