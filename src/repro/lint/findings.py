"""Findings: what a lint pass reports.

A :class:`Finding` is one diagnostic with severity, spec-file provenance
(path + line), the instruction it concerns (when applicable), an optional
concrete *witness* (an encoding word or field assignment produced by an
SMT proof pass), and a stable :meth:`fingerprint` used by the baseline
suppression workflow.

Severities form a strict order: ``error`` findings gate CI (``repro lint``
exits 3 on any non-baselined error), ``warn`` findings are advisory, and
``info`` findings are observations (e.g. intentionally-undecodable opcode
space).
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Dict, List, Optional

__all__ = ["ERROR", "WARN", "INFO", "SEVERITIES", "severity_rank",
           "Finding", "PassTiming", "LintReport"]

ERROR = "error"
WARN = "warn"
INFO = "info"

#: All severities, most severe first.
SEVERITIES = (ERROR, WARN, INFO)

_RANK = {ERROR: 0, WARN: 1, INFO: 2}


def severity_rank(severity: str) -> int:
    """Lower is more severe; unknown severities sort last."""
    return _RANK.get(severity, len(_RANK))


class Finding:
    """One diagnostic produced by a lint pass."""

    __slots__ = ("pass_id", "severity", "message", "path", "line",
                 "instruction", "witness", "details")

    def __init__(self, pass_id: str, severity: str, message: str,
                 path: str = "", line: int = 0,
                 instruction: Optional[str] = None,
                 witness: Optional[int] = None,
                 details: Optional[Dict[str, Any]] = None):
        if severity not in _RANK:
            raise ValueError("unknown severity %r" % severity)
        self.pass_id = pass_id
        self.severity = severity
        self.message = message
        self.path = path
        self.line = line
        self.instruction = instruction
        self.witness = witness
        self.details = dict(details) if details else {}

    # -- identity -----------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable suppression key for the baseline workflow.

        Deliberately excludes the line number (so unrelated edits above a
        baselined finding do not un-suppress it) and the witness value
        (an incidental model choice); it keys on the pass, the spec file
        basename, the instruction, and a short hash of the message.
        """
        basename = os.path.basename(self.path) if self.path else ""
        digest = hashlib.sha256(self.message.encode("utf-8")).hexdigest()
        return "%s:%s:%s:%s" % (self.pass_id, basename,
                                self.instruction or "-", digest[:12])

    def sort_key(self):
        return (self.path, self.line, severity_rank(self.severity),
                self.pass_id, self.instruction or "", self.message)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "pass": self.pass_id,
            "severity": self.severity,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "fingerprint": self.fingerprint(),
        }
        if self.instruction is not None:
            record["instruction"] = self.instruction
        if self.witness is not None:
            record["witness"] = "%#x" % self.witness
        if self.details:
            record["details"] = dict(self.details)
        return record

    def location(self) -> str:
        where = self.path or "<spec>"
        if self.line:
            where += ":%d" % self.line
        return where

    def __repr__(self):
        return "<Finding %s %s %s %r>" % (self.severity, self.pass_id,
                                          self.location(), self.message)


class PassTiming:
    """Wall-time accounting for one executed pass."""

    __slots__ = ("pass_id", "seconds", "findings", "solver_seconds",
                 "solver_checks")

    def __init__(self, pass_id: str, seconds: float, findings: int,
                 solver_seconds: float = 0.0, solver_checks: int = 0):
        self.pass_id = pass_id
        self.seconds = seconds
        self.findings = findings
        self.solver_seconds = solver_seconds
        self.solver_checks = solver_checks

    def to_dict(self) -> Dict[str, Any]:
        return {"pass": self.pass_id, "seconds": round(self.seconds, 6),
                "findings": self.findings,
                "solver_seconds": round(self.solver_seconds, 6),
                "solver_checks": self.solver_checks}


class LintReport:
    """Everything one ``run_lint`` invocation produced for one spec."""

    def __init__(self, spec_name: str, path: str):
        self.spec_name = spec_name
        self.path = path
        self.findings: List[Finding] = []
        self.timings: List[PassTiming] = []
        self.passes_run: List[str] = []

    # -- aggregation --------------------------------------------------------

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings) -> None:
        for finding in findings:
            self.add(finding)

    def finalize(self) -> "LintReport":
        """Deterministic ordering: findings sort by location/severity."""
        self.findings.sort(key=Finding.sort_key)
        return self

    def by_severity(self) -> Dict[str, int]:
        counts = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.timings)

    def solver_seconds(self) -> float:
        return sum(t.solver_seconds for t in self.timings)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec_name,
            "path": self.path,
            "passes": list(self.passes_run),
            "counts": self.by_severity(),
            "findings": [f.to_dict() for f in self.findings],
            "timings": [t.to_dict() for t in self.timings],
        }

    def __repr__(self):
        counts = self.by_severity()
        return "<LintReport %s: %d error, %d warn, %d info>" % (
            self.spec_name, counts[ERROR], counts[WARN], counts[INFO])
