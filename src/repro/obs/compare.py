"""Run comparison: diff two recorded telemetry runs, flag regressions.

``repro diffstats A.telemetry.json B.telemetry.json`` makes the
benchmark sidecars actionable: A is the *baseline*, B the *candidate*,
and any throughput/latency metric that moved in the bad direction by
more than ``threshold`` (default 20%) is flagged as a regression.

Metric sources, in order of preference:

* the ``health`` event series (PR 4's live sampler): mean and final
  steps/sec, peak frontier, solver share;
* the ``run_summary`` meta record: wall time, instructions (and the
  derived instructions/sec), paths, defects, solver stats, phase
  totals;
* event counts per kind (informational).

Every metric carries a *direction*: ``higher`` is better (throughput,
cache hit ratios), ``lower`` is better (wall time, solver time), or
``info`` (counts that signal behavior change rather than a perf
regression — a defect-count difference is surfaced as ``changed``,
never as a regression percentage).

Works on schema v1/v2/v3 sidecars alike: anything a file does not
carry is simply not compared.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .events import HEALTH
from .sinks import RunFile

__all__ = ["MetricValue", "DiffRow", "RunComparison", "extract_metrics",
           "compare_runs", "DEFAULT_THRESHOLD"]

DEFAULT_THRESHOLD = 0.20

HIGHER = "higher"      # bigger is better (steps/sec, hit ratio)
LOWER = "lower"        # smaller is better (wall time, solve time)
INFO = "info"          # differences matter, but are not a perf axis


class MetricValue:
    """One comparable number plus its goodness direction."""

    __slots__ = ("name", "value", "direction")

    def __init__(self, name: str, value: float, direction: str):
        self.name = name
        self.value = value
        self.direction = direction

    def __repr__(self):
        return "<MetricValue %s=%s (%s)>" % (self.name, self.value,
                                             self.direction)


class DiffRow:
    """One compared metric across the two runs."""

    __slots__ = ("name", "a", "b", "direction", "delta_ratio", "flag")

    def __init__(self, name: str, a: float, b: float, direction: str,
                 delta_ratio: Optional[float], flag: str):
        self.name = name
        self.a = a
        self.b = b
        self.direction = direction
        # Relative change of B against A, signed toward "worse":
        # positive = B regressed, negative = B improved, None = no
        # baseline to compare against (A == 0) or info-only.
        self.delta_ratio = delta_ratio
        self.flag = flag        # "ok" | "regression" | "improvement"
        #                       | "changed" | "new" | "gone"

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "a": self.a, "b": self.b,
                "direction": self.direction,
                "delta_ratio": self.delta_ratio, "flag": self.flag}


def _summary(run: RunFile) -> Dict[str, object]:
    return run.run_summary() or {}


def extract_metrics(run: RunFile) -> Dict[str, MetricValue]:
    """Pull every comparable metric a run file carries."""
    metrics: Dict[str, MetricValue] = {}

    def put(name: str, value, direction: str) -> None:
        try:
            metrics[name] = MetricValue(name, float(value), direction)
        except (TypeError, ValueError):
            pass

    # -- health series (live sampler) -----------------------------------
    health_events = run.events_of(HEALTH)
    samples = [event.data.get("sample") for event in health_events]
    samples = [s for s in samples if isinstance(s, dict)]
    rates = [s.get("steps_per_sec") for s in samples
             if isinstance(s.get("steps_per_sec"), (int, float))]
    if rates:
        put("health.steps_per_sec.mean", sum(rates) / len(rates), HIGHER)
        put("health.steps_per_sec.final", rates[-1], HIGHER)
    frontiers = [s.get("frontier") for s in samples
                 if isinstance(s.get("frontier"), (int, float))]
    if frontiers:
        put("health.frontier.peak", max(frontiers), LOWER)
    shares = [(s.get("solver") or {}).get("share") for s in samples]
    shares = [v for v in shares if isinstance(v, (int, float))]
    if shares:
        put("health.solver_share.mean", sum(shares) / len(shares), LOWER)

    # -- run summary ------------------------------------------------------
    summary = _summary(run)
    wall = summary.get("wall_time")
    instructions = summary.get("instructions")
    if isinstance(wall, (int, float)) and wall > 0:
        put("run.wall_time_s", wall, LOWER)
        if isinstance(instructions, (int, float)):
            put("run.instructions_per_sec", instructions / wall, HIGHER)
    if isinstance(instructions, (int, float)):
        put("run.instructions", instructions, INFO)
    for key in ("paths", "defects"):
        if isinstance(summary.get(key), (int, float)):
            put("run.%s" % key, summary[key], INFO)
    telemetry = summary.get("telemetry") or {}
    solver = telemetry.get("solver") or {}
    if isinstance(solver.get("checks"), (int, float)):
        put("solver.checks", solver["checks"], LOWER)
    if isinstance(solver.get("solve_time"), (int, float)):
        put("solver.solve_time_s", solver["solve_time"], LOWER)
    checks = solver.get("checks") or 0
    if checks:
        cached = sum(float(solver.get(key, 0) or 0) for key in
                     ("cache_hit_sat", "cache_hit_unsat",
                      "cache_model_reuse", "cache_subsumed_unsat",
                      "frame_reuse"))
        put("solver.cache_hit_ratio", cached / checks, HIGHER)
    phases = telemetry.get("phases") or {}
    for name, stats in phases.items():
        total = (stats or {}).get("total_s")
        if isinstance(total, (int, float)):
            put("phase.%s.total_s" % name, total, LOWER)

    # -- event counts (informational) ------------------------------------
    by_kind: Dict[str, int] = {}
    for event in run.events:
        by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
    for kind, count in by_kind.items():
        put("events.%s" % kind, count, INFO)
    return metrics


class RunComparison:
    """The diff of two runs' metric sets."""

    def __init__(self, path_a: str, path_b: str, rows: List[DiffRow],
                 threshold: float):
        self.path_a = path_a
        self.path_b = path_b
        self.rows = rows
        self.threshold = threshold

    @property
    def regressions(self) -> List[DiffRow]:
        return [row for row in self.rows if row.flag == "regression"]

    @property
    def improvements(self) -> List[DiffRow]:
        return [row for row in self.rows if row.flag == "improvement"]

    def to_dict(self) -> Dict[str, object]:
        """The exact payload the exit-code logic sees — ``repro
        diffstats --json`` and CI consume this one format."""
        return {
            "baseline": self.path_a,
            "candidate": self.path_b,
            "threshold": self.threshold,
            "rows": [row.to_dict() for row in self.rows],
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
        }

    def report(self) -> str:
        """Human-readable comparison table."""
        lines = ["run comparison (threshold %.0f%%)"
                 % (100 * self.threshold),
                 "  A: %s" % self.path_a,
                 "  B: %s" % self.path_b,
                 "",
                 "  %-32s %14s %14s %9s  %s"
                 % ("metric", "A", "B", "delta", "flag"),
                 "  " + "-" * 78]
        for row in self.rows:
            if row.delta_ratio is None:
                delta = "-"
            else:
                # Render as raw relative change of B vs A (signed by
                # value, not by badness) for readability.
                raw = (row.b - row.a) / row.a if row.a else 0.0
                delta = "%+.1f%%" % (100 * raw)
            flag = "" if row.flag == "ok" else row.flag.upper()
            lines.append("  %-32s %14.6g %14.6g %9s  %s"
                         % (row.name, row.a, row.b, delta, flag))
        lines.append("")
        lines.append("  regressions: %d   improvements: %d   compared: %d"
                     % (len(self.regressions), len(self.improvements),
                        len(self.rows)))
        return "\n".join(lines)


def compare_runs(run_a: RunFile, run_b: RunFile,
                 threshold: float = DEFAULT_THRESHOLD) -> RunComparison:
    """Diff the metric sets of two loaded runs (A = baseline)."""
    metrics_a = extract_metrics(run_a)
    metrics_b = extract_metrics(run_b)
    rows: List[DiffRow] = []
    for name in sorted(set(metrics_a) | set(metrics_b)):
        in_a, in_b = metrics_a.get(name), metrics_b.get(name)
        if in_a is None:
            rows.append(DiffRow(name, 0.0, in_b.value, in_b.direction,
                                None, "new"))
            continue
        if in_b is None:
            rows.append(DiffRow(name, in_a.value, 0.0, in_a.direction,
                                None, "gone"))
            continue
        direction = in_a.direction
        a, b = in_a.value, in_b.value
        if direction == INFO:
            flag = "ok" if a == b else "changed"
            rows.append(DiffRow(name, a, b, direction, None, flag))
            continue
        if a == 0:
            rows.append(DiffRow(name, a, b, direction, None,
                                "ok" if b == 0 else "changed"))
            continue
        raw = (b - a) / a
        # Signed toward "worse": positive means B is worse than A.
        worse = -raw if direction == HIGHER else raw
        if worse >= threshold:
            flag = "regression"
        elif worse <= -threshold:
            flag = "improvement"
        else:
            flag = "ok"
        rows.append(DiffRow(name, a, b, direction, worse, flag))
    return RunComparison(run_a.path, run_b.path, rows, threshold)
