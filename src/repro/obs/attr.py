"""Rule-level cost attribution: *which* spec rules pay for the run.

The phase profiler (:mod:`repro.obs.profile`) answers "how much time
goes to ``eval`` vs ``solver``"; this module answers the porter's next
question — *which ADL semantic rules, IR node kinds and branch sites*
that time is spent on.  Costs are charged at three granularities:

* **rules** — every executed instruction is attributed to its semantic
  rule (the ``instruction`` block, via the
  :class:`~repro.adl.translate.RuleProvenance` table the translator
  threads into the :class:`~repro.isa.model.ArchModel`), accumulating
  evaluation wall time, solver check time, cache hits/misses, forks and
  term-pool allocations per rule;
* **IR node kinds** — inside a *deep* step the engine's recursive
  ``_eval`` is probed, so ``BinOp:add`` vs ``Load`` vs ``IteExpr`` get
  their own inclusive/self timings (self time excludes nested kinds and
  solver work, profiler-style);
* **branch sites** — solver time is blamed on the guest pc that issued
  the query, so one hot branch shows up as one hot address.

**Sampling.**  Rule-level charging (steps, eval time, solver time,
forks) happens on *every* step — two clock reads — so rule totals
reconcile with the phase profiler in every mode.  The expensive parts
(per-IR-node probing, term-pool deltas) run only on every
``sample_every``-th step ("deep" steps); ``mode="full"`` makes every
step deep.

**Reconciliation contract** (pinned by ``tests/obs/test_attr.py``):
with the profiler enabled, attribution's eval/solver *call counts*
equal the ``eval``/``solver`` phase call counts exactly, and the
attributed times agree within 5% — the attribution window encloses the
phase scope, so attr time is a hair larger, never smaller.

The :meth:`CostAttribution.snapshot` dict is the wire format: it rides
in ``result.telemetry["attr"]`` (schema-v5 sidecar ``run_summary``
blocks), is persisted as ``attr.json`` in the run store, and is what
the offline renderers (:func:`hot_report`,
:func:`annotate_spec_costs`, :mod:`repro.obs.flame`) and the
``repro hot`` CLI consume.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..ir import nodes as N

__all__ = ["AttrConfig", "CostAttribution", "ATTR_SCHEMA_VERSION",
           "hot_report", "hot_rules_lines", "annotate_spec_costs",
           "ir_kind"]

#: Version of the ``attr`` snapshot block (independent of the event
#: schema version; bumped when the block's shape changes).
ATTR_SCHEMA_VERSION = 1

#: Pseudo-rule charged for solver work issued outside any instruction
#: (e.g. a feasibility probe before the first step).
ENGINE_BUCKET = "(engine)"


class AttrConfig:
    """Tunables for cost attribution (observe-only; never serialized
    into the run-store key — attribution must not change outcomes)."""

    MODES = ("sampled", "full")

    def __init__(self, mode: str = "sampled", sample_every: int = 16):
        if mode not in self.MODES:
            raise ValueError("attr mode must be one of %r, got %r"
                             % (self.MODES, mode))
        self.mode = mode
        # In full mode every step is deep; sampled mode probes every
        # Nth step (N >= 1) so the always-on overhead stays bounded.
        self.sample_every = 1 if mode == "full" else max(1, int(sample_every))


def ir_kind(expr) -> str:
    """Attribution label for one IR expression node.  ``BinOp``/``UnOp``
    carry their operator so ``BinOp:add`` and ``BinOp:udiv`` separate."""
    name = expr.__class__.__name__
    if isinstance(expr, (N.BinOp, N.UnOp)):
        return "%s:%s" % (name, expr.op)
    return name


class _IrCost:
    """Per-(rule, IR kind) timing: calls, inclusive, self."""

    __slots__ = ("calls", "total", "self_time")

    def __init__(self):
        self.calls = 0
        self.total = 0.0
        self.self_time = 0.0


class _RuleCost:
    """Everything charged to one semantic rule."""

    __slots__ = ("steps", "eval_s", "solver_s", "solver_checks",
                 "cache_hits", "cache_misses", "forks", "term_allocs",
                 "ir", "solver_by_ir")

    def __init__(self):
        self.steps = 0
        self.eval_s = 0.0
        self.solver_s = 0.0
        self.solver_checks = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.forks = 0
        self.term_allocs = 0
        self.ir: Dict[str, _IrCost] = {}
        self.solver_by_ir: Dict[str, float] = {}


class _SiteCost:
    """Costs blamed on one guest pc (branch/query site)."""

    __slots__ = ("rule", "steps", "solver_s", "solver_checks",
                 "cache_hits", "forks")

    def __init__(self, rule: str):
        self.rule = rule
        self.steps = 0
        self.solver_s = 0.0
        self.solver_checks = 0
        self.cache_hits = 0
        self.forks = 0


class CostAttribution:
    """The live accumulator the engine and solver charge into.

    Wired by :class:`~repro.core.executor.Engine` (context + eval/fork
    charges) and :meth:`~repro.smt.solver.Solver.attach_attr` (solver
    charges).  Like the profiler it accumulates over the engine's
    lifetime; one ``explore()`` per engine (the common case) makes the
    snapshot per-exploration.
    """

    def __init__(self, config: Optional[AttrConfig] = None, model=None,
                 metrics=None):
        self.config = config if config is not None else AttrConfig()
        self.isa = getattr(model, "name", "?")
        self._provenance = dict(getattr(model, "rules", None) or {})
        self._source = getattr(model, "source_path", None)
        self.rules: Dict[str, _RuleCost] = {}
        self.sites: Dict[int, _SiteCost] = {}
        self.steps = 0
        self.deep_steps = 0
        # Running totals (the reconcile side of the ledger).
        self.eval_calls = 0
        self.eval_s = 0.0
        self.solver_checks = 0
        self.solver_s = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.forks = 0
        # Current step context (rule name + pc) and deep-step state.
        self._rule = ENGINE_BUCKET
        self._pc: Optional[int] = None
        self._rule_cost = self._rule_for(ENGINE_BUCKET)
        self._site_cost: Optional[_SiteCost] = None
        self.deep = False
        self._ir_stack: List[list] = []   # [kind, start, child_time]
        self._pool = None                 # bound lazily (term pool)
        self._pool_mark = 0
        # attr.* metrics (rendered by repro.obs.prom like every other
        # metric); NULL objects when metrics are off.
        from .metrics import NULL_COUNTER, NULL_HISTOGRAM
        self._h_eval = NULL_HISTOGRAM
        self._h_solver = NULL_HISTOGRAM
        self._c_steps = NULL_COUNTER
        self._c_deep = NULL_COUNTER
        if metrics is not None:
            self._h_eval = metrics.histogram("attr.step_eval_ms")
            self._h_solver = metrics.histogram("attr.solver_ms")
            self._c_steps = metrics.counter("attr.steps")
            self._c_deep = metrics.counter("attr.deep_steps")

    # -- engine-side charging ------------------------------------------------

    def _rule_for(self, name: str) -> _RuleCost:
        cost = self.rules.get(name)
        if cost is None:
            cost = self.rules[name] = _RuleCost()
        return cost

    def begin_step(self, rule: str, pc: int) -> bool:
        """Set the (rule, pc) context for one instruction; returns
        whether this step is *deep* (per-IR-node probing on)."""
        self.steps += 1
        self._c_steps.inc()
        self._rule = rule
        self._pc = pc
        cost = self._rule_for(rule)
        cost.steps += 1
        self._rule_cost = cost
        site = self.sites.get(pc)
        if site is None:
            site = self.sites[pc] = _SiteCost(rule)
        site.steps += 1
        self._site_cost = site
        deep = (self.steps - 1) % self.config.sample_every == 0
        self.deep = deep
        if deep:
            self.deep_steps += 1
            self._c_deep.inc()
            if self._pool is None:
                from ..smt import terms as T
                self._pool = T.get_pool()
            self._pool_mark = self._pool.misses
            del self._ir_stack[:]
        return deep

    def end_step(self, elapsed: float) -> None:
        """Charge one instruction's evaluation wall time (every step —
        this is what reconciles with the ``eval`` phase)."""
        self.eval_calls += 1
        self.eval_s += elapsed
        self._rule_cost.eval_s += elapsed
        if self.deep:
            self._rule_cost.term_allocs += \
                self._pool.misses - self._pool_mark
            self._h_eval.observe(elapsed * 1000.0)
            self.deep = False
            del self._ir_stack[:]

    def on_fork(self, count: int) -> None:
        self.forks += count
        self._rule_cost.forks += count
        site = self._site_cost
        if site is not None:
            site.forks += count

    # -- IR probing (deep steps only) ----------------------------------------

    def ir_enter(self, kind: str) -> None:
        self._ir_stack.append([kind, time.perf_counter(), 0.0])

    def ir_exit(self) -> None:
        kind, start, child = self._ir_stack.pop()
        elapsed = time.perf_counter() - start
        table = self._rule_cost.ir
        cost = table.get(kind)
        if cost is None:
            cost = table[kind] = _IrCost()
        cost.calls += 1
        cost.total += elapsed
        cost.self_time += elapsed - child
        if self._ir_stack:
            self._ir_stack[-1][2] += elapsed

    # -- solver-side charging (Solver.attach_attr) ---------------------------

    def on_solver_check(self, elapsed: float, result: str) -> None:
        """One *solved* query (cache answers go through
        :meth:`on_solver_cache` instead, mirroring the profiler's
        accounting contract)."""
        self.solver_checks += 1
        self.solver_s += elapsed
        cost = self._rule_cost
        cost.solver_checks += 1
        cost.solver_s += elapsed
        site = self._site_cost
        if site is not None:
            site.solver_checks += 1
            site.solver_s += elapsed
        if self._ir_stack:
            frame = self._ir_stack[-1]
            # Solver time inside an IR frame is the frame's child time,
            # so IR self time stays pure interpretation.
            frame[2] += elapsed
            kind = frame[0]
            cost.solver_by_ir[kind] = \
                cost.solver_by_ir.get(kind, 0.0) + elapsed
        self._h_solver.observe(elapsed * 1000.0)

    def on_solver_cache(self, layer: str) -> None:
        self.cache_hits += 1
        self._rule_cost.cache_hits += 1
        site = self._site_cost
        if site is not None:
            site.cache_hits += 1

    def on_cache_miss(self) -> None:
        self.cache_misses += 1
        self._rule_cost.cache_misses += 1

    # -- snapshot -------------------------------------------------------------

    def snapshot(self, profiler=None) -> Dict[str, object]:
        """The JSON-able ``attr`` block (see module docstring).

        ``profiler`` (a :class:`~repro.obs.profile.PhaseProfiler`)
        contributes the ``reconcile`` section comparing attribution
        totals against the ``eval``/``solver`` phase totals.
        """
        rules: Dict[str, Dict[str, object]] = {}
        for name, cost in self.rules.items():
            if cost.steps == 0 and cost.solver_checks == 0 \
                    and cost.cache_hits == 0:
                continue
            entry: Dict[str, object] = {
                "steps": cost.steps,
                "eval_s": cost.eval_s,
                "solver_s": cost.solver_s,
                "solver_checks": cost.solver_checks,
                "cache_hits": cost.cache_hits,
                "cache_misses": cost.cache_misses,
                "forks": cost.forks,
                "term_allocs": cost.term_allocs,
            }
            rule = self._provenance.get(name)
            if rule is not None:
                entry["mnemonic"] = rule.mnemonic
                entry["lines"] = [rule.line_lo, rule.line_hi]
            if cost.ir:
                entry["ir"] = {
                    kind: {"calls": ir.calls, "total_s": ir.total,
                           "self_s": ir.self_time}
                    for kind, ir in sorted(cost.ir.items())}
            if cost.solver_by_ir:
                entry["solver_by_ir"] = dict(sorted(
                    cost.solver_by_ir.items()))
            rules[name] = entry
        ir_rollup: Dict[str, Dict[str, float]] = {}
        for cost in self.rules.values():
            for kind, ir in cost.ir.items():
                agg = ir_rollup.setdefault(
                    kind, {"calls": 0, "total_s": 0.0, "self_s": 0.0,
                           "solver_s": 0.0})
                agg["calls"] += ir.calls
                agg["total_s"] += ir.total
                agg["self_s"] += ir.self_time
            for kind, seconds in cost.solver_by_ir.items():
                agg = ir_rollup.setdefault(
                    kind, {"calls": 0, "total_s": 0.0, "self_s": 0.0,
                           "solver_s": 0.0})
                agg["solver_s"] += seconds
        sites = {
            "%#x" % pc: {"rule": site.rule, "steps": site.steps,
                         "solver_s": site.solver_s,
                         "solver_checks": site.solver_checks,
                         "cache_hits": site.cache_hits,
                         "forks": site.forks}
            for pc, site in sorted(self.sites.items())
            if site.solver_checks or site.forks or site.cache_hits}
        block: Dict[str, object] = {
            "version": ATTR_SCHEMA_VERSION,
            "isa": self.isa,
            "source": self._source,
            "mode": self.config.mode,
            "sample_every": self.config.sample_every,
            "steps": self.steps,
            "deep_steps": self.deep_steps,
            "eval_calls": self.eval_calls,
            "eval_s": self.eval_s,
            "solver_checks": self.solver_checks,
            "solver_s": self.solver_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "forks": self.forks,
            "rules": dict(sorted(rules.items())),
            "ir": dict(sorted(ir_rollup.items())),
            "sites": sites,
        }
        if profiler is not None and getattr(profiler, "enabled", False):
            phases = profiler.snapshot()
            block["reconcile"] = {
                "eval": {
                    "attr_calls": self.eval_calls,
                    "phase_calls": phases.get("eval", {}).get("calls", 0),
                    "attr_s": self.eval_s,
                    "phase_s": phases.get("eval", {}).get("total_s", 0.0),
                },
                "solver": {
                    "attr_calls": self.solver_checks,
                    "phase_calls": phases.get("solver", {}).get("calls", 0),
                    "attr_s": self.solver_s,
                    "phase_s": phases.get("solver", {}).get("total_s", 0.0),
                },
            }
        return block

    def report(self, top: int = 10) -> str:
        return hot_report(self.snapshot(), top=top)

    def __repr__(self):
        return ("<CostAttribution %s steps=%d rules=%d solver=%.4fs>"
                % (self.isa, self.steps, len(self.rules), self.solver_s))


# -- offline rendering (operates on snapshot dicts) ---------------------------


def _rule_rows(block: Dict[str, object]) -> List[dict]:
    """Flatten a snapshot's rule table into rows with cost shares.

    Tolerant of malformed input: a non-dict block or rules table yields
    no rows (degenerate sidecars must never traceback)."""
    if not isinstance(block, dict):
        return []
    rules = block.get("rules")
    if not isinstance(rules, dict):
        return []
    total = 0.0
    rows = []
    for name, entry in rules.items():
        if not isinstance(entry, dict):
            continue
        eval_s = float(entry.get("eval_s", 0.0) or 0.0)
        solver_s = float(entry.get("solver_s", 0.0) or 0.0)
        cost = eval_s + solver_s
        total += cost
        rows.append({
            "rule": str(name),
            "mnemonic": str(entry.get("mnemonic", "?")),
            "lines": entry.get("lines"),
            "steps": int(entry.get("steps", 0) or 0),
            "eval_s": eval_s,
            "solver_s": solver_s,
            "solver_checks": int(entry.get("solver_checks", 0) or 0),
            "cache_hits": int(entry.get("cache_hits", 0) or 0),
            "forks": int(entry.get("forks", 0) or 0),
            "term_allocs": int(entry.get("term_allocs", 0) or 0),
            "cost_s": cost,
        })
    for row in rows:
        row["share"] = row["cost_s"] / total if total > 0 else 0.0
    rows.sort(key=lambda row: (-row["cost_s"], row["rule"]))
    return rows


def hot_rules_lines(block, top: int = 5,
                    min_share: float = 0.0) -> List[str]:
    """The "hottest rules" table as lines, or ``[]`` when the block is
    missing/degenerate (``repro stats`` renders these verbatim)."""
    rows = [row for row in _rule_rows(block)
            if row["share"] >= min_share][:max(0, top)]
    if not rows:
        return []
    lines = ["  %-14s %-8s %7s %9s %9s %7s %6s %6s"
             % ("rule", "mnemonic", "steps", "eval", "solver",
                "checks", "forks", "share"),
             "  " + "-" * 72]
    for row in rows:
        lines.append("  %-14s %-8s %7d %8.2fms %8.2fms %7d %6d %5.1f%%"
                     % (row["rule"], row["mnemonic"], row["steps"],
                        row["eval_s"] * 1e3, row["solver_s"] * 1e3,
                        row["solver_checks"], row["forks"],
                        100.0 * row["share"]))
    return lines


def hot_report(block, top: int = 10, min_share: float = 0.0) -> str:
    """Human-readable cost report for one ``attr`` snapshot block."""
    if not isinstance(block, dict) or not isinstance(
            block.get("rules"), dict):
        return "attr: no attribution block (run with --attr)"
    header = ("== cost attribution: %s (mode=%s, %s/%s steps deep) =="
              % (block.get("isa", "?"), block.get("mode", "?"),
                 block.get("deep_steps", 0), block.get("steps", 0)))
    lines = [header,
             "total: eval %.2fms  solver %.2fms over %s checks "
             "(%s cache hits, %s forks)"
             % (float(block.get("eval_s", 0.0)) * 1e3,
                float(block.get("solver_s", 0.0)) * 1e3,
                block.get("solver_checks", 0),
                block.get("cache_hits", 0), block.get("forks", 0))]
    table = hot_rules_lines(block, top=top, min_share=min_share)
    if table:
        lines.append("hottest rules:")
        lines.extend(table)
    ir = block.get("ir")
    if isinstance(ir, dict) and ir:
        rows = sorted(((kind, entry) for kind, entry in ir.items()
                       if isinstance(entry, dict)),
                      key=lambda kv: -(float(kv[1].get("self_s", 0.0))
                                       + float(kv[1].get("solver_s",
                                                         0.0))))
        lines.append("hottest IR kinds (deep-step sample):")
        lines.append("  %-16s %8s %9s %9s %9s"
                     % ("kind", "calls", "total", "self", "solver"))
        for kind, entry in rows[:max(0, top)]:
            lines.append("  %-16s %8d %8.2fms %8.2fms %8.2fms"
                         % (kind, int(entry.get("calls", 0)),
                            float(entry.get("total_s", 0.0)) * 1e3,
                            float(entry.get("self_s", 0.0)) * 1e3,
                            float(entry.get("solver_s", 0.0)) * 1e3))
    sites = block.get("sites")
    if isinstance(sites, dict) and sites:
        def _site_cost(item):
            entry = item[1]
            return -(float(entry.get("solver_s", 0.0) or 0.0))
        rows = sorted(((pc, entry) for pc, entry in sites.items()
                       if isinstance(entry, dict)), key=_site_cost)
        lines.append("hottest branch sites (solver blame):")
        lines.append("  %-10s %-14s %9s %7s %6s %6s"
                     % ("pc", "rule", "solver", "checks", "hits",
                        "forks"))
        for pc, entry in rows[:max(0, top)]:
            lines.append("  %-10s %-14s %8.2fms %7d %6d %6d"
                         % (pc, entry.get("rule", "?"),
                            float(entry.get("solver_s", 0.0)) * 1e3,
                            int(entry.get("solver_checks", 0) or 0),
                            int(entry.get("cache_hits", 0) or 0),
                            int(entry.get("forks", 0) or 0)))
    reconcile = block.get("reconcile")
    if isinstance(reconcile, dict):
        for phase in ("eval", "solver"):
            entry = reconcile.get(phase)
            if isinstance(entry, dict):
                lines.append(
                    "reconcile %-6s attr %s calls / %.2fms vs phase "
                    "%s calls / %.2fms"
                    % (phase, entry.get("attr_calls"),
                       float(entry.get("attr_s", 0.0)) * 1e3,
                       entry.get("phase_calls"),
                       float(entry.get("phase_s", 0.0)) * 1e3))
    return "\n".join(lines)


def annotate_spec_costs(block, source_path: Optional[str] = None) -> str:
    """The ADL source with per-line *cost shares* in the margin — the
    heat-map twin of ``speccov``'s annotated coverage view.

    Lines of a rule that consumed cost carry its share of total
    attributed cost (eval + solver); zero-cost rules are flagged ``.``;
    structural lines stay blank.  ``source_path`` falls back to the
    path recorded in the snapshot, then to the built ISA model's.
    """
    if not isinstance(block, dict) or not isinstance(
            block.get("rules"), dict):
        raise ValueError("not an attribution block")
    path = source_path or block.get("source")
    if not path:
        from ..isa.model import build
        path = build(str(block.get("isa"))).source_path
    if not path:
        raise ValueError("no spec source path recorded for %r"
                         % block.get("isa"))
    with open(path) as handle:
        source_lines = handle.read().splitlines()
    shares: Dict[str, float] = {
        row["rule"]: row["share"] for row in _rule_rows(block)}
    spans: Dict[str, tuple] = {}
    for name, entry in block["rules"].items():
        lines = entry.get("lines") if isinstance(entry, dict) else None
        if isinstance(lines, (list, tuple)) and len(lines) == 2:
            spans[str(name)] = (int(lines[0]), int(lines[1]))
    # Fall back to the model's provenance table for rules whose spans
    # were not serialized (older snapshots).
    missing = [name for name in shares if name not in spans]
    if missing:
        try:
            from ..isa.model import build
            provenance = build(str(block.get("isa"))).rules
        except Exception:
            provenance = {}
        for name in missing:
            rule = provenance.get(name)
            if rule is not None:
                spans[name] = (rule.line_lo, rule.line_hi)
    margin: Dict[int, str] = {}
    for name, (lo, hi) in sorted(spans.items()):
        share = shares.get(name, 0.0)
        tag = "%6.2f%% " % (100.0 * share) if share > 0 else "      . "
        for line in range(lo, hi + 1):
            margin.setdefault(line, tag)
    out = ["# spec cost heat map: %s" % block.get("isa", "?"),
           "# margin: share of attributed cost (eval+solver) | "
           "'.' = executed rule with ~zero cost",
           ""]
    for number, text in enumerate(source_lines, 1):
        out.append("%s|%s" % (margin.get(number, " " * 8), text))
    return "\n".join(out)
