"""Prometheus-style text exposition of the metrics registry.

Two consumers:

* ``repro metrics RUN.jsonl --prom`` renders the metrics section of a
  saved run summary (the ``--telemetry-out`` sidecar) in the Prometheus
  text format, so a recorded run can be pushed into any
  Prometheus-compatible pipeline (pushgateway, textfile collector).
* ``repro explore ... --serve-metrics PORT`` serves the engine's *live*
  registry at ``http://127.0.0.1:PORT/metrics`` from a stdlib
  ``http.server`` daemon thread while exploration runs — scrape it to
  watch a long run from Grafana without touching the engine.

Only the standard library is used; there is no prometheus_client
dependency.  The exposition follows the text format conventions:

* metric names are sanitized (dots and dashes become underscores) and
  prefixed with a namespace (default ``repro``),
* counters get a ``_total`` suffix and ``# TYPE ... counter``,
* gauges are emitted verbatim with ``# TYPE ... gauge``,
* histograms become Prometheus *summaries*: ``_count``, ``_sum`` and
  ``{quantile="0.5|0.9|0.99"}`` sample lines.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, List, Optional

__all__ = ["render_prom", "render_prom_snapshot", "MetricsServer"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    """Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*."""
    cleaned = _NAME_RE.sub("_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    try:
        number = float(value)
    except (TypeError, ValueError):
        return "0"
    return repr(number)


def render_prom_snapshot(snapshot: Dict[str, object],
                         namespace: str = "repro") -> str:
    """Render a ``MetricsRegistry.snapshot()``-shaped dict (also the
    ``metrics`` section of a saved run summary) as Prometheus text."""
    lines: List[str] = []
    counters = snapshot.get("counters") or {}
    for name in sorted(counters):
        metric = "%s_%s_total" % (namespace, _sanitize(name))
        lines.append("# TYPE %s counter" % metric)
        lines.append("%s %s" % (metric, _fmt(counters[name])))
    gauges = snapshot.get("gauges") or {}
    for name in sorted(gauges):
        metric = "%s_%s" % (namespace, _sanitize(name))
        lines.append("# TYPE %s gauge" % metric)
        lines.append("%s %s" % (metric, _fmt(gauges[name])))
    histograms = snapshot.get("histograms") or {}
    for name in sorted(histograms):
        stats = histograms[name] or {}
        metric = "%s_%s" % (namespace, _sanitize(name))
        lines.append("# TYPE %s summary" % metric)
        for quantile, key in (("0.5", "p50"), ("0.9", "p90"),
                              ("0.99", "p99")):
            lines.append('%s{quantile="%s"} %s'
                         % (metric, quantile, _fmt(stats.get(key, 0.0))))
        lines.append("%s_sum %s" % (metric, _fmt(stats.get("sum", 0.0))))
        lines.append("%s_count %s" % (metric,
                                      _fmt(stats.get("count", 0))))
    return "\n".join(lines) + ("\n" if lines else "")


def render_prom(registry, namespace: str = "repro") -> str:
    """Render a live :class:`~repro.obs.metrics.MetricsRegistry`."""
    return render_prom_snapshot(registry.snapshot(), namespace=namespace)


class MetricsServer:
    """Serves ``/metrics`` from a live registry on a daemon thread.

    Stdlib-only (``http.server``); binds 127.0.0.1 by default.  Pass
    ``port=0`` to let the OS pick (the bound port is then available as
    :attr:`port` — handy for tests).  The thread is a daemon, so a
    finishing process never hangs on it; call :meth:`close` for a
    deterministic shutdown.
    """

    def __init__(self, registry, port: int = 0,
                 host: str = "127.0.0.1", namespace: str = "repro"):
        from http.server import BaseHTTPRequestHandler, HTTPServer

        server_registry = registry
        server_namespace = namespace

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self):                       # noqa: N802 (stdlib API)
                if self.path.rstrip("/") not in ("", "/metrics",
                                                 "/healthz"):
                    self.send_error(404)
                    return
                if self.path.rstrip("/") == "/healthz":
                    body = b"ok\n"
                    content_type = "text/plain"
                else:
                    body = render_prom(
                        server_registry,
                        namespace=server_namespace).encode()
                    content_type = "text/plain; version=0.0.4"
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *_args):
                pass  # stay silent; this rides inside a CLI run

        self._server = HTTPServer((host, port), _Handler)
        self.host = host
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server", daemon=True)
        self._thread.start()

    @property
    def url(self) -> str:
        return "http://%s:%d/metrics" % (self.host, self.port)

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
