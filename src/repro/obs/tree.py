"""Flight recorder: reconstruct the execution tree from an event stream.

The telemetry layer (PR 1) made explorations *countable*; this module
makes them *replayable as structure*.  Consuming the ``step`` / ``fork``
/ ``merge`` / ``path_end`` / ``defect`` / ``prune`` event stream — live
via the :class:`FlightRecorder` sink, or offline from a saved
``--telemetry-out`` JSONL file — it rebuilds the state-lineage tree of a
run:

* one :class:`TreeNode` per engine state id, with its pc range and step
  count,
* one edge per fork child, labelled with the branch-condition summary
  the engine recorded on the ``fork`` event,
* merge links (DAG edges) for states combined by the merging frontier,
* terminal status per node: how the path ended (``halted`` /
  ``depth-limit`` / ``loop-limit``), was pruned, or was merged away —
  plus any defects filed while the state ran.

The reconstruction is *exact* with respect to the run that produced the
events: leaves with a ``path_end`` status correspond one-to-one to
``ExplorationResult.paths`` and the defect set matches
``ExplorationResult.defects`` (asserted in ``tests/obs/test_tree.py``).

Renderers: :meth:`ExecutionTree.to_ascii` (terminal),
:meth:`ExecutionTree.to_dot` (Graphviz) and :meth:`ExecutionTree.to_json`
(machine-readable), surfaced by the ``repro tree`` subcommand.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from .events import (DEFECT, FORK, MERGE, PATH_END, PRUNE, SCHEMA_VERSION,
                     STEP, Event)

__all__ = ["TreeNode", "TreeEdge", "ExecutionTree", "FlightRecorder"]


class TreeEdge:
    """One parent -> child link in the execution tree."""

    __slots__ = ("parent", "child", "kind", "pc", "cond")

    def __init__(self, parent: int, child: int, kind: str, pc: int,
                 cond: str = ""):
        self.parent = parent
        self.child = child
        self.kind = kind            # 'fork' | 'indirect' | 'merge'
        self.pc = pc                # where the split/merge happened
        self.cond = cond            # branch-condition summary ('' if none)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {"parent": self.parent,
                                     "child": self.child,
                                     "kind": self.kind, "pc": self.pc}
        if self.cond:
            record["cond"] = self.cond
        return record

    def __repr__(self):
        return "<TreeEdge %d->%d %s @ %#x>" % (self.parent, self.child,
                                               self.kind, self.pc)


class TreeNode:
    """One engine state's lifetime: pc range, steps, how it ended."""

    __slots__ = ("state_id", "parent", "first_pc", "last_pc", "min_pc",
                 "max_pc", "steps", "status", "exit_code", "defects",
                 "merged_from", "merged_into", "children", "prune_reason")

    def __init__(self, state_id: int):
        self.state_id = state_id
        self.parent: Optional[int] = None
        self.first_pc: Optional[int] = None
        self.last_pc: Optional[int] = None
        self.min_pc: Optional[int] = None
        self.max_pc: Optional[int] = None
        self.steps = 0
        # 'live' until a terminal event arrives; then one of the
        # path_end statuses, 'pruned', or 'merged'.
        self.status = "live"
        self.exit_code: Optional[int] = None
        self.defects: List[Tuple[str, int]] = []     # (kind, pc)
        self.merged_from: List[int] = []
        self.merged_into: Optional[int] = None
        self.children: List[int] = []
        # Why a 'pruned' node died: 'max-states', 'trap', 'oob-store',
        # 'decode-error', ... (the engine's _PathEnd reasons).
        self.prune_reason: Optional[str] = None

    @property
    def ended(self) -> bool:
        """True when this node finished as a recorded path."""
        return self.status not in ("live", "pruned", "merged")

    def record_step(self, pc: int) -> None:
        self.steps += 1
        if self.first_pc is None:
            self.first_pc = pc
            self.min_pc = self.max_pc = pc
        else:
            self.min_pc = min(self.min_pc, pc)
            self.max_pc = max(self.max_pc, pc)
        self.last_pc = pc

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "id": self.state_id, "status": self.status,
            "steps": self.steps,
        }
        if self.parent is not None:
            record["parent"] = self.parent
        if self.first_pc is not None:
            record["pc"] = {"first": self.first_pc, "last": self.last_pc,
                            "min": self.min_pc, "max": self.max_pc}
        if self.exit_code is not None:
            record["exit_code"] = self.exit_code
        if self.defects:
            record["defects"] = [{"kind": kind, "pc": pc}
                                 for kind, pc in self.defects]
        if self.merged_from:
            record["merged_from"] = list(self.merged_from)
        if self.merged_into is not None:
            record["merged_into"] = self.merged_into
        if self.prune_reason is not None:
            record["prune_reason"] = self.prune_reason
        return record

    def label(self) -> str:
        """Short human-readable node description."""
        parts = ["s%d" % self.state_id]
        if self.first_pc is not None:
            if self.first_pc == self.last_pc and self.steps <= 1:
                parts.append("pc %#x" % self.first_pc)
            else:
                parts.append("pc %#x..%#x" % (self.first_pc, self.last_pc))
            parts.append("%d step%s" % (self.steps,
                                        "s" if self.steps != 1 else ""))
        status = self.status
        if self.exit_code is not None:
            status += "(%d)" % self.exit_code
        elif self.status == "pruned" and self.prune_reason:
            status += "(%s)" % self.prune_reason
        parts.append(status)
        for kind, pc in self.defects:
            parts.append("!%s@%#x" % (kind, pc))
        return " ".join(parts)

    def __repr__(self):
        return "<TreeNode %s>" % self.label()


class ExecutionTree:
    """The reconstructed state-lineage tree of one exploration."""

    def __init__(self, isa: str = "?"):
        self.isa = isa
        self.nodes: Dict[int, TreeNode] = {}
        self.edges: List[TreeEdge] = []
        self.events_consumed = 0
        # (parent, child) -> lineage edge, for dedup/enrichment: a prune
        # event's bare parent hint can precede the fork event that
        # carries the branch condition for the same pair.
        self._lineage: Dict[Tuple[int, int], TreeEdge] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "ExecutionTree":
        tree = cls()
        for event in events:
            tree.consume(event)
        return tree

    @classmethod
    def from_jsonl(cls, path: str) -> Tuple["ExecutionTree", List[str]]:
        """Rebuild a tree from a saved run file; returns (tree, reader
        warnings).  Raises :class:`~repro.obs.sinks.TelemetryError` on
        missing/empty/unparseable files."""
        from .sinks import load_run
        run = load_run(path)
        return cls.from_events(run.events), run.warnings

    def node(self, state_id: int) -> TreeNode:
        existing = self.nodes.get(state_id)
        if existing is None:
            existing = self.nodes[state_id] = TreeNode(state_id)
        return existing

    def consume(self, event: Event) -> None:
        """Fold one event into the tree (order-tolerant: a child's
        terminal event may arrive before the fork that names it)."""
        kind = event.kind
        if kind == STEP:
            if self.isa == "?":
                self.isa = event.isa
            self.node(event.state_id).record_step(event.pc)
        elif kind == FORK:
            self._consume_fork(event)
        elif kind == MERGE:
            self._consume_merge(event)
        elif kind == PATH_END:
            node = self.node(event.state_id)
            node.status = str(event.data.get("status", "halted"))
            code = event.data.get("exit_code")
            node.exit_code = code if isinstance(code, int) else None
        elif kind == DEFECT:
            self.node(event.state_id).defects.append(
                (str(event.data.get("defect_kind", "?")), event.pc))
        elif kind == PRUNE:
            node = self.node(event.state_id)
            if node.status == "live":
                node.status = "pruned"
                node.prune_reason = str(event.data.get("reason", "?"))
            # Dead fork branches never appear in a 'fork' event; the
            # prune event's parent hint is how they join the tree.
            parent_id = event.data.get("parent")
            if (node.parent is None and isinstance(parent_id, int)
                    and parent_id != event.state_id):
                parent = self.node(parent_id)
                node.parent = parent_id
                if event.state_id not in parent.children:
                    parent.children.append(event.state_id)
                self._add_lineage(parent_id, event.state_id, "fork",
                                  event.pc, "")
        else:
            return      # solver_check / decode_cache: not structural
        self.events_consumed += 1

    def _consume_fork(self, event: Event) -> None:
        parent_id = event.state_id
        parent = self.node(parent_id)
        children = event.data.get("children", ())
        conds = event.data.get("conds", ())
        edge_kind = "indirect" if event.data.get("indirect") else "fork"
        for position, child_id in enumerate(children):
            if child_id == parent_id:
                continue        # the parent itself continues down one arm
            child = self.node(child_id)
            if child.parent is None:
                child.parent = parent_id
            if child_id not in parent.children:
                parent.children.append(child_id)
            cond = str(conds[position]) if position < len(conds) else ""
            self._add_lineage(parent_id, child_id, edge_kind, event.pc,
                              cond)

    def _add_lineage(self, parent_id: int, child_id: int, kind: str,
                     pc: int, cond: str) -> None:
        """Record (or enrich) the single lineage edge parent -> child."""
        existing = self._lineage.get((parent_id, child_id))
        if existing is not None:
            if cond and not existing.cond:
                existing.cond = cond
                existing.kind = kind
                existing.pc = pc
            return
        edge = TreeEdge(parent_id, child_id, kind, pc, cond)
        self._lineage[(parent_id, child_id)] = edge
        self.edges.append(edge)

    def _consume_merge(self, event: Event) -> None:
        merged_id = event.state_id
        merged = self.node(merged_id)
        sources = list(event.data.get("merged_from", ()))
        merged.merged_from.extend(sources)
        for source_id in sources:
            if source_id == merged_id:
                continue        # duplicate-merge: survivor absorbs a twin
            source = self.node(source_id)
            source.merged_into = merged_id
            if source.status == "live":
                source.status = "merged"
            self.edges.append(TreeEdge(source_id, merged_id, "merge",
                                       event.pc))
        if merged.parent is None and sources:
            parent = next((s for s in sources if s != merged_id), None)
            if parent is not None:
                merged.parent = parent

    # -- queries ------------------------------------------------------------

    def roots(self) -> List[TreeNode]:
        return [node for node in self.nodes.values()
                if node.parent is None and node.merged_into is None
                and not node.merged_from]

    def leaves(self) -> List[TreeNode]:
        """Nodes that finished as recorded paths — these correspond
        one-to-one to ``ExplorationResult.paths``."""
        return [node for node in self.nodes.values() if node.ended]

    def defect_set(self) -> set:
        """``{(kind, pc)}`` across all nodes — matches the engine's
        deduplicated ``ExplorationResult.defects`` sites."""
        return {site for node in self.nodes.values()
                for site in node.defects}

    def stats(self) -> Dict[str, int]:
        by_status: Dict[str, int] = {}
        for node in self.nodes.values():
            by_status[node.status] = by_status.get(node.status, 0) + 1
        return {
            "nodes": len(self.nodes),
            "edges": len(self.edges),
            "leaves": len(self.leaves()),
            "defect_sites": len(self.defect_set()),
            "merges": sum(1 for e in self.edges if e.kind == "merge"),
            "pruned": by_status.get("pruned", 0),
            "live": by_status.get("live", 0),
        }

    # -- renderers ----------------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        payload = {
            "schema": SCHEMA_VERSION,
            "isa": self.isa,
            "stats": self.stats(),
            "nodes": [self.nodes[key].to_dict()
                      for key in sorted(self.nodes)],
            "edges": [edge.to_dict() for edge in self.edges],
        }
        return json.dumps(payload, indent=indent, sort_keys=False)

    _DOT_COLORS = {
        "halted": "palegreen", "depth-limit": "khaki",
        "loop-limit": "khaki", "pruned": "lightgray",
        "merged": "lightblue", "live": "white",
    }

    def to_dot(self) -> str:
        """Graphviz rendering; defective nodes are outlined in red."""
        lines = ["digraph exploration {",
                 '  rankdir=TB;',
                 '  node [shape=box, style=filled, fontname="monospace",'
                 ' fontsize=10];',
                 '  label="%s execution tree";' % _dot_escape(self.isa)]
        for key in sorted(self.nodes):
            node = self.nodes[key]
            color = self._DOT_COLORS.get(node.status, "white")
            attrs = ['fillcolor="%s"' % color,
                     'label="%s"' % _dot_escape(node.label())]
            if node.defects:
                attrs.append('color="red"')
                attrs.append("penwidth=2")
            lines.append("  s%d [%s];" % (node.state_id, ", ".join(attrs)))
        for edge in self.edges:
            attrs = []
            if edge.cond:
                attrs.append('label="%s"' % _dot_escape(edge.cond))
            if edge.kind == "merge":
                attrs.append('style="dashed"')
                attrs.append('color="blue"')
            elif edge.kind == "indirect":
                attrs.append('style="bold"')
            suffix = " [%s]" % ", ".join(attrs) if attrs else ""
            lines.append("  s%d -> s%d%s;" % (edge.parent, edge.child,
                                              suffix))
        lines.append("}")
        return "\n".join(lines)

    def to_ascii(self, max_nodes: int = 500) -> str:
        """Indented terminal rendering, parents before children."""
        lines: List[str] = ["%s execution tree  (%s)" % (
            self.isa, ", ".join("%s=%d" % kv
                                for kv in sorted(self.stats().items())))]
        edge_label: Dict[int, str] = {}
        for edge in self.edges:
            if edge.kind != "merge" and edge.cond:
                edge_label.setdefault(edge.child, edge.cond)
        emitted = 0
        seen = set()

        def walk(node: TreeNode, depth: int) -> None:
            nonlocal emitted
            if emitted >= max_nodes or node.state_id in seen:
                return
            seen.add(node.state_id)
            emitted += 1
            prefix = "  " * depth + ("+- " if depth else "")
            cond = edge_label.get(node.state_id, "")
            suffix = "  [%s]" % cond if cond else ""
            merge = ("  <= merge(%s)" % ",".join(
                "s%d" % s for s in node.merged_from)
                if node.merged_from else "")
            lines.append(prefix + node.label() + suffix + merge)
            for child_id in node.children:
                child = self.nodes.get(child_id)
                if child is not None:
                    walk(child, depth + 1)

        for root in sorted(self.roots(), key=lambda n: n.state_id):
            walk(root, 0)
        # Merge products and anything else unreachable from a root.
        for key in sorted(self.nodes):
            if key not in seen:
                walk(self.nodes[key], 0)
        if emitted >= max_nodes:
            lines.append("... (%d more nodes)" % (len(self.nodes) - emitted))
        return "\n".join(lines)

    def __repr__(self):
        stats = self.stats()
        return "<ExecutionTree %s: %d nodes, %d leaves>" % (
            self.isa, stats["nodes"], stats["leaves"])


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


class FlightRecorder:
    """An event sink that builds the execution tree *live*.

    Attach it like any other sink::

        obs = Obs()
        recorder = FlightRecorder()
        obs.add_sink(recorder)
        ...
        print(recorder.tree.to_ascii())

    Default-off like all sinks: the engine pays nothing unless one is
    attached.  Can be combined with a :class:`JsonlSink` so the same run
    is both persisted and inspectable in-process.
    """

    def __init__(self):
        self.tree = ExecutionTree()

    def emit(self, event: Event) -> None:
        self.tree.consume(event)

    def close(self) -> None:
        pass
