"""Structured event tracing.

Every interesting engine action becomes a typed :class:`Event` carrying
the ISA name, the acting state's id, its program counter and a monotonic
timestamp — enough to replay, diff and join runs across ISAs.  Events are
fanned out to pluggable sinks (see :mod:`repro.obs.sinks`); with no sink
attached the tracer is a single boolean check on the hot path.

Event kinds
-----------
``step``          one instruction executed (``instr`` payload)
``fork``          a state split (``children`` payload: new state ids)
``merge``         two states merged (``merged_from`` payload)
``solver_check``  one *solved* solver query (``result``, ``ms`` payload)
``solver_cache``  a query answered without solving (``layer`` payload:
                  ``exact`` / ``subsume`` / ``model`` / ``frame``, plus
                  ``result``); cached answers never emit ``solver_check``
``path_end``      a path finished (``status``, optional ``exit_code``)
``defect``        a defect was filed (``kind``, ``message``)
``decode_cache``  an instruction fetch (``hit`` payload)
``prune``         a live state was dropped before finishing (``reason``)
``health``        one periodic health-monitor sample (``sample`` payload:
                  frontier size, steps/sec, solver + cache rates, term
                  pool growth, top-k heaviest states; see
                  :mod:`repro.obs.health`)
``watchdog``      a stall/pressure diagnosis (``diagnosis``, ``detail``,
                  optional ``action`` when degradation is enabled)
``store``         a run-store dedup probe (``hit``, ``run_id`` payload):
                  an identical submission answered from the
                  content-addressed run store instead of re-exploring
                  (see :mod:`repro.runstore`)

Schema versioning
-----------------
:data:`SCHEMA_VERSION` names the wire format of a JSONL run file.
Version 2 added the ``prune`` kind, per-edge branch condition summaries
on ``fork`` events (``conds``, aligned with ``children``) and the
``duplicate`` flag on ``merge`` events.  Version 3 added the ``health``
and ``watchdog`` kinds emitted by the live health monitor.  Version 4
added the ``store`` kind (a run-store dedup probe:
``hit``, ``run_id`` payload; see :mod:`repro.runstore`) and an optional
``env`` provenance block on the leading ``schema`` meta record (python
version, platform, package version, spec digests — see
:func:`repro.runstore.provenance.environment_snapshot`).  Version 5
(this release) adds the optional ``attr`` cost-attribution block inside
the ``run_summary`` meta record's ``telemetry`` payload (per-rule /
per-IR-kind / per-site cost shares; see :mod:`repro.obs.attr` and
``repro hot``) — no new event kinds.  All bumps are
additive: readers of version-1/2/3/4 files keep working — sidecars
without the ``env`` block simply report no provenance — and readers
that dispatch on known kinds ignore the new ones (sinks, the flight
recorder and ``repro stats`` are tolerant of unknown kinds by design;
:func:`~repro.obs.sinks.load_run` warns — but still loads — when a
file carries a *newer* schema than this reader).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

__all__ = ["Event", "EventTracer", "EVENT_KINDS", "SCHEMA_VERSION",
           "STEP", "FORK", "MERGE", "SOLVER_CHECK", "SOLVER_CACHE",
           "PATH_END", "DEFECT", "DECODE_CACHE", "PRUNE", "HEALTH",
           "WATCHDOG", "STORE"]

#: Wire-format version stamped into JSONL run files (a ``meta`` record
#: written by :class:`~repro.obs.sinks.JsonlSink`).
SCHEMA_VERSION = 5

STEP = "step"
FORK = "fork"
MERGE = "merge"
SOLVER_CHECK = "solver_check"
SOLVER_CACHE = "solver_cache"
PATH_END = "path_end"
DEFECT = "defect"
DECODE_CACHE = "decode_cache"
PRUNE = "prune"
HEALTH = "health"
WATCHDOG = "watchdog"
STORE = "store"

EVENT_KINDS = (STEP, FORK, MERGE, SOLVER_CHECK, SOLVER_CACHE, PATH_END,
               DEFECT, DECODE_CACHE, PRUNE, HEALTH, WATCHDOG, STORE)


class Event:
    """One telemetry record."""

    __slots__ = ("kind", "isa", "state_id", "pc", "ts", "data")

    def __init__(self, kind: str, isa: str, state_id: int, pc: int,
                 ts: float, data: Optional[Dict[str, object]] = None):
        self.kind = kind
        self.isa = isa
        self.state_id = state_id
        self.pc = pc
        self.ts = ts
        self.data = data if data is not None else {}

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "kind": self.kind, "isa": self.isa,
            "state": self.state_id, "pc": self.pc, "ts": self.ts,
        }
        if self.data:
            record["data"] = self.data
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Event":
        return cls(record["kind"], record.get("isa", "?"),
                   record.get("state", -1), record.get("pc", 0),
                   record.get("ts", 0.0), record.get("data") or {})

    def __eq__(self, other):
        if not isinstance(other, Event):
            return NotImplemented
        return (self.kind == other.kind and self.isa == other.isa
                and self.state_id == other.state_id and self.pc == other.pc
                and self.ts == other.ts and self.data == other.data)

    def __repr__(self):
        return "<Event %s isa=%s state=%d pc=%#x %r>" % (
            self.kind, self.isa, self.state_id, self.pc, self.data)


class EventTracer:
    """Fans events out to sinks; near-free when no sink is attached.

    The engine parks the current execution context on the tracer
    (:meth:`set_context`) so that components without direct state access
    — notably the solver — can emit fully-attributed events.
    """

    def __init__(self, isa: str = "?"):
        self.isa = isa
        self.sinks: List[object] = []
        self.enabled = False
        self.emitted = 0
        # Current execution context (state id, pc) set by the engine.
        self.ctx_state = -1
        self.ctx_pc = 0

    def add_sink(self, sink) -> None:
        self.sinks.append(sink)
        self.enabled = True

    def remove_sink(self, sink) -> None:
        self.sinks.remove(sink)
        self.enabled = bool(self.sinks)

    def set_context(self, state_id: int, pc: int) -> None:
        self.ctx_state = state_id
        self.ctx_pc = pc

    def emit(self, kind: str, state_id: Optional[int] = None,
             pc: Optional[int] = None, **data) -> None:
        """Emit one event (no-op with no sinks; guard with ``enabled``
        before building expensive payloads)."""
        if not self.enabled:
            return
        event = Event(kind, self.isa,
                      self.ctx_state if state_id is None else state_id,
                      self.ctx_pc if pc is None else pc,
                      time.monotonic(), data or None)
        self.emitted += 1
        for sink in self.sinks:
            sink.emit(event)

    def flush(self) -> None:
        """Flush sinks that buffer (best-effort; sinks without a
        ``flush`` are skipped).  The health monitor calls this after
        each sample so live tails (``repro top``) see fresh data."""
        for sink in self.sinks:
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
