"""Flamegraph + Chrome-trace rendering of ``attr`` snapshot blocks.

Both renderers are pure functions over the JSON-able snapshot produced
by :meth:`repro.obs.attr.CostAttribution.snapshot`, so they work
offline from a telemetry sidecar's ``run_summary`` block or a
run-store ``attr.json`` artifact — the ``repro hot --flame/--trace``
round trip.

* :func:`collapsed_stacks` emits Brendan-Gregg collapsed-stack lines
  (``frame;frame;frame weight``) with ``isa;rule[;ir_kind][;solver]``
  frames and integer microsecond weights — feed the output straight to
  ``flamegraph.pl`` or any collapsed-stack viewer (speedscope, etc.).
* :func:`chrome_trace` emits a Chrome ``trace_event`` JSON object
  (synthetic sequential complete events) for ``chrome://tracing`` /
  Perfetto.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["collapsed_stacks", "render_collapsed", "chrome_trace"]


def _us(seconds) -> int:
    try:
        return int(round(float(seconds) * 1e6))
    except (TypeError, ValueError):
        return 0


def collapsed_stacks(block) -> List[Dict[str, object]]:
    """Collapsed-stack rows (``{"stack": [...], "us": N}``) for one
    attribution snapshot; zero-weight rows are dropped.

    Per rule: IR-kind self time becomes ``isa;rule;kind``, solver time
    attributed inside an IR kind becomes ``isa;rule;kind;solver``,
    remaining (un-probed) solver time ``isa;rule;solver``, and the
    eval-time residual not covered by probed IR frames stays at
    ``isa;rule`` — so the flamegraph total equals the attributed
    eval+solver total.
    """
    if not isinstance(block, dict) or not isinstance(
            block.get("rules"), dict):
        return []
    isa = str(block.get("isa", "?"))
    rows: List[Dict[str, object]] = []

    def add(stack, us):
        if us > 0:
            rows.append({"stack": stack, "us": us})

    for name, entry in sorted(block["rules"].items()):
        if not isinstance(entry, dict):
            continue
        rule = str(name)
        ir = entry.get("ir") if isinstance(entry.get("ir"), dict) else {}
        solver_by_ir = entry.get("solver_by_ir") \
            if isinstance(entry.get("solver_by_ir"), dict) else {}
        ir_self_us = 0
        for kind, cost in sorted(ir.items()):
            if not isinstance(cost, dict):
                continue
            us = _us(cost.get("self_s"))
            ir_self_us += us
            add([isa, rule, str(kind)], us)
        probed_solver_us = 0
        for kind, seconds in sorted(solver_by_ir.items()):
            us = _us(seconds)
            probed_solver_us += us
            add([isa, rule, str(kind), "solver"], us)
        add([isa, rule, "solver"],
            _us(entry.get("solver_s")) - probed_solver_us)
        # Eval residual: wall time the (sampled) IR probe did not cover.
        # IR frames exclude solver child time by construction, so the
        # residual is eval minus probed IR self time.
        add([isa, rule], _us(entry.get("eval_s")) - ir_self_us)
    return rows


def render_collapsed(block) -> str:
    """Brendan-Gregg collapsed-stack text (one ``a;b;c N`` per line)."""
    return "\n".join("%s %d" % (";".join(row["stack"]), row["us"])
                     for row in collapsed_stacks(block))


def chrome_trace(block) -> Dict[str, object]:
    """Chrome ``trace_event`` JSON (synthetic sequential timeline).

    Wall-clock layout is reconstructed, not replayed: each rule gets a
    contiguous span sized by its attributed cost, with its IR kinds and
    solver time nested inside — the *shares* are faithful, the
    ordering is synthetic.
    """
    events: List[Dict[str, object]] = []
    cursor = 0
    meta = {"isa": "?", "mode": "?"}
    if isinstance(block, dict):
        meta = {"isa": block.get("isa", "?"),
                "mode": block.get("mode", "?"),
                "steps": block.get("steps", 0)}
    rows = collapsed_stacks(block)
    by_rule: Dict[str, List[Dict[str, object]]] = {}
    for row in rows:
        by_rule.setdefault(row["stack"][1], []).append(row)
    for rule in sorted(by_rule):
        children = by_rule[rule]
        total = sum(row["us"] for row in children)
        events.append({"name": rule, "cat": "rule", "ph": "X",
                       "ts": cursor, "dur": total, "pid": 1, "tid": 1,
                       "args": {"isa": meta.get("isa")}})
        child_cursor = cursor
        for row in children:
            frames = row["stack"][2:]
            if frames:
                events.append({"name": ";".join(frames), "cat": "ir",
                               "ph": "X", "ts": child_cursor,
                               "dur": row["us"], "pid": 1, "tid": 1})
            child_cursor += row["us"]
        cursor += total
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": meta}
