"""Metrics registry: counters, gauges and histograms.

The registry is the cheap, always-on layer of the observability stack
(`repro.obs`).  Counters are plain attribute increments on the hot path;
when a registry is *disabled* it hands out shared null instruments whose
mutators are no-ops, so instrumented code never needs an ``if``.

Conventions
-----------
* Metric names are dotted paths, ``engine.steps``, ``solver.check_ms``.
* Counters and gauges hold numbers; histograms record every observation
  and summarize with nearest-rank percentiles (p50/p90/p99).
* ``snapshot()`` returns plain JSON-able dicts; ``counters_snapshot()`` /
  ``delta_since()`` support per-exploration deltas on long-lived
  registries (an engine explored twice must not report inflated counts).
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NULL_COUNTER", "NULL_GAUGE", "NULL_HISTOGRAM"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def __repr__(self):
        return "<Counter %s=%s>" % (self.name, self.value)


class Gauge:
    """Last-written value (frontier size, cache size, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def set_max(self, value) -> None:
        if value > self.value:
            self.value = value

    def merge(self, other: "Gauge") -> None:
        self.value = other.value

    def __repr__(self):
        return "<Gauge %s=%s>" % (self.name, self.value)


class Histogram:
    """Records every observation; summarizes with percentiles.

    Observations are kept in full up to ``max_samples`` and then
    reservoir-thinned by keeping every other sample (cheap, deterministic,
    good enough for timing distributions); count/sum/min/max stay exact.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples",
                 "_max_samples", "_stride", "_skip")

    def __init__(self, name: str, max_samples: int = 8192):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._max_samples = max_samples
        self._stride = 1
        self._skip = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._skip += 1
        if self._skip >= self._stride:
            self._skip = 0
            self._samples.append(value)
            if len(self._samples) > self._max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if p <= 0:
            return ordered[0]
        rank = int((p / 100.0) * len(ordered) + 0.5)  # nearest rank, 1-based
        rank = min(max(rank, 1), len(ordered))
        return ordered[rank - 1]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram, stride-aware.

        Each retained sample stands for ``_stride`` observations, so
        naively extending ``_samples`` would give a thinned histogram's
        samples the same weight as an unthinned one's and skew
        percentiles toward the less-thinned side.  Instead both sample
        sets are re-thinned to the *common* (coarsest) stride before
        concatenation, restoring equal per-sample weight.  Strides are
        powers of two by construction (they only ever double), so the
        coarser stride is always an exact multiple of the finer one.
        """
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max
        target = max(self._stride, other._stride)
        mine = self._samples[::target // self._stride]
        theirs = other._samples[::target // other._stride]
        self._samples = mine + theirs
        self._stride = target
        self._skip = 0
        while len(self._samples) > self._max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def __repr__(self):
        return "<Histogram %s n=%d mean=%.3g>" % (self.name, self.count,
                                                  self.mean)


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def merge(self, other) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0

    def set(self, value) -> None:
        pass

    def set_max(self, value) -> None:
        pass

    def merge(self, other) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0
    min = None
    max = None
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0

    def merge(self, other) -> None:
        pass

    def snapshot(self) -> Dict[str, float]:
        return {}


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named metric instruments; null instruments when disabled."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument factories (idempotent per name) -------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, max_samples: int = 8192) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, max_samples)
        return instrument

    # -- snapshots and deltas ----------------------------------------------

    def counters_snapshot(self) -> Dict[str, int]:
        """Current counter values (for later :meth:`delta_since`)."""
        return {name: c.value for name, c in self._counters.items()}

    def delta_since(self, before: Dict[str, int]) -> Dict[str, int]:
        """Counter increments since a :meth:`counters_snapshot`."""
        return {name: c.value - before.get(name, 0)
                for name, c in self._counters.items()}

    def snapshot(self) -> Dict[str, object]:
        """Everything, as one JSON-able dict."""
        out: Dict[str, object] = {}
        out["counters"] = {n: c.value for n, c in
                           sorted(self._counters.items())}
        out["gauges"] = {n: g.value for n, g in sorted(self._gauges.items())}
        out["histograms"] = {n: h.snapshot() for n, h in
                             sorted(self._histograms.items())}
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (cross-run aggregation)."""
        for name, counter in other._counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other._gauges.items():
            self.gauge(name).merge(gauge)
        for name, histogram in other._histograms.items():
            self.histogram(name).merge(histogram)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
