"""Event sinks: where traced events go.

Three built-ins cover the main use cases:

* :class:`RingBufferSink` — bounded in-memory buffer for tests and
  programmatic inspection (never grows without bound).
* :class:`JsonlSink` — one JSON object per line; the interchange format
  consumed by ``repro stats`` and the benchmark sidecars.  A JSONL run
  file is a stream of event records optionally followed by ``meta``
  records (e.g. the end-of-run summary).  Paths ending in ``.gz`` are
  transparently gzip-compressed, and every reader here
  (:func:`load_run` / :func:`read_jsonl`) decompresses them the same
  way, so ``--telemetry-out run.jsonl.gz`` just works end to end.
* :class:`ConsoleSink` — human-readable live feed for debugging
  generated semantics.

Any object with ``emit(event)`` (and optional ``close()``) is a sink.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import zlib
from collections import deque
from typing import Dict, List, Optional, Tuple, Union

from .events import SCHEMA_VERSION, Event


def _open_text(path: str, mode: str):
    """Open a sidecar path for text I/O, gunzipping ``.gz`` paths.

    Read modes replace undecodable bytes (telemetry readers must never
    traceback on a corrupt file); write modes are strict.
    """
    if path.endswith(".gz"):
        if "r" in mode:
            return gzip.open(path, "rt", errors="replace")
        return gzip.open(path, mode + "t")
    if "r" in mode:
        return open(path, errors="replace")
    return open(path, mode)

__all__ = ["RingBufferSink", "JsonlSink", "ConsoleSink",
           "read_jsonl", "read_run", "load_run", "RunFile",
           "TelemetryError"]


class TelemetryError(Exception):
    """A telemetry run file is missing, empty, or unreadable.

    Raised by :func:`load_run` so CLI consumers (``repro stats`` /
    ``tree`` / ``speccov``) can fail with a one-line message instead of
    a traceback.
    """


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, event: Event) -> None:
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)

    def events(self, kind: Optional[str] = None) -> List[Event]:
        if kind is None:
            return list(self._buffer)
        return [event for event in self._buffer if event.kind == kind]

    def clear(self) -> None:
        self._buffer.clear()
        self.dropped = 0

    def __len__(self):
        return len(self._buffer)


class JsonlSink:
    """Streams events as JSON lines to a path or a file-like object.

    A string target ending in ``.gz`` is written gzip-compressed (the
    readers decompress transparently).  The leading ``schema`` meta
    record carries an ``env`` provenance block — python version,
    platform, package version (see
    :func:`repro.runstore.provenance.environment_snapshot`) — which
    callers can extend via ``env`` (e.g. the CLI adds the ADL spec
    digest of the explored ISA).  Readers of older sidecars that lack
    the block keep working: :meth:`RunFile.environment` just returns
    an empty dict.
    """

    def __init__(self, target: Union[str, io.TextIOBase],
                 write_schema: bool = True,
                 env: Optional[Dict[str, object]] = None):
        if isinstance(target, str):
            self._handle = _open_text(target, "w")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.written = 0
        if write_schema:
            # Version stamp first, so readers can dispatch on format.
            # Lazy import: runstore depends on obs, not the other way
            # around at module load time.
            from ..runstore.provenance import environment_snapshot
            block = environment_snapshot()
            if env:
                block.update(env)
            self.write_meta({"record": "schema",
                             "version": SCHEMA_VERSION,
                             "env": block})

    def emit(self, event: Event) -> None:
        self._handle.write(json.dumps(event.to_dict(),
                                      separators=(",", ":")))
        self._handle.write("\n")
        self.written += 1

    def write_meta(self, record: Dict[str, object]) -> None:
        """Append a non-event record (tagged ``"meta"``) to the stream."""
        tagged = {"kind": "meta"}
        tagged.update(record)
        tagged["kind"] = "meta"
        self._handle.write(json.dumps(tagged, separators=(",", ":")))
        self._handle.write("\n")

    def flush(self) -> None:
        """Push buffered lines to disk so live tails (``repro top``)
        observe them mid-run.  Called by the health monitor after each
        sample — cheap at sampling cadence, never on the hot path."""
        self._handle.flush()

    def close(self) -> None:
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


class ConsoleSink:
    """Human-readable one-line-per-event feed (stderr by default)."""

    def __init__(self, stream=None):
        import sys
        self._stream = stream if stream is not None else sys.stderr

    def emit(self, event: Event) -> None:
        extra = " ".join("%s=%r" % item for item in
                         sorted(event.data.items()))
        self._stream.write("[obs] %-12s isa=%-8s state=%-4d pc=%#06x %s\n"
                           % (event.kind, event.isa, event.state_id,
                              event.pc, extra))


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """All records (events and meta) of a JSONL run file, as dicts."""
    records = []
    with _open_text(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def read_run(path: str) -> Tuple[List[Event], List[Dict[str, object]]]:
    """Split a JSONL run file into (events, meta records)."""
    events: List[Event] = []
    meta: List[Dict[str, object]] = []
    for record in read_jsonl(path):
        if record.get("kind") == "meta":
            meta.append(record)
        else:
            events.append(Event.from_dict(record))
    return events, meta


class RunFile:
    """A loaded telemetry run: events, meta records, reader warnings."""

    __slots__ = ("path", "events", "meta", "warnings", "schema_version")

    def __init__(self, path: str, events: List[Event],
                 meta: List[Dict[str, object]], warnings: List[str],
                 schema_version: Optional[int]):
        self.path = path
        self.events = events
        self.meta = meta
        self.warnings = warnings
        self.schema_version = schema_version

    def events_of(self, kind: str) -> List[Event]:
        return [event for event in self.events if event.kind == kind]

    def run_summary(self) -> Optional[Dict[str, object]]:
        for record in self.meta:
            if record.get("record") == "run_summary":
                return record
        return None

    def attr_block(self) -> Optional[Dict[str, object]]:
        """The schema-v5 cost-attribution block of the run summary
        (``telemetry.attr``), or ``None`` for pre-v5 sidecars and runs
        explored without ``--attr`` — readers stay tolerant."""
        summary = self.run_summary()
        if summary is None:
            return None
        telemetry = summary.get("telemetry")
        if not isinstance(telemetry, dict):
            return None
        block = telemetry.get("attr")
        return block if isinstance(block, dict) else None

    def environment(self) -> Dict[str, object]:
        """The ``env`` provenance block of the schema meta record
        (python/platform/package/spec digests), or ``{}`` for sidecars
        recorded before schema v4 — readers stay tolerant."""
        for record in self.meta:
            if record.get("record") == "schema":
                env = record.get("env")
                return dict(env) if isinstance(env, dict) else {}
        return {}


def load_run(path: str) -> RunFile:
    """Robustly load a telemetry JSONL run file.

    Unlike :func:`read_run` this never raises on partial data: malformed
    or truncated lines (e.g. a run killed mid-write) are skipped and
    reported via :attr:`RunFile.warnings`.  It *does* raise
    :class:`TelemetryError` — with a one-line, actionable message — when
    the file is missing, empty, or contains no parseable records at all.
    """
    if not os.path.exists(path):
        raise TelemetryError("no such telemetry file: %s" % path)
    if os.path.isdir(path):
        raise TelemetryError("%s is a directory, not a telemetry file"
                             % path)
    events: List[Event] = []
    meta: List[Dict[str, object]] = []
    warnings: List[str] = []
    bad_lines = 0
    total_lines = 0
    try:
        with _open_text(path, "r") as handle:
            for number, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                total_lines += 1
                try:
                    record = json.loads(line)
                except ValueError:
                    bad_lines += 1
                    last_bad = number
                    continue
                if not isinstance(record, dict) or "kind" not in record:
                    bad_lines += 1
                    last_bad = number
                    continue
                if record.get("kind") == "meta":
                    meta.append(record)
                else:
                    events.append(Event.from_dict(record))
    except OSError as exc:
        raise TelemetryError("cannot read telemetry file %s: %s"
                             % (path, exc.strerror or exc))
    except (EOFError, zlib.error) as exc:
        # A truncated/corrupt .gz stream (e.g. a killed writer): keep
        # whatever decompressed cleanly, warn like a truncated line.
        if total_lines == 0:
            raise TelemetryError(
                "cannot decompress telemetry file %s: %s" % (path, exc))
        warnings.append("compressed stream ends early (%s); later "
                        "events may be missing" % exc)
    if total_lines == 0:
        raise TelemetryError("telemetry file %s is empty (did the run "
                             "crash before emitting events?)" % path)
    if bad_lines == total_lines:
        raise TelemetryError("telemetry file %s contains no parseable "
                             "JSONL records (%d bad lines)"
                             % (path, bad_lines))
    if bad_lines:
        tail = (" (last at line %d — likely a truncated trailing write)"
                % last_bad)
        warnings.append("skipped %d unparseable line%s%s"
                        % (bad_lines, "s" if bad_lines != 1 else "", tail))
    schema_version = None
    for record in meta:
        if record.get("record") == "schema":
            try:
                schema_version = int(record.get("version"))
            except (TypeError, ValueError):
                pass
            break
    if schema_version is not None and schema_version > SCHEMA_VERSION:
        warnings.append(
            "file schema v%d is newer than this reader (v%d); unknown "
            "event kinds will be ignored" % (schema_version,
                                             SCHEMA_VERSION))
    return RunFile(path, events, meta, warnings, schema_version)
