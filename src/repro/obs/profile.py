"""Per-phase wall-time profiler.

Scopes (``with profiler.phase("solver"): ...`` or the
``@profiler.wrap("decode")`` decorator) accumulate calls, inclusive and
exclusive (self) time per phase name.  Nesting is tracked with an
explicit stack, so ``eval`` wrapping ``memory`` wrapping ``solver``
yields a correct breakdown: each phase's *self* time excludes the time
spent in phases entered beneath it.

A disabled profiler hands out one shared no-op scope, keeping the hot
path at roughly the cost of a method call.
"""

from __future__ import annotations

import functools
import time
from typing import Dict, List

__all__ = ["PhaseProfiler", "PhaseStats"]

# The canonical engine phases (instrumented in core/smt/isa):
ENGINE_PHASES = ("decode", "eval", "solver", "memory", "strategy")


class PhaseStats:
    """Accumulated timings for one phase name."""

    __slots__ = ("name", "calls", "total", "self_time")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.total = 0.0        # inclusive wall time
        self.self_time = 0.0    # exclusive of nested phases

    def snapshot(self) -> Dict[str, float]:
        return {
            "calls": self.calls,
            "total_s": self.total,
            "self_s": self.self_time,
            "avg_us": (1e6 * self.total / self.calls) if self.calls else 0.0,
        }

    def __repr__(self):
        return "<PhaseStats %s calls=%d total=%.4fs self=%.4fs>" % (
            self.name, self.calls, self.total, self.self_time)


class _NullScope:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        return False


_NULL_SCOPE = _NullScope()


class _Scope:
    __slots__ = ("_profiler", "_name", "_start", "_child_time")

    def __init__(self, profiler: "PhaseProfiler", name: str):
        self._profiler = profiler
        self._name = name
        self._start = 0.0
        self._child_time = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        self._child_time = 0.0
        self._profiler._stack.append(self)
        return self

    def __exit__(self, *_exc):
        elapsed = time.perf_counter() - self._start
        profiler = self._profiler
        stack = profiler._stack
        stack.pop()
        stats = profiler._phases.get(self._name)
        if stats is None:
            stats = profiler._phases[self._name] = PhaseStats(self._name)
        stats.calls += 1
        stats.total += elapsed
        stats.self_time += elapsed - self._child_time
        if stack:
            stack[-1]._child_time += elapsed
        return False


class PhaseProfiler:
    """Hierarchy-aware per-phase timer; no-op when disabled."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._phases: Dict[str, PhaseStats] = {}
        self._stack: List[_Scope] = []

    def phase(self, name: str):
        """Context manager timing one scope of ``name``."""
        if not self.enabled:
            return _NULL_SCOPE
        return _Scope(self, name)

    def wrap(self, name: str):
        """Decorator form: time every call of the wrapped function.

        ``functools.wraps`` keeps the wrapped function's metadata
        (``__qualname__``, ``__module__``, ``__wrapped__`` and the
        signature via ``__wrapped__``) intact so decorated engine
        methods stay introspectable."""
        def decorator(fn):
            @functools.wraps(fn)
            def wrapped(*args, **kwargs):
                with self.phase(name):
                    return fn(*args, **kwargs)
            return wrapped
        return decorator

    def stats(self, name: str) -> PhaseStats:
        """Stats for one phase.

        On an *enabled* profiler a never-entered phase is registered on
        first access, so the returned object is live: later mutations
        and scope exits accumulate into the same ``PhaseStats`` (and it
        appears — zeroed — in :meth:`snapshot`).  A *disabled* profiler
        returns a detached zeroed placeholder instead: it records
        nothing, so registering would only pollute snapshots.
        """
        found = self._phases.get(name)
        if found is not None:
            return found
        if not self.enabled:
            return PhaseStats(name)
        found = self._phases[name] = PhaseStats(name)
        return found

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {name: stats.snapshot()
                for name, stats in sorted(self._phases.items())}

    def reset(self) -> None:
        self._phases.clear()
        del self._stack[:]

    def report(self, title: str = "per-phase profile") -> str:
        """Human-readable table, widest phases first."""
        lines = ["== %s ==" % title,
                 "%-12s %10s %12s %12s %10s" % ("phase", "calls",
                                                "total", "self", "avg")]
        ordered = sorted(self._phases.values(),
                         key=lambda s: s.total, reverse=True)
        for stats in ordered:
            lines.append("%-12s %10d %11.4fs %11.4fs %8.1fus"
                         % (stats.name, stats.calls, stats.total,
                            stats.self_time,
                            1e6 * stats.total / stats.calls
                            if stats.calls else 0.0))
        if not ordered:
            lines.append("(no phases recorded)")
        return "\n".join(lines)
