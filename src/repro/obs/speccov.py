"""ADL spec coverage: which semantic rules has symbolic execution hit?

Address-level coverage (:mod:`repro.core.coverage`) answers "which parts
of *this program* ran"; this module answers the question an ISA porter
actually asks: "which parts of *my ADL spec* has the engine exercised?"
Every executed instruction is attributed back to the semantic rule — the
``instruction`` block, with its spec source line span — that produced
its IR, via the :class:`~repro.adl.translate.RuleProvenance` records the
translator threads into the generated :class:`~repro.isa.model.ArchModel`.

Two attribution paths:

* **event-based** (:meth:`SpecCoverage.from_events`): joins the ``instr``
  payload of every ``step`` event in a telemetry run against the rule
  table of that ISA's model — works offline on any saved
  ``--telemetry-out`` file (the ``repro speccov`` subcommand).
* **image-based** (:func:`rule_coverage_from_visited`): decodes every
  visited pc of an :class:`~repro.core.reporting.ExplorationResult`
  against the loaded image — no event sink needed, so ``repro explore``
  can print a unified address+rule coverage line for free.

Coverage is reported per ISA at two granularities: **rules** (one per
``instruction`` block) and **mnemonic forms** (rules grouped by
mnemonic, so ``mov r,r`` vs ``mov r,imm`` style operand forms are
visible separately from the mnemonic list).  ``min_ratio`` gating turns
the report into a CI check for new ISA specs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .events import STEP, Event

__all__ = ["RuleHit", "IsaSpecCoverage", "SpecCoverage",
           "rule_coverage_from_visited"]


class RuleHit:
    """Execution counts for one semantic rule."""

    __slots__ = ("rule", "hits")

    def __init__(self, rule, hits: int = 0):
        self.rule = rule            # RuleProvenance
        self.hits = hits

    def __repr__(self):
        return "<RuleHit %s x%d>" % (self.rule.instruction, self.hits)


class IsaSpecCoverage:
    """Spec coverage of one ISA across an exploration (or several)."""

    def __init__(self, isa: str, model=None):
        if model is None:
            from ..isa.model import build
            model = build(isa)
        self.isa = isa
        self.model = model
        self.rules = dict(model.rules)          # name -> RuleProvenance
        self.hits: Dict[str, int] = {}          # name -> execution count
        # Step events whose ``instr`` payload is not a known rule (should
        # stay empty: 100% attribution is the acceptance invariant).
        self.unattributed: Dict[str, int] = {}

    # -- accounting ---------------------------------------------------------

    def record(self, instruction_name: str, count: int = 1) -> None:
        if instruction_name in self.rules:
            self.hits[instruction_name] = (
                self.hits.get(instruction_name, 0) + count)
        else:
            self.unattributed[instruction_name] = (
                self.unattributed.get(instruction_name, 0) + count)

    # -- figures ------------------------------------------------------------

    @property
    def covered(self) -> List[str]:
        return sorted(name for name in self.hits if name in self.rules)

    @property
    def uncovered(self) -> List[str]:
        return sorted(name for name in self.rules if name not in self.hits)

    @property
    def rule_ratio(self) -> float:
        if not self.rules:
            return 0.0
        return len(self.covered) / len(self.rules)

    def mnemonic_forms(self) -> Dict[str, Tuple[int, int]]:
        """Per mnemonic: (covered forms, total forms).

        Several ``instruction`` blocks can share one mnemonic (operand
        forms, e.g. register vs immediate variants); a porter wants to
        know a mnemonic is only half-exercised.
        """
        totals: Dict[str, int] = {}
        covered: Dict[str, int] = {}
        for name, rule in self.rules.items():
            totals[rule.mnemonic] = totals.get(rule.mnemonic, 0) + 1
            if name in self.hits:
                covered[rule.mnemonic] = covered.get(rule.mnemonic, 0) + 1
        return {mnemonic: (covered.get(mnemonic, 0), total)
                for mnemonic, total in sorted(totals.items())}

    @property
    def form_ratio(self) -> float:
        forms = self.mnemonic_forms()
        total = sum(t for _, t in forms.values())
        if not total:
            return 0.0
        return sum(c for c, _ in forms.values()) / total

    @property
    def attributed_instructions(self) -> int:
        return sum(self.hits.values())

    @property
    def unattributed_instructions(self) -> int:
        return sum(self.unattributed.values())

    # -- rendering ----------------------------------------------------------

    def summary(self) -> str:
        line = ("speccov[%s]: rules %d/%d (%.0f%%), mnemonic forms "
                "%.0f%%, %d instructions attributed"
                % (self.isa, len(self.covered), len(self.rules),
                   100 * self.rule_ratio, 100 * self.form_ratio,
                   self.attributed_instructions))
        if self.unattributed:
            line += ", %d UNATTRIBUTED" % self.unattributed_instructions
        return line

    def report(self, show_covered: bool = True) -> str:
        """Multi-line per-rule table plus the uncovered list."""
        source = self.model.source_path or "<in-memory spec>"
        lines = ["== spec coverage: %s (%s) ==" % (self.isa, source)]
        if show_covered:
            lines.append("  %-12s %-10s %-9s %8s" % ("rule", "mnemonic",
                                                     "lines", "hits"))
            lines.append("  " + "-" * 43)
            ordered = sorted(self.hits.items(),
                             key=lambda kv: (-kv[1], kv[0]))
            for name, hits in ordered:
                rule = self.rules[name]
                lines.append("  %-12s %-10s %4d-%-4d %8d"
                             % (name, rule.mnemonic, rule.line_lo,
                                rule.line_hi, hits))
        if self.uncovered:
            spans = ", ".join("%s (%d-%d)" % (name,
                                              self.rules[name].line_lo,
                                              self.rules[name].line_hi)
                              for name in self.uncovered)
            lines.append("  uncovered (%d/%d): %s"
                         % (len(self.uncovered), len(self.rules), spans))
        partial = [(m, c, t) for m, (c, t) in self.mnemonic_forms().items()
                   if 0 < c < t]
        if partial:
            lines.append("  partial mnemonics: "
                         + ", ".join("%s %d/%d" % p for p in partial))
        if self.unattributed:
            lines.append("  UNATTRIBUTED: "
                         + ", ".join("%s x%d" % kv for kv in
                                     sorted(self.unattributed.items())))
        lines.append("  " + self.summary())
        return "\n".join(lines)

    def annotate_spec(self) -> str:
        """The ADL source with per-line hit counts in the margin.

        Lines inside a covered rule's span carry the rule's execution
        count; lines of uncovered rules are flagged ``!``; structural
        lines are left blank.  Requires ``model.source_path``.
        """
        if not self.model.source_path:
            raise ValueError("no spec source path recorded for %r "
                             "(in-memory spec?)" % self.isa)
        with open(self.model.source_path) as handle:
            source_lines = handle.read().splitlines()
        margin: Dict[int, str] = {}
        for name, rule in sorted(self.rules.items()):
            hits = self.hits.get(name, 0)
            tag = "%7d " % hits if hits else "      ! "
            for line in range(rule.line_lo, rule.line_hi + 1):
                # First writer wins; rules never overlap in the specs.
                margin.setdefault(line, tag)
        out = ["# annotated spec coverage: %s" % self.isa,
               "# margin: execution count | '!' = uncovered rule",
               ""]
        for number, text in enumerate(source_lines, 1):
            out.append("%s|%s" % (margin.get(number, " " * 8), text))
        return "\n".join(out)

    def to_dict(self) -> Dict[str, object]:
        return {
            "isa": self.isa,
            "source": self.model.source_path,
            "rules_total": len(self.rules),
            "rules_covered": len(self.covered),
            "rule_ratio": self.rule_ratio,
            "form_ratio": self.form_ratio,
            "hits": dict(sorted(self.hits.items())),
            "uncovered": self.uncovered,
            "unattributed": dict(sorted(self.unattributed.items())),
        }

    def __repr__(self):
        return "<IsaSpecCoverage %s>" % self.summary()


class SpecCoverage:
    """Spec coverage across every ISA appearing in an event stream."""

    def __init__(self):
        self.per_isa: Dict[str, IsaSpecCoverage] = {}

    @classmethod
    def from_events(cls, events: Iterable[Event],
                    models: Optional[Dict[str, object]] = None
                    ) -> "SpecCoverage":
        """Attribute every ``step`` event to its semantic rule.

        ``models`` optionally maps ISA name -> ArchModel for specs that
        are not built-ins (tests with in-memory specs); built-in ISA
        names are resolved via :func:`repro.isa.model.build`.
        """
        cov = cls()
        for event in events:
            if event.kind != STEP:
                continue
            isa_cov = cov.per_isa.get(event.isa)
            if isa_cov is None:
                model = models.get(event.isa) if models else None
                isa_cov = cov.per_isa[event.isa] = IsaSpecCoverage(
                    event.isa, model)
            isa_cov.record(str(event.data.get("instr", "?")))
        return cov

    @classmethod
    def from_jsonl(cls, path: str) -> Tuple["SpecCoverage", List[str]]:
        """Load a saved run and attribute it; returns (coverage,
        reader warnings)."""
        from .sinks import load_run
        run = load_run(path)
        return cls.from_events(run.events), run.warnings

    def isas(self) -> List[str]:
        return sorted(self.per_isa)

    def min_rule_ratio(self) -> float:
        if not self.per_isa:
            return 0.0
        return min(cov.rule_ratio for cov in self.per_isa.values())

    def gate(self, min_ratio: float) -> List[str]:
        """ISAs whose rule coverage falls below ``min_ratio`` (for CI:
        nonzero exit when non-empty)."""
        return [isa for isa, cov in sorted(self.per_isa.items())
                if cov.rule_ratio < min_ratio]

    def report(self, show_covered: bool = True) -> str:
        if not self.per_isa:
            return "speccov: no step events (was the run traced with " \
                   "--telemetry-out?)"
        return "\n\n".join(self.per_isa[isa].report(show_covered)
                           for isa in self.isas())

    def __repr__(self):
        return "<SpecCoverage %s>" % ", ".join(
            cov.summary() for cov in self.per_isa.values())


def rule_coverage_from_visited(model, image, visited: Iterable[int]
                               ) -> IsaSpecCoverage:
    """Image-based attribution: decode each visited pc of ``image`` and
    credit its rule.  Addresses that do not decode (e.g. dynamic-only
    targets outside the image) are counted under ``unattributed`` as
    ``@<hex>`` pseudo-names.

    This is the no-sink path that lets ``repro explore`` print a unified
    address+rule coverage report without event tracing enabled.
    """
    cov = IsaSpecCoverage(model.name, model)
    data = bytes(image.data)
    end = image.base + len(data)
    decoder = model.decoder
    for pc in sorted(set(visited)):
        if not (image.base <= pc < end):
            cov.unattributed["@%#x" % pc] = 1
            continue
        window = data[pc - image.base:pc - image.base + decoder.max_length]
        try:
            decoded = decoder.decode_bytes(window, pc)
        except Exception:
            cov.unattributed["@%#x" % pc] = 1
            continue
        cov.record(decoded.instruction.name)
    return cov
