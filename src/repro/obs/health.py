"""Live exploration health monitor: periodic sampler + stall/pressure
watchdog.

The telemetry stack (metrics / events / profiler / flight recorder)
explains a run *after* it finishes; this module gives the engine a
heartbeat **while exploration is running**.  A retargetable engine
pointed at an unfamiliar ADL spec is exactly the workload that goes
wrong mid-flight — frontier explosion, solver-dominated stalls,
term-pool blowup — and the monitor exists to see, bound and compare
those costs live.

Two cooperating pieces, both driven from the executor main loop:

:class:`HealthMonitor` (sampler)
    A low-overhead periodic sampler — every ``sample_every_steps``
    engine steps and (optionally) at least ``min_interval_s`` apart —
    that snapshots frontier size, steps/sec, solver time share and
    cache hit rates, term-pool growth (:meth:`TermPool.growth_since
    <repro.smt.terms.TermPool.growth_since>`), coverage/path/defect
    progress and a top-k heaviest-states view built from
    :meth:`SymState.footprint <repro.core.state.SymState.footprint>`.
    Samples are schema-versioned dicts (``"v"`` key,
    :data:`HEALTH_SCHEMA`), kept in a bounded in-memory history,
    mirrored into gauges (``health.*``) and emitted as ``health``
    events into the run's tracer (then flushed, so a live ``repro
    top`` tail sees them mid-run).

watchdog (inside the monitor)
    Evaluated at each sample: detects **no-new-coverage windows**
    (``stall_window`` consecutive samples without new coverage, paths
    or defects), **solver-dominated intervals** (solved-query time
    share of wall time above ``solver_share_threshold``), **frontier
    growth** beyond ``frontier_budget`` and **term-pool growth**
    beyond ``pool_budget``.  Each firing produces a structured
    diagnosis (recorded, counted, emitted as a ``watchdog`` event).
    Diagnoses are *observe-only by default*; per-diagnosis graceful
    degradation is opt-in via ``HealthConfig(actions={...})`` — the
    engine then forces a merge pass (``"merge"``), switches strategy
    (``"switch"``) or stops with a clean ``pressure`` stop reason
    (``"stop"``).

Determinism: sampling is read-only — with the default
``min_interval_s=0`` the cadence is a pure function of the step count,
so a run with the monitor attached explores exactly the same tree as a
run without it (pinned by ``tests/obs/test_health.py``).  Only opt-in
actions may change exploration, and only when explicitly configured.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Optional

from .events import HEALTH, WATCHDOG

__all__ = ["HealthConfig", "HealthMonitor", "health_summary_line",
           "HEALTH_SCHEMA", "DIAGNOSES", "ACTIONS",
           "STALL", "SOLVER_DOMINATED", "FRONTIER_PRESSURE",
           "POOL_PRESSURE",
           "ACTION_NONE", "ACTION_MERGE", "ACTION_SWITCH", "ACTION_STOP"]

#: Version of the ``health`` event payload / summary dict layout.
HEALTH_SCHEMA = 1

# -- diagnosis kinds ---------------------------------------------------------

STALL = "no-new-coverage"
SOLVER_DOMINATED = "solver-dominated"
FRONTIER_PRESSURE = "frontier-pressure"
POOL_PRESSURE = "term-pool-pressure"

DIAGNOSES = (STALL, SOLVER_DOMINATED, FRONTIER_PRESSURE, POOL_PRESSURE)

# -- degradation actions -----------------------------------------------------

ACTION_NONE = "none"        # observe only (the default for everything)
ACTION_MERGE = "merge"      # force a merge pass over the frontier
ACTION_SWITCH = "switch"    # switch the exploration strategy
ACTION_STOP = "stop"        # stop with stop_reason = "pressure"

ACTIONS = (ACTION_NONE, ACTION_MERGE, ACTION_SWITCH, ACTION_STOP)


class HealthConfig:
    """Tunables for the sampler and the watchdog.

    The defaults are deliberately lenient: on a healthy run (e.g. the
    CI exerciser kernel) the watchdog must produce **zero** diagnoses.
    Tighten the budgets to make it speak.
    """

    def __init__(self,
                 sample_every_steps: int = 256,
                 min_interval_s: float = 0.0,
                 top_k: int = 5,
                 max_scan: int = 4096,
                 history: int = 512,
                 stall_window: Optional[int] = 16,
                 solver_share_threshold: Optional[float] = 0.9,
                 solver_min_window_s: float = 0.05,
                 frontier_budget: Optional[int] = None,
                 pool_budget: Optional[int] = None,
                 actions: Optional[Dict[str, str]] = None,
                 switch_strategy: str = "bfs"):
        if sample_every_steps < 1:
            raise ValueError("sample_every_steps must be >= 1")
        # -- sampler cadence.  With min_interval_s == 0 (the default)
        # the cadence is a pure function of the step count, so the
        # monitor is bit-for-bit deterministic across runs.
        self.sample_every_steps = sample_every_steps
        self.min_interval_s = min_interval_s
        # -- heaviest-states view: scan at most max_scan frontier
        # states, report the top_k by footprint.
        self.top_k = top_k
        self.max_scan = max_scan
        # -- bounded in-memory sample history (the JSONL sink keeps
        # everything; this is for programmatic access and `report()`).
        self.history = history
        # -- watchdog thresholds (None disables the diagnosis).
        self.stall_window = stall_window
        self.solver_share_threshold = solver_share_threshold
        self.solver_min_window_s = solver_min_window_s
        self.frontier_budget = frontier_budget
        self.pool_budget = pool_budget
        # -- opt-in degradation: {diagnosis kind: action}.  Anything
        # not listed is observe-only.
        self.actions = dict(actions) if actions else {}
        for kind, action in self.actions.items():
            if kind not in DIAGNOSES:
                raise ValueError("unknown diagnosis %r (have: %s)"
                                 % (kind, ", ".join(DIAGNOSES)))
            if action not in ACTIONS:
                raise ValueError("unknown action %r (have: %s)"
                                 % (action, ", ".join(ACTIONS)))
        self.switch_strategy = switch_strategy


class HealthMonitor:
    """Periodic sampler + watchdog, driven by ``Engine.explore``.

    Lifecycle::

        monitor = HealthMonitor(HealthConfig(...), obs)
        monitor.begin(engine, result)       # per-exploration reset
        ... per popped state:
        diagnoses = monitor.tick()          # cheap guard; maybe sample
        ... at the end:
        telemetry["health"] = monitor.finish()

    ``tick()`` is the hot-path entry: one integer increment and one
    compare until a sample is due.  All sampling is read-only against
    the engine; see the module docstring for the determinism contract.
    """

    def __init__(self, config: Optional[HealthConfig] = None, obs=None):
        self.config = config if config is not None else HealthConfig()
        self._obs = obs
        self.samples: deque = deque(maxlen=self.config.history)
        self.diagnoses: List[Dict[str, object]] = []
        self.total_samples = 0
        self._engine = None
        self._result = None
        # Instruments (re-bound in begin() once obs is known).
        self._bind_obs(obs)
        self._reset_window()

    def _bind_obs(self, obs) -> None:
        if obs is None:
            from .metrics import NULL_COUNTER, NULL_GAUGE
            self._c_samples = NULL_COUNTER
            self._c_diagnoses = NULL_COUNTER
            self._g_frontier = NULL_GAUGE
            self._g_sps = NULL_GAUGE
            self._g_coverage = NULL_GAUGE
            self._g_pool = NULL_GAUGE
            self._tracer = None
        else:
            metrics = obs.metrics
            self._c_samples = metrics.counter("health.samples")
            self._c_diagnoses = metrics.counter("health.diagnoses")
            self._g_frontier = metrics.gauge("health.frontier")
            self._g_sps = metrics.gauge("health.steps_per_sec")
            self._g_coverage = metrics.gauge("health.coverage")
            self._g_pool = metrics.gauge("health.pool_interned")
            self._tracer = obs.tracer

    def _reset_window(self) -> None:
        self._ticks = 0
        self._next_tick = self.config.sample_every_steps
        self._last_ticks = 0
        self._last_time = 0.0
        self._solver_last: Dict[str, float] = {}
        self._pool_begin: Dict[str, int] = {}
        self._last_progress = None
        self._stall_streak = 0
        self._peak_frontier = 0
        self._start_time = 0.0

    # -- lifecycle ----------------------------------------------------------

    def begin(self, engine, result) -> None:
        """Arm the monitor for one exploration (resets all baselines)."""
        from ..smt import terms as T
        self._engine = engine
        self._result = result
        if engine is not None and self._obs is not engine.obs:
            self._obs = engine.obs
            self._bind_obs(engine.obs)
        self.samples.clear()
        self.diagnoses = []
        self.total_samples = 0
        self._reset_window()
        now = time.perf_counter()
        self._start_time = now
        self._last_time = now
        if engine is not None:
            self._solver_last = engine.solver.stats.as_dict()
        self._pool_begin = T.get_pool().stats()

    def tick(self) -> Optional[List[Dict[str, object]]]:
        """One engine step.  Returns new diagnoses when a sample fired
        and the watchdog spoke, else ``None`` (the overwhelmingly
        common case: one increment + one compare)."""
        self._ticks += 1
        if self._ticks < self._next_tick:
            return None
        now = time.perf_counter()
        if (self.config.min_interval_s > 0.0
                and now - self._last_time < self.config.min_interval_s):
            # Too soon in wall time; re-arm a full step window out.
            self._next_tick = self._ticks + self.config.sample_every_steps
            return None
        self._next_tick = self._ticks + self.config.sample_every_steps
        return self._sample(now)

    def sample_now(self) -> Dict[str, object]:
        """Force an immediate sample (tests / examples / final flush)."""
        self._sample(time.perf_counter())
        return self.samples[-1]

    def finish(self) -> Dict[str, object]:
        """Seal the run and return the summary dict (stored by the
        engine under ``result.telemetry["health"]``)."""
        return self.summary()

    # -- sampling -----------------------------------------------------------

    def _sample(self, now: float) -> Optional[List[Dict[str, object]]]:
        from ..smt import terms as T
        engine, result = self._engine, self._result
        if engine is None or result is None:
            return None
        elapsed = now - self._last_time
        steps_delta = self._ticks - self._last_ticks
        steps_per_sec = steps_delta / elapsed if elapsed > 0 else 0.0
        frontier = len(engine.strategy)
        if frontier > self._peak_frontier:
            self._peak_frontier = frontier
        solver_delta = engine.solver.stats.delta_since(self._solver_last)
        solve_time = float(solver_delta.get("solve_time", 0.0))
        solver_share = solve_time / elapsed if elapsed > 0 else 0.0
        checks = int(solver_delta.get("checks", 0))
        cached = int(solver_delta.get("cache_hit_sat", 0)
                     + solver_delta.get("cache_hit_unsat", 0)
                     + solver_delta.get("cache_model_reuse", 0)
                     + solver_delta.get("cache_subsumed_unsat", 0)
                     + solver_delta.get("frame_reuse", 0))
        hit_ratio = cached / checks if checks else 0.0
        pool_now = T.get_pool().stats()
        pool_grown = pool_now["interned"] - self._pool_begin.get(
            "interned", 0)
        coverage = len(result.visited_pcs)
        sample: Dict[str, object] = {
            "v": HEALTH_SCHEMA,
            "seq": self.total_samples,
            "t": now - self._start_time,
            "steps": self._ticks,
            "steps_per_sec": steps_per_sec,
            "instructions": result.instructions_executed,
            "frontier": frontier,
            "coverage": coverage,
            "paths": len(result.paths),
            "defects": len(result.defects),
            "solver": {
                "checks": checks,
                "solve_time": solve_time,
                "share": solver_share,
                "hit_ratio": hit_ratio,
            },
            "pool": {
                "interned": pool_now["interned"],
                "grown": pool_grown,
            },
            "top_states": self._top_states(engine),
        }
        self.samples.append(sample)
        self.total_samples += 1
        self._c_samples.inc()
        self._g_frontier.set(frontier)
        self._g_sps.set(int(steps_per_sec))
        self._g_coverage.set(coverage)
        self._g_pool.set(pool_now["interned"])
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(HEALTH, state_id=-1, pc=0, sample=sample)
            tracer.flush()   # live tails (`repro top`) see it mid-run
        fired = self._watchdog(sample, solver_share, elapsed)
        self._last_time = now
        self._last_ticks = self._ticks
        self._solver_last = engine.solver.stats.as_dict()
        return fired if fired else None

    def _top_states(self, engine) -> List[Dict[str, int]]:
        """Footprints of the top-k heaviest frontier states."""
        config = self.config
        if config.top_k <= 0:
            return []
        scanned = []
        for index, state in enumerate(engine.strategy.states()):
            if index >= config.max_scan:
                break
            scanned.append(state.footprint())
        scanned.sort(key=lambda f: (f["path_terms"] + f["pages"],
                                    f["state"]),
                     reverse=True)
        return scanned[:config.top_k]

    # -- watchdog -----------------------------------------------------------

    def _watchdog(self, sample, solver_share: float,
                  elapsed: float) -> List[Dict[str, object]]:
        config = self.config
        fired: List[Dict[str, object]] = []
        # Stall: no new coverage, paths or defects for a window of
        # consecutive samples (the run is burning steps, finding
        # nothing).
        progress = (sample["coverage"], sample["paths"],
                    sample["defects"])
        if progress == self._last_progress:
            self._stall_streak += 1
        else:
            self._stall_streak = 0
            self._last_progress = progress
        if (config.stall_window is not None
                and self._stall_streak >= config.stall_window):
            fired.append(self._diagnose(
                STALL, sample,
                "no new coverage/paths/defects for %d samples (~%d steps)"
                % (self._stall_streak,
                   self._stall_streak * config.sample_every_steps),
                streak=self._stall_streak))
        # Solver-dominated interval: solved-query wall time eats the
        # sampling window (cache hits deliberately do not count; they
        # are free by the accounting contract).
        if (config.solver_share_threshold is not None
                and elapsed >= config.solver_min_window_s
                and solver_share >= config.solver_share_threshold):
            fired.append(self._diagnose(
                SOLVER_DOMINATED, sample,
                "solver took %.0f%% of the last %.2fs window"
                % (100.0 * solver_share, elapsed)))
        # Frontier pressure: pending-state count beyond the budget.
        if (config.frontier_budget is not None
                and sample["frontier"] > config.frontier_budget):
            fired.append(self._diagnose(
                FRONTIER_PRESSURE, sample,
                "frontier %d > budget %d"
                % (sample["frontier"], config.frontier_budget)))
        # Term-pool pressure: net pool growth beyond the budget.
        if (config.pool_budget is not None
                and sample["pool"]["grown"] > config.pool_budget):
            fired.append(self._diagnose(
                POOL_PRESSURE, sample,
                "term pool grew by %d terms > budget %d"
                % (sample["pool"]["grown"], config.pool_budget)))
        return fired

    def _diagnose(self, kind: str, sample, detail: str,
                  streak: int = 0) -> Dict[str, object]:
        action = self.config.actions.get(kind, ACTION_NONE)
        diagnosis: Dict[str, object] = {
            "v": HEALTH_SCHEMA,
            "diagnosis": kind,
            "detail": detail,
            "seq": sample["seq"],
            "t": sample["t"],
            "action": action,
        }
        if streak:
            diagnosis["streak"] = streak
        self.diagnoses.append(diagnosis)
        self._c_diagnoses.inc()
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(WATCHDOG, state_id=-1, pc=0, **diagnosis)
            tracer.flush()
        return diagnosis

    # -- reporting ----------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """JSON-able digest (lands in ``result.telemetry["health"]``)."""
        return {
            "v": HEALTH_SCHEMA,
            "samples": self.total_samples,
            "every": self.config.sample_every_steps,
            "peak_frontier": self._peak_frontier,
            "last": dict(self.samples[-1]) if self.samples else None,
            "diagnoses": list(self.diagnoses),
        }

    def report(self) -> str:
        """Human-readable monitor + watchdog report."""
        lines = ["== health monitor =="]
        lines.append("samples: %d (every %d steps)"
                     % (self.total_samples,
                        self.config.sample_every_steps))
        if self.samples:
            last = self.samples[-1]
            solver = last["solver"]
            pool = last["pool"]
            lines.append(
                "last: steps/s=%.0f frontier=%d coverage=%d paths=%d "
                "defects=%d" % (last["steps_per_sec"], last["frontier"],
                                last["coverage"], last["paths"],
                                last["defects"]))
            lines.append("solver: share=%.2f hit_ratio=%.2f checks=%d"
                         % (solver["share"], solver["hit_ratio"],
                            solver["checks"]))
            lines.append("pool: interned=%d (grown %+d)"
                         % (pool["interned"], pool["grown"]))
            if last["top_states"]:
                lines.append("heaviest states:")
                for foot in last["top_states"]:
                    lines.append(
                        "  #%-5d pc=%#x path_terms=%d pages=%d steps=%d"
                        % (foot["state"], foot["pc"],
                           foot["path_terms"], foot["pages"],
                           foot["steps"]))
        if self.diagnoses:
            lines.append("watchdog: %d %s"
                         % (len(self.diagnoses),
                            "diagnosis" if len(self.diagnoses) == 1
                            else "diagnoses"))
            for diagnosis in self.diagnoses:
                lines.append("  [%s] %s action=%s"
                             % (diagnosis["diagnosis"],
                                diagnosis["detail"],
                                diagnosis["action"]))
        else:
            lines.append("watchdog: healthy (0 diagnoses)")
        return "\n".join(lines)


def health_summary_line(health) -> Optional[str]:
    """One-line digest of a ``telemetry["health"]`` summary dict, or
    ``None`` when the monitor never ran.  Shared by
    :meth:`ExplorationResult.health_line
    <repro.core.reporting.ExplorationResult.health_line>` and
    ``repro stats``."""
    if not isinstance(health, dict) or not health.get("samples"):
        return None
    last = health.get("last") or {}
    solver = last.get("solver") or {}
    return ("health: samples=%d steps/s=%.0f frontier_peak=%d "
            "solver_share=%.2f diagnoses=%d"
            % (health.get("samples", 0),
               last.get("steps_per_sec", 0.0),
               health.get("peak_frontier", 0),
               solver.get("share", 0.0),
               len(health.get("diagnoses") or ())))
