"""Unified observability for the generated engines.

One :class:`Obs` handle bundles the three telemetry layers:

* ``obs.metrics``  — :class:`~repro.obs.metrics.MetricsRegistry`
  (counters / gauges / histograms; cheap, enabled by default),
* ``obs.tracer``   — :class:`~repro.obs.events.EventTracer`
  (typed events to pluggable sinks; disabled until a sink is attached),
* ``obs.profiler`` — :class:`~repro.obs.profile.PhaseProfiler`
  (per-phase wall-time breakdown; opt-in, ``--profile``).

The engine owns one ``Obs`` (threaded through
:class:`~repro.core.executor.EngineConfig`); the solver, decoder and
frontier strategies borrow it.  ``Obs.disabled()`` turns every layer
into a no-op for overhead-sensitive baselines.

See ``docs/OBSERVABILITY.md`` for the event schema and worked examples.
"""

from __future__ import annotations

from typing import Dict, Optional

from .attr import (  # noqa: F401
    AttrConfig,
    CostAttribution,
    annotate_spec_costs,
    hot_report,
    hot_rules_lines,
)
from .compare import (  # noqa: F401
    DiffRow,
    RunComparison,
    compare_runs,
    extract_metrics,
)
from .events import (  # noqa: F401
    DECODE_CACHE,
    DEFECT,
    EVENT_KINDS,
    FORK,
    HEALTH,
    MERGE,
    PATH_END,
    PRUNE,
    SCHEMA_VERSION,
    SOLVER_CACHE,
    SOLVER_CHECK,
    STEP,
    STORE,
    WATCHDOG,
    Event,
    EventTracer,
)
from .health import (  # noqa: F401
    ACTIONS,
    DIAGNOSES,
    FRONTIER_PRESSURE,
    POOL_PRESSURE,
    SOLVER_DOMINATED,
    STALL,
    HealthConfig,
    HealthMonitor,
    health_summary_line,
)
from .metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .flame import chrome_trace, collapsed_stacks, render_collapsed  # noqa: F401,E501
from .profile import PhaseProfiler, PhaseStats  # noqa: F401
from .prom import MetricsServer, render_prom, render_prom_snapshot  # noqa: F401
from .sinks import (  # noqa: F401
    ConsoleSink,
    JsonlSink,
    RingBufferSink,
    RunFile,
    TelemetryError,
    load_run,
    read_jsonl,
    read_run,
)
from .speccov import (  # noqa: F401
    IsaSpecCoverage,
    SpecCoverage,
    rule_coverage_from_visited,
)
from .tree import ExecutionTree, FlightRecorder, TreeEdge, TreeNode  # noqa: F401

__all__ = ["Obs", "MetricsRegistry", "Counter", "Gauge", "Histogram",
           "AttrConfig", "CostAttribution", "annotate_spec_costs",
           "hot_report", "hot_rules_lines",
           "chrome_trace", "collapsed_stacks", "render_collapsed",
           "EventTracer", "Event", "EVENT_KINDS", "SCHEMA_VERSION",
           "PhaseProfiler",
           "PhaseStats", "RingBufferSink", "JsonlSink", "ConsoleSink",
           "read_jsonl", "read_run", "load_run", "RunFile",
           "TelemetryError",
           "ExecutionTree", "FlightRecorder", "TreeEdge", "TreeNode",
           "SpecCoverage", "IsaSpecCoverage", "rule_coverage_from_visited",
           "HealthConfig", "HealthMonitor", "health_summary_line",
           "DIAGNOSES", "ACTIONS", "STALL", "SOLVER_DOMINATED",
           "FRONTIER_PRESSURE", "POOL_PRESSURE",
           "MetricsServer", "render_prom", "render_prom_snapshot",
           "RunComparison", "DiffRow", "compare_runs", "extract_metrics",
           "STEP", "FORK", "MERGE", "SOLVER_CHECK", "SOLVER_CACHE",
           "PATH_END", "DEFECT", "DECODE_CACHE", "PRUNE", "HEALTH",
           "WATCHDOG", "STORE"]


class Obs:
    """Bundle of metrics registry, event tracer and phase profiler."""

    def __init__(self, metrics: bool = True, profile: bool = False,
                 isa: str = "?"):
        self.metrics = MetricsRegistry(enabled=metrics)
        self.tracer = EventTracer(isa=isa)
        self.profiler = PhaseProfiler(enabled=profile)

    # -- canned configurations ---------------------------------------------

    @classmethod
    def default(cls) -> "Obs":
        """Enabled counters, no event sink, no profiler (the engine
        default: negligible overhead, still countable)."""
        return cls(metrics=True, profile=False)

    @classmethod
    def disabled(cls) -> "Obs":
        """Every layer off — for overhead baselines and ablations."""
        return cls(metrics=False, profile=False)

    # -- convenience --------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return (self.metrics.enabled or self.tracer.enabled
                or self.profiler.enabled)

    def set_isa(self, isa: str) -> None:
        self.tracer.isa = isa

    def add_sink(self, sink) -> None:
        self.tracer.add_sink(sink)

    def snapshot(self, counters_since: Optional[Dict[str, int]] = None
                 ) -> Dict[str, object]:
        """One JSON-able view of all three layers.

        ``counters_since`` (a ``metrics.counters_snapshot()``) scopes the
        counter section to a single exploration on a long-lived engine.
        """
        metrics = self.metrics.snapshot()
        if counters_since is not None:
            metrics["counters"] = self.metrics.delta_since(counters_since)
        return {
            "isa": self.tracer.isa,
            "metrics": metrics,
            "phases": self.profiler.snapshot(),
            "events_emitted": self.tracer.emitted,
        }

    def close(self) -> None:
        self.tracer.close()
