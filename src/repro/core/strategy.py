"""Path-exploration strategies (the frontier data structure).

The engine asks the strategy which pending state to continue next.  Four
strategies back Figure 1: depth-first, breadth-first, uniform-random, and
coverage-guided (prefer states sitting at less-visited program counters).
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections import deque
from typing import Dict, Optional

from .state import SymState

__all__ = ["Strategy", "DfsStrategy", "BfsStrategy", "RandomStrategy",
           "CoverageStrategy", "ObservedStrategy", "make_strategy",
           "STRATEGIES"]


class Strategy:
    """Frontier interface: push pending states, pop the next to run."""

    name = "abstract"

    def push(self, state: SymState) -> None:
        raise NotImplementedError

    def pop(self) -> SymState:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def states(self):
        """Iterate the pending states (read-only, arbitrary order).

        Used by the health monitor's top-k heaviest-states view; must
        not mutate the frontier.  Default: nothing to show.
        """
        return iter(())

    def __bool__(self) -> bool:
        return len(self) > 0


class DfsStrategy(Strategy):
    """Depth-first: follow one path to completion before backtracking."""

    name = "dfs"

    def __init__(self):
        self._stack = []

    def push(self, state: SymState) -> None:
        self._stack.append(state)

    def pop(self) -> SymState:
        return self._stack.pop()

    def states(self):
        return iter(self._stack)

    def __len__(self):
        return len(self._stack)


class BfsStrategy(Strategy):
    """Breadth-first: advance all paths in lockstep."""

    name = "bfs"

    def __init__(self):
        self._queue = deque()

    def push(self, state: SymState) -> None:
        self._queue.append(state)

    def pop(self) -> SymState:
        return self._queue.popleft()

    def states(self):
        return iter(self._queue)

    def __len__(self):
        return len(self._queue)


class RandomStrategy(Strategy):
    """Uniform-random frontier selection (seeded for reproducibility)."""

    name = "random"

    def __init__(self, seed: int = 0):
        self._items = []
        self._rng = random.Random(seed)

    def push(self, state: SymState) -> None:
        self._items.append(state)

    def pop(self) -> SymState:
        index = self._rng.randrange(len(self._items))
        self._items[index], self._items[-1] = (self._items[-1],
                                               self._items[index])
        return self._items.pop()

    def states(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)


class CoverageStrategy(Strategy):
    """Prefer states whose program counter has been visited least.

    The engine bumps :meth:`visit` on every executed pc; a state's key is
    the visit count of the pc it is parked at, so the frontier drains
    toward unexplored code first.
    """

    name = "coverage"

    def __init__(self):
        self._heap = []
        self._visits: Dict[int, int] = {}
        self._tie = itertools.count()

    def visit(self, pc: int) -> None:
        self._visits[pc] = self._visits.get(pc, 0) + 1

    def push(self, state: SymState) -> None:
        key = self._visits.get(state.pc, 0)
        heapq.heappush(self._heap, (key, next(self._tie), state))

    def pop(self) -> SymState:
        return heapq.heappop(self._heap)[2]

    def states(self):
        return (entry[2] for entry in self._heap)

    def __len__(self):
        return len(self._heap)


class ObservedStrategy(Strategy):
    """Telemetry shim around any frontier (see :mod:`repro.obs`).

    Counts pushes/pops, tracks the high-water frontier size, and charges
    frontier operations to the ``strategy`` profiler phase.  The engine
    wraps its strategy with this when observability is enabled; the
    wrapped strategy is reachable as ``.inner`` (one level of wrapping
    only — the merging frontier sits *inside* so merges are observed
    too).
    """

    name = "observed"

    def __init__(self, inner: Strategy, obs):
        self.inner = inner
        self._profiler = obs.profiler
        self._profile_on = obs.profiler.enabled
        self._pushes = obs.metrics.counter("strategy.pushes")
        self._pops = obs.metrics.counter("strategy.pops")
        self._peak = obs.metrics.gauge("strategy.frontier_peak")

    def push(self, state: SymState) -> None:
        if self._profile_on:
            with self._profiler.phase("strategy"):
                self.inner.push(state)
        else:
            self.inner.push(state)
        self._pushes.inc()
        self._peak.set_max(len(self.inner))

    def pop(self) -> SymState:
        if self._profile_on:
            with self._profiler.phase("strategy"):
                state = self.inner.pop()
        else:
            state = self.inner.pop()
        self._pops.inc()
        return state

    def states(self):
        return self.inner.states()

    def __len__(self) -> int:
        return len(self.inner)

    def __getattr__(self, name):
        # Transparent delegation (e.g. MergingFrontier.merges,
        # CoverageStrategy.visit) so callers can ignore the shim.
        return getattr(self.inner, name)


STRATEGIES = {
    "dfs": DfsStrategy,
    "bfs": BfsStrategy,
    "random": RandomStrategy,
    "coverage": CoverageStrategy,
}


def make_strategy(name: str, seed: int = 0) -> Strategy:
    """Construct a strategy by name ('dfs', 'bfs', 'random', 'coverage')."""
    if name not in STRATEGIES:
        raise ValueError("unknown strategy %r (have: %s)"
                         % (name, ", ".join(sorted(STRATEGIES))))
    if name == "random":
        return RandomStrategy(seed)
    return STRATEGIES[name]()
