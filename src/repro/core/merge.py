"""Opportunistic state merging (veritesting-lite).

Two pending states parked at the same program counter whose differences
are *register contents only* can be merged into one state whose registers
are ``ite`` terms over the paths' distinguishing conditions.  On
diamond-shaped code this collapses the 2^n path explosion of n
independent branches into a linear number of states, trading path count
for term size — the classic static-symbolic-execution trade-off.

Soundness rests on two facts:

* Sibling paths from a deterministic fork tree carry *disjoint* extra
  conditions (they disagree on at least the branch that split them), so
  the merged ``ite`` selector picks exactly the right arm for any input.
* Merging requires equal input positions, identical memory contents and
  identical output streams; anything else stays unmerged.

Enabled via ``EngineConfig(merge_states=True)``; ablated in Table 6.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..smt import terms as T
from .state import SymState
from .strategy import Strategy

__all__ = ["try_merge", "MergingFrontier"]


def _split_paths(a: SymState, b: SymState):
    """Common path-condition prefix plus each state's extra conditions."""
    prefix_len = 0
    for cond_a, cond_b in zip(a.path_condition, b.path_condition):
        if cond_a is not cond_b:
            break
        prefix_len += 1
    return (a.path_condition[:prefix_len],
            a.path_condition[prefix_len:],
            b.path_condition[prefix_len:])


def try_merge(a: SymState, b: SymState) -> Optional[SymState]:
    """Merge two pending states if structurally compatible, else None."""
    if a.pc != b.pc or a.model is not b.model:
        return None
    if len(a.input_vars) != len(b.input_vars):
        return None
    if len(a.output) != len(b.output):
        return None
    if not all(x is y or x == y for x, y in zip(a.output, b.output)):
        return None
    if not _same_memory(a.memory, b.memory):
        return None
    prefix, extra_a, extra_b = _split_paths(a, b)
    if not extra_a and not extra_b:
        # Identical path conditions: states are duplicates; keep one.
        return a
    select_a = T.conjoin(extra_a)
    merged = a.fork()
    merged.parent_id = a.state_id
    merged.path_condition = prefix + [T.or_(select_a, T.conjoin(extra_b))]
    for name, regs_a in a.regfiles.items():
        regs_b = b.regfiles[name]
        merged_regs = merged.regfiles[name]
        for index, (ra, rb) in enumerate(zip(regs_a, regs_b)):
            if ra is not rb:
                merged_regs[index] = T.ite(select_a, ra, rb)
    for name, ra in a.registers.items():
        rb = b.registers[name]
        if ra is not rb:
            merged.registers[name] = T.ite(select_a, ra, rb)
    merged.steps = max(a.steps, b.steps)
    return merged


def _same_memory(mem_a, mem_b) -> bool:
    pages_a, pages_b = mem_a._pages, mem_b._pages
    if pages_a.keys() != pages_b.keys():
        return False
    for key, page_a in pages_a.items():
        page_b = pages_b[key]
        if page_a is page_b:
            continue
        if page_a.keys() != page_b.keys():
            return False
        for offset, term_a in page_a.items():
            term_b = page_b[offset]
            if term_a is not term_b and term_a != term_b:
                return False
    return True


class MergingFrontier(Strategy):
    """Wraps any strategy, merging pushes that land on a buffered pc.

    Merged-away states stay inside the inner strategy but are marked dead
    and skipped on pop (strategies cannot remove arbitrary elements).
    """

    name = "merging"

    def __init__(self, inner: Strategy, obs=None):
        self.inner = inner
        self._by_pc: Dict[int, SymState] = {}
        self._dead: set = set()
        self._live = 0
        self.merges = 0
        # Observability (see repro.obs): merge counter + 'merge' events.
        self._obs = obs
        if obs is not None:
            self._merge_counter = obs.metrics.counter("engine.merges")
        else:
            from ..obs.metrics import NULL_COUNTER
            self._merge_counter = NULL_COUNTER

    def push(self, state: SymState) -> None:
        candidate = self._by_pc.get(state.pc)
        if candidate is not None and candidate.state_id not in self._dead:
            merged = try_merge(candidate, state)
            if merged is not None:
                self._dead.add(candidate.state_id)
                self._live -= 1
                self.merges += 1
                self._merge_counter.inc()
                if (self._obs is not None
                        and self._obs.tracer.enabled):
                    self._obs.tracer.emit(
                        "merge", state_id=merged.state_id, pc=merged.pc,
                        merged_from=[candidate.state_id, state.state_id],
                        duplicate=merged is candidate)
                if merged is not candidate:
                    self._by_pc[state.pc] = merged
                    self.inner.push(merged)
                    self._live += 1
                else:
                    # Duplicate state: resurrect the candidate.
                    self._dead.discard(candidate.state_id)
                    self._live += 1
                return
        self._by_pc[state.pc] = state
        self.inner.push(state)
        self._live += 1

    def pop(self) -> SymState:
        while True:
            state = self.inner.pop()
            if state.state_id in self._dead:
                self._dead.discard(state.state_id)
                continue
            self._live -= 1
            if self._by_pc.get(state.pc) is state:
                del self._by_pc[state.pc]
            return state

    def states(self):
        """Live pending states (merged-away tombstones are skipped)."""
        return (state for state in self.inner.states()
                if state.state_id not in self._dead)

    def __len__(self) -> int:
        return self._live
