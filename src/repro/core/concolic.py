"""Concolic (concrete-seeded) execution on top of the symbolic engine.

Generational search in the SAGE style: run the path the seed input takes,
collect the not-taken branch condition at every fork, then solve each
"flip" (path prefix + negated branch) for a new input.  Each new input is
itself executed, until no unseen inputs remain or the budget runs out.

Reuses the engine's single-step machinery, so the ISA-independence of the
generated engine carries over unchanged.

Sibling-flip queries are the solver query cache's best customer: every
flip shares the path prefix of its generation, and later generations
re-derive earlier flips verbatim (a sibling reached through a different
seed poses the exact same query).  With the engine's default
``use_solver_cache=True`` those re-derivations are exact cache hits and
prefix-related ones ride model reuse, so the per-generation solve cost
stays proportional to the *new* branches only.  The counters show up in
``self.result.solver_cache_line()`` like any exploration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..smt import SAT
from ..smt import terms as T
from .executor import Engine
from .reporting import ExplorationResult

__all__ = ["ConcolicExplorer", "ConcolicRun"]


class ConcolicRun:
    """Outcome of one concrete-path execution."""

    def __init__(self, input_bytes: bytes, status: str, steps: int):
        self.input_bytes = input_bytes
        self.status = status       # 'halted', 'trapped', 'depth-limit', ...
        self.steps = steps

    def __repr__(self):
        return "<ConcolicRun %r %s (%d steps)>" % (
            self.input_bytes, self.status, self.steps)


class ConcolicExplorer:
    """Generational concolic search driver over an :class:`Engine`."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self.runs: List[ConcolicRun] = []
        self.result = ExplorationResult()
        self._seen_inputs: Set[bytes] = set()

    # -- public API ---------------------------------------------------------------

    def explore(self, seed: bytes = b"",
                max_runs: int = 64) -> ExplorationResult:
        """Run generational search from ``seed``; returns merged results."""
        engine = self.engine
        engine._result = self.result
        engine._defect_sites = set()
        solver_before = engine.solver.stats.as_dict()
        try:
            queue: List[bytes] = [seed]
            while queue and len(self.runs) < max_runs:
                input_bytes = queue.pop(0)
                if input_bytes in self._seen_inputs:
                    continue
                self._seen_inputs.add(input_bytes)
                flips = self._run_one(input_bytes)
                for flip_input in flips:
                    if flip_input not in self._seen_inputs:
                        queue.append(flip_input)
        finally:
            engine._result = None
        # Per-exploration delta (not lifetime-cumulative; see the same
        # fix in Engine.explore).
        self.result.solver_stats = self.engine.solver.stats.delta_since(
            solver_before)
        return self.result

    # -- one concrete path --------------------------------------------------------

    def _input_model(self, input_bytes: bytes) -> Dict[str, int]:
        return {"in_%d" % i: byte for i, byte in enumerate(input_bytes)}

    def _run_one(self, input_bytes: bytes) -> List[bytes]:
        """Follow the path of ``input_bytes``; return flipped inputs."""
        engine = self.engine
        model = self._input_model(input_bytes)
        state = engine.initial_state()
        flips: List[bytes] = []
        status = "running"
        while state.steps < engine.config.max_steps_per_path:
            before_paths = len(self.result.paths)
            before_defects = len(self.result.defects)
            successors = engine._step(state, self.result)
            if not successors:
                if len(self.result.defects) > before_defects:
                    status = "trapped"
                elif len(self.result.paths) > before_paths:
                    status = self.result.paths[-1].status
                else:
                    status = "dead"
                break
            state = self._follow(successors, model, flips)
            if state is None:
                status = "diverged"
                break
        else:
            status = "depth-limit"
        run = ConcolicRun(input_bytes, status, 0 if state is None
                          else state.steps)
        self.runs.append(run)
        return flips

    def _follow(self, successors, model, flips):
        """Pick the successor consistent with the concrete input; queue
        solver-flipped inputs for every sibling."""
        chosen = None
        for candidate in successors:
            holds = all(T.evaluate(cond, model) == 1
                        for cond in candidate.path_condition)
            if holds and chosen is None:
                chosen = candidate
            else:
                flipped = self._solve_sibling(candidate)
                if flipped is not None:
                    flips.append(flipped)
        return chosen

    def _solve_sibling(self, state) -> Optional[bytes]:
        # Rides the solver's query cache: generations re-pose sibling
        # queries (same flip reached via different seeds) as exact
        # repeats, and shared path prefixes feed the model-reuse layer.
        if self.engine.solver.check(extra=state.path_condition) != SAT:
            return None
        return state.input_bytes_from_model(self.engine.solver.model())
