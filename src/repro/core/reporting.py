"""Defect reports and exploration results."""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["Defect", "PathResult", "ExplorationResult",
           "solver_cache_summary",
           "DIV_BY_ZERO", "OOB_ACCESS", "UNINIT_READ", "TRAP",
           "INVALID_INSTRUCTION", "WRITE_TO_CODE", "TAINTED_CONTROL"]

# Defect kinds (the suite's CWE-ish taxonomy).
DIV_BY_ZERO = "division-by-zero"          # CWE-369
OOB_ACCESS = "out-of-bounds-access"       # CWE-121/122/125/787
UNINIT_READ = "uninitialized-read"        # CWE-457
TRAP = "reachable-trap"                   # assertion failure
INVALID_INSTRUCTION = "invalid-instruction"
WRITE_TO_CODE = "write-to-code"
TAINTED_CONTROL = "tainted-control-flow"  # CWE-(94/)822: pc from input


def solver_cache_summary(stats) -> Optional[str]:
    """One-line digest of the solver-cache portion of a solver stats
    delta (``SolverStats.as_dict`` shape), or None when the cache layer
    never fired (e.g. under ``--no-solver-cache``).  Shared by
    :meth:`ExplorationResult.solver_cache_line` and ``repro stats``.
    """
    if not isinstance(stats, dict):
        return None
    hits = int(stats.get("cache_hit_sat", 0)
               + stats.get("cache_hit_unsat", 0))
    model_reuse = int(stats.get("cache_model_reuse", 0))
    subsumed = int(stats.get("cache_subsumed_unsat", 0))
    frame = int(stats.get("frame_reuse", 0))
    misses = int(stats.get("cache_misses", 0))
    if hits + model_reuse + subsumed + frame + misses == 0:
        return None
    probes = hits + model_reuse + subsumed + misses
    ratio = (hits + model_reuse + subsumed) / probes if probes else 0.0
    return ("solver cache: hits=%d model_reuse=%d subsumed=%d "
            "misses=%d frame_reuse=%d hit_ratio=%.2f"
            % (hits, model_reuse, subsumed, misses, frame, ratio))


class Defect:
    """One confirmed defect with a solver-produced triggering input."""

    def __init__(self, kind: str, pc: int, instruction: str, message: str,
                 input_bytes: bytes, model: Dict[str, int],
                 state_id: int, steps: int):
        self.kind = kind
        self.pc = pc
        self.instruction = instruction
        self.message = message
        self.input_bytes = input_bytes
        self.model = model
        self.state_id = state_id
        self.steps = steps

    def __repr__(self):
        return "<Defect %s @ %#x (%s) input=%r>" % (
            self.kind, self.pc, self.instruction, self.input_bytes)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "pc": self.pc,
                "instruction": self.instruction,
                "message": self.message,
                "input": self.input_bytes.hex(),
                "model": dict(self.model),
                "state_id": self.state_id, "steps": self.steps}

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Defect":
        return cls(record["kind"], record["pc"],
                   record.get("instruction", "?"),
                   record.get("message", ""),
                   bytes.fromhex(record.get("input", "") or ""),
                   dict(record.get("model") or {}),
                   record.get("state_id", -1), record.get("steps", 0))


class PathResult:
    """One completed path (halt / depth limit)."""

    def __init__(self, status: str, state, input_bytes: bytes,
                 exit_code: Optional[int] = None):
        self.status = status        # 'halted', 'depth-limit', 'pruned'
        self.state = state
        self.input_bytes = input_bytes
        self.exit_code = exit_code

    def __repr__(self):
        return "<PathResult %s exit=%r input=%r>" % (
            self.status, self.exit_code, self.input_bytes)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "status": self.status,
            "input": self.input_bytes.hex(),
            "exit_code": self.exit_code,
        }
        state_id = getattr(self.state, "state_id", None)
        if state_id is not None:
            record["state_id"] = state_id
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "PathResult":
        # Live SymState objects are not persisted: a loaded path carries
        # status/input/exit_code (what callers of a cached result use)
        # with ``state`` left as None.
        path = cls(record["status"], None,
                   bytes.fromhex(record.get("input", "") or ""),
                   record.get("exit_code"))
        path.state_id = record.get("state_id")
        return path


class ExplorationResult:
    """Everything one :meth:`Engine.explore` call produced."""

    def __init__(self):
        self.paths: List[PathResult] = []
        self.defects: List[Defect] = []
        self.instructions_executed = 0
        self.states_forked = 0
        self.states_pruned = 0
        # Per-exploration solver stats delta (not the solver's lifetime
        # cumulative numbers; see SolverStats.delta_since).
        self.solver_stats: Dict[str, float] = {}
        self.wall_time = 0.0
        self.stop_reason = "exhausted"
        # pc values executed (populated when the engine is configured
        # with collect_coverage=True); feeds repro.core.coverage.
        self.visited_pcs: set = set()
        # Telemetry snapshot from the engine's Obs handle (repro.obs):
        # {"isa", "metrics", "phases", "solver", "events_emitted", ...}.
        self.telemetry: Dict[str, object] = {}

    def to_dict(self) -> Dict[str, object]:
        """JSON-able snapshot for the run store (``result.json``).

        Everything except live :class:`SymState` handles round-trips;
        loaded paths have ``state=None`` (see
        :meth:`PathResult.from_dict`).
        """
        return {
            "paths": [path.to_dict() for path in self.paths],
            "defects": [defect.to_dict() for defect in self.defects],
            "instructions_executed": self.instructions_executed,
            "states_forked": self.states_forked,
            "states_pruned": self.states_pruned,
            "solver_stats": dict(self.solver_stats),
            "wall_time": self.wall_time,
            "stop_reason": self.stop_reason,
            "visited_pcs": sorted(self.visited_pcs),
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "ExplorationResult":
        result = cls()
        result.paths = [PathResult.from_dict(path)
                        for path in record.get("paths", [])]
        result.defects = [Defect.from_dict(defect)
                          for defect in record.get("defects", [])]
        result.instructions_executed = record.get(
            "instructions_executed", 0)
        result.states_forked = record.get("states_forked", 0)
        result.states_pruned = record.get("states_pruned", 0)
        result.solver_stats = dict(record.get("solver_stats") or {})
        result.wall_time = record.get("wall_time", 0.0)
        result.stop_reason = record.get("stop_reason", "exhausted")
        result.visited_pcs = set(record.get("visited_pcs") or ())
        result.telemetry = record.get("telemetry") or {}
        return result

    def defects_by_kind(self) -> Dict[str, List[Defect]]:
        grouped: Dict[str, List[Defect]] = {}
        for defect in self.defects:
            grouped.setdefault(defect.kind, []).append(defect)
        return grouped

    def first_defect(self, kind: Optional[str] = None) -> Optional[Defect]:
        for defect in self.defects:
            if kind is None or defect.kind == kind:
                return defect
        return None

    def summary(self) -> str:
        """One-line digest: paths, defects, steps, solver checks, time."""
        solver_checks = int(self.solver_stats.get("checks", 0))
        return ("paths=%d defects=%d instructions=%d forks=%d "
                "solver_checks=%d time=%.3fs stop=%s"
                % (len(self.paths), len(self.defects),
                   self.instructions_executed, self.states_forked,
                   solver_checks, self.wall_time, self.stop_reason))

    def solver_cache_line(self) -> Optional[str]:
        """One-line digest of the solver cache layer, or None when the
        cache never fired (e.g. ``--no-solver-cache``)."""
        return solver_cache_summary(self.solver_stats)

    def health_line(self) -> Optional[str]:
        """One-line digest of the live health monitor (samples taken,
        last steps/sec, peak frontier, watchdog diagnoses), or None
        when the run was not monitored."""
        from ..obs.health import health_summary_line
        return health_summary_line(self.telemetry.get("health"))

    def details(self) -> str:
        """The summary line, the solver-cache and health lines (when
        present), one line per defect."""
        lines = [self.summary()]
        cache_line = self.solver_cache_line()
        if cache_line is not None:
            lines.append("  " + cache_line)
        health_line = self.health_line()
        if health_line is not None:
            lines.append("  " + health_line)
        for defect in self.defects:
            lines.append("  %s at %#x: %s (input %r)"
                         % (defect.kind, defect.pc, defect.message,
                            defect.input_bytes))
        return "\n".join(lines)
