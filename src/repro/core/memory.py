"""Symbolic memory: byte-addressed, copy-on-write, backed by a memory map.

Memory is organized in pages of symbolic bytes over a concrete backing
store (the loaded program image).  Forking a path shares pages until one
side writes (copy-on-write) — the design choice ablated in Table 5
(``cow=False`` deep-copies on fork instead).

Address *terms* are resolved to concrete addresses by the executor (which
owns the solver); this module works with concrete addresses and symbolic
*contents*.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..smt import terms as T

__all__ = ["Region", "MemoryMap", "SymMemory", "PAGE_SIZE"]

PAGE_SIZE = 256


class Region:
    """One mapped address range."""

    def __init__(self, start: int, size: int, name: str = "region",
                 writable: bool = True, track_uninit: bool = False):
        self.start = start
        self.size = size
        self.name = name
        self.writable = writable
        # When set, reads of bytes never written (and not covered by the
        # initial image) are reported as uninitialized-read defects.
        self.track_uninit = track_uninit

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def __repr__(self):
        return "Region(%s: %#x..%#x)" % (self.name, self.start, self.end)


class MemoryMap:
    """The set of valid regions; anything outside is an OOB access."""

    def __init__(self, regions: Optional[List[Region]] = None):
        self.regions: List[Region] = list(regions or [])

    def add(self, region: Region) -> Region:
        self.regions.append(region)
        return region

    def region_for(self, addr: int) -> Optional[Region]:
        for region in self.regions:
            if region.contains(addr):
                return region
        return None

    def is_mapped(self, addr: int) -> bool:
        return self.region_for(addr) is not None

    def membership_term(self, addr_term: T.Term) -> T.Term:
        """Boolean term: ``addr`` lies inside some mapped region."""
        width = addr_term.width
        clauses = []
        for region in self.regions:
            lo = T.uge(addr_term, T.bv(region.start, width))
            hi = T.ult(addr_term, T.bv(region.end, width))
            clauses.append(T.and_(lo, hi))
        return T.disjoin(clauses)


class SymMemory:
    """Copy-on-write paged symbolic memory.

    A byte is, in priority order: a symbolic page entry (written during
    execution), a concrete image byte, or zero.
    """

    def __init__(self, memory_map: MemoryMap, cow: bool = True):
        self.map = memory_map
        self.cow = cow
        self._image: Dict[int, int] = {}
        self._pages: Dict[int, Dict[int, T.Term]] = {}
        self._owned: set = set()

    # -- image loading -----------------------------------------------------------

    def load_image(self, base: int, data: bytes, name: str = "image",
                   writable: bool = True) -> Region:
        """Install concrete backing bytes and map the region."""
        for offset, byte in enumerate(data):
            self._image[base + offset] = byte
        return self.map.add(Region(base, len(data), name, writable))

    def image_byte(self, addr: int) -> Optional[int]:
        return self._image.get(addr)

    # -- forking ---------------------------------------------------------------------

    def fork(self) -> "SymMemory":
        child = SymMemory.__new__(SymMemory)
        child.map = self.map
        child.cow = self.cow
        child._image = self._image          # immutable after load
        if self.cow:
            child._pages = dict(self._pages)
            child._owned = set()
            self._owned = set()             # parent's pages become shared too
        else:
            child._pages = {page: dict(content)
                            for page, content in self._pages.items()}
            child._owned = set(child._pages)
        return child

    # -- byte access --------------------------------------------------------------------

    def read_byte(self, addr: int) -> T.Term:
        page_index, offset = divmod(addr, PAGE_SIZE)
        page = self._pages.get(page_index)
        if page is not None:
            entry = page.get(offset)
            if entry is not None:
                return entry
        return T.bv(self._image.get(addr, 0), 8)

    def write_byte(self, addr: int, value: T.Term) -> None:
        if value.width != 8:
            raise T.WidthError("memory bytes are 8 bits, got %d" % value.width)
        page_index, offset = divmod(addr, PAGE_SIZE)
        page = self._pages.get(page_index)
        if page is None:
            page = {}
            self._pages[page_index] = page
            self._owned.add(page_index)
        elif page_index not in self._owned:
            page = dict(page)
            self._pages[page_index] = page
            self._owned.add(page_index)
        page[offset] = value

    def is_written(self, addr: int) -> bool:
        page = self._pages.get(addr // PAGE_SIZE)
        return page is not None and (addr % PAGE_SIZE) in page

    def is_initialized(self, addr: int) -> bool:
        """Written during execution, or backed by the image."""
        return self.is_written(addr) or addr in self._image

    # -- word access (executor-facing) ------------------------------------------------------

    def read(self, addr: int, size: int, endian: str) -> T.Term:
        """Read ``size`` bytes as one term in the given endianness."""
        byte_terms = [self.read_byte(addr + i) for i in range(size)]
        if endian == "little":
            byte_terms.reverse()            # concat wants MSB first
        return T.concat_many(byte_terms)

    def write(self, addr: int, value: T.Term, size: int, endian: str) -> None:
        if value.width != 8 * size:
            raise T.WidthError("write of %d-bit value with size %d"
                               % (value.width, size))
        for i in range(size):
            byte = T.extract(value, 8 * i + 7, 8 * i)
            if endian == "little":
                self.write_byte(addr + i, byte)
            else:
                self.write_byte(addr + size - 1 - i, byte)

    def concrete_window(self, addr: int, size: int) -> Optional[bytes]:
        """The bytes at ``addr`` if they are all concrete (fetch path)."""
        out = bytearray()
        for i in range(size):
            term = self.read_byte(addr + i)
            if not term.is_const():
                return None
            out.append(term.value)
        return bytes(out)

    @property
    def pages_touched(self) -> int:
        return len(self._pages)
