"""Execution tracing for the concrete simulator.

Wraps a :class:`~repro.isa.simulator.Simulator` step loop and records per
instruction: address, disassembly, registers written (with old/new
values), memory stores, and I/O.  Used for debugging generated semantics
and for producing human-readable replays of solver-found inputs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa.disasm import format_instruction
from ..isa.simulator import Simulator

__all__ = ["TraceEntry", "Tracer", "trace_run"]


class TraceEntry:
    """One executed instruction."""

    __slots__ = ("index", "address", "text", "reg_writes", "stores",
                 "output", "next_pc")

    def __init__(self, index: int, address: int, text: str):
        self.index = index
        self.address = address
        self.text = text
        self.reg_writes: List[Tuple[str, int, int]] = []   # name, old, new
        self.stores: List[Tuple[int, int]] = []            # addr, byte
        self.output: List[int] = []
        self.next_pc: Optional[int] = None

    def format(self) -> str:
        parts = ["%6d  %#08x  %-28s" % (self.index, self.address,
                                        self.text)]
        for name, old, new in self.reg_writes:
            parts.append("%s: %#x -> %#x" % (name, old, new))
        for addr, value in self.stores:
            parts.append("[%#x] <- %#04x" % (addr, value))
        if self.output:
            parts.append("out %r" % bytes(self.output))
        return "  ".join(parts)

    def __repr__(self):
        return "<TraceEntry %s>" % self.format().strip()


class Tracer:
    """Steps a simulator while recording a full trace."""

    def __init__(self, model, simulator: Simulator):
        self.model = model
        self.simulator = simulator
        self.entries: List[TraceEntry] = []

    def _snapshot_regs(self) -> Dict[Tuple[str, Optional[int]], int]:
        state = self.simulator.state
        snapshot = {}
        for name, values in state.regfiles.items():
            for index, value in enumerate(values):
                snapshot[(name, index)] = value
        for name, value in state.registers.items():
            snapshot[(name, None)] = value
        return snapshot

    def step(self) -> TraceEntry:
        state = self.simulator.state
        before_regs = self._snapshot_regs()
        before_mem = dict(state.memory)
        before_out = len(state.output)
        address = state.pc

        result = self.simulator.step()

        entry = TraceEntry(len(self.entries), address,
                           format_instruction(self.model, result.decoded))
        after_regs = self._snapshot_regs()
        for key, new in after_regs.items():
            old = before_regs.get(key, 0)
            if new != old:
                name, index = key
                label = name if index is None else "%s%d" % (
                    self.model.regfiles[name].prefix, index)
                entry.reg_writes.append((label, old, new))
        for addr, value in state.memory.items():
            if before_mem.get(addr) != value:
                entry.stores.append((addr, value))
        entry.output = list(state.output[before_out:])
        entry.next_pc = state.pc
        self.entries.append(entry)
        return entry

    def run(self, max_steps: int = 100000) -> "Tracer":
        while not (self.simulator.halted or self.simulator.trapped):
            if len(self.entries) >= max_steps:
                break
            self.step()
        return self

    def format(self, limit: Optional[int] = None) -> str:
        entries = self.entries if limit is None else self.entries[:limit]
        lines = [entry.format() for entry in entries]
        if limit is not None and len(self.entries) > limit:
            lines.append("... (%d more)" % (len(self.entries) - limit))
        return "\n".join(lines)


def trace_run(model, image, input_bytes: bytes = b"",
              max_steps: int = 100000) -> Tracer:
    """Load an image and run it to completion under the tracer."""
    simulator = Simulator(model, input_bytes=input_bytes)
    simulator.state.load_image(image)
    return Tracer(model, simulator).run(max_steps)
