"""The retargetable symbolic execution engine.

This is the paper's contribution: a single engine that symbolically
executes *any* ADL-described ISA by interpreting the generated IR over
solver terms.  Nothing in this module is ISA-specific — the ISA enters only
through the :class:`~repro.isa.model.ArchModel` passed to :class:`Engine`.

Execution model
---------------
* The program counter is concrete; conditional branches (IR ``IfStmt`` with
  a symbolic condition) fork the state, indirect jumps (symbolic ``SetPc``)
  are concretized by solver enumeration (up to ``max_fork_targets``).
* Expression-level ``ite`` does not fork; both arms are evaluated and the
  engine tracks the arm guards so checker queries (e.g. division-by-zero)
  are asked *under* the guard — a guarded ``(d == 0) ? safe : x/d`` is not
  a defect.
* Memory addresses are concretized with a bounded-window policy: small
  ranges become ite-chains over every in-range byte, larger ones are
  solver-enumerated and the path constrained to the found values (the
  standard angr-style compromise; enumeration shortfalls are counted in
  the stats, never silent).

Checkers (enabled via :class:`EngineConfig`): division by zero, unmapped
(out-of-bounds) access, write to read-only regions, uninitialized reads in
tracked regions, reachable traps, undecodable instructions.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import nodes as N
from ..isa.decoder import DecodeError
from ..obs import Obs
from ..obs.attr import ir_kind
from ..smt import SAT, Solver
from ..smt import terms as T
from . import reporting as R
from .memory import MemoryMap, Region, SymMemory
from .state import SymState
from .strategy import (CoverageStrategy, ObservedStrategy, Strategy,
                       make_strategy)

__all__ = ["Engine", "EngineConfig", "EngineError"]


class EngineError(Exception):
    """Engine misuse or an internal invariant violation."""


class EngineConfig:
    """Tunables for exploration, concretization and checking."""

    def __init__(self,
                 max_steps_per_path: int = 4096,
                 max_states: int = 4096,
                 max_paths: Optional[int] = None,
                 max_defects: Optional[int] = None,
                 max_instructions: Optional[int] = None,
                 max_wall_seconds: Optional[float] = None,
                 max_fork_targets: int = 4,
                 max_visits_per_pc: Optional[int] = None,
                 symbolic_read_window: int = 32,
                 max_address_values: int = 4,
                 check_div_zero: bool = True,
                 div_check_respects_guards: bool = False,
                 check_oob: bool = True,
                 check_uninit: bool = False,
                 check_write_protect: bool = True,
                 check_tainted_control: bool = False,
                 merge_states: bool = False,
                 dedup_defects: bool = True,
                 collect_path_inputs: bool = True,
                 collect_coverage: bool = False,
                 cow_memory: bool = True,
                 use_solver_cache: bool = True,
                 compiled_semantics: bool = False,
                 obs: Optional[Obs] = None,
                 health: Optional[object] = None,
                 attr: Optional[object] = None):
        self.max_steps_per_path = max_steps_per_path
        self.max_states = max_states
        self.max_paths = max_paths
        self.max_defects = max_defects
        self.max_instructions = max_instructions
        # Wall-clock deadline for the whole exploration (CLI
        # --max-seconds): checked in _limit_hit between steps, stops
        # with the honest 'deadline' stop reason so unattended/CI runs
        # cannot hang.  None = no deadline.
        self.max_wall_seconds = max_wall_seconds
        self.max_fork_targets = max_fork_targets
        # Loop bound: a single path revisiting one pc more than this many
        # times is pruned (recorded as a 'loop-limit' path). None = off.
        self.max_visits_per_pc = max_visits_per_pc
        self.symbolic_read_window = symbolic_read_window
        self.max_address_values = max_address_values
        self.check_div_zero = check_div_zero
        # Architectural division guards are *inside* the instruction
        # semantics ("(d == 0) ? -1 : a/d" on RISC-V-style ISAs): with this
        # False (the default), the div-zero checker looks through such
        # expression-level guards, because a software division whose divisor
        # can be zero is a defect even though the hardware defines a result.
        # Software guards are branch instructions, which land in the path
        # condition and are always respected.
        self.div_check_respects_guards = div_check_respects_guards
        self.check_oob = check_oob
        self.check_uninit = check_uninit
        self.check_write_protect = check_write_protect
        # Report indirect control transfers whose target depends on
        # program input (the classic "attacker controls pc" detector).
        self.check_tainted_control = check_tainted_control
        # Opportunistic state merging at common pcs (veritesting-lite;
        # see repro.core.merge). Collapses diamond-shaped path explosion
        # into ite-terms at the cost of bigger solver queries.
        self.merge_states = merge_states
        self.dedup_defects = dedup_defects
        self.collect_path_inputs = collect_path_inputs
        self.collect_coverage = collect_coverage
        self.cow_memory = cow_memory
        # Solver caching/reuse layer (Table 5 ablation; CLI
        # --no-solver-cache).  Governs both the solver's query-result
        # cache (repro.smt.cache) and the engine's per-state frame-model
        # reuse for branch feasibility checks (_branch_feasible).
        self.use_solver_cache = use_solver_cache
        # Execute specialized per-instruction transfer functions
        # (repro.compile) instead of walking rule IR per step (CLI
        # --compiled).  Proven observationally equivalent by the
        # differential harness (tests/compile): identical tree/leaf/
        # defect fingerprints on every shipped ISA — which is why this
        # flag is absent from _SERIALIZED_FIELDS and never perturbs
        # run-store identity.
        self.compiled_semantics = compiled_semantics
        # Observability handle (repro.obs).  None means "engine default":
        # enabled counters, no event sink, no profiler — negligible
        # overhead.  Pass Obs.disabled() for a zero-telemetry baseline,
        # or an Obs with sinks/profiling for full tracing.
        self.obs = obs
        # Live health monitor (repro.obs.health).  None = off.  Pass a
        # HealthConfig to attach the periodic sampler + stall/pressure
        # watchdog to the exploration loop.  Sampling is read-only;
        # degradation actions fire only when HealthConfig.actions
        # explicitly opts in.
        self.health = health
        # Cost attribution (repro.obs.attr).  None = off.  Pass an
        # AttrConfig to charge wall/solver time, cache traffic, forks
        # and term allocations to individual ADL rules, IR node kinds
        # and branch sites (CLI --attr; repro hot).  Observe-only.
        self.attr = attr

    # Every field that shapes the exploration *outcome* — the run-store
    # key material (repro.runstore).  ``obs``, ``health`` and ``attr``
    # are deliberately absent: observability must never change what a
    # run computes, and serializing live handles makes no sense.
    # ``compiled_semantics`` is likewise absent: compiled and
    # interpreted execution produce bit-identical fingerprints (the
    # differential harness enforces it), so a compiled run answers for
    # an interpreted one in the store and vice versa.
    _SERIALIZED_FIELDS = (
        "max_steps_per_path", "max_states", "max_paths", "max_defects",
        "max_instructions", "max_wall_seconds", "max_fork_targets",
        "max_visits_per_pc", "symbolic_read_window",
        "max_address_values", "check_div_zero",
        "div_check_respects_guards", "check_oob", "check_uninit",
        "check_write_protect", "check_tainted_control", "merge_states",
        "dedup_defects", "collect_path_inputs", "collect_coverage",
        "cow_memory", "use_solver_cache")

    def to_dict(self) -> Dict[str, object]:
        """JSON-able snapshot of every outcome-shaping field."""
        return {name: getattr(self, name)
                for name in self._SERIALIZED_FIELDS}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "EngineConfig":
        """Rebuild a config from :meth:`to_dict` output.  Unknown keys
        are ignored so newer stores replay on older code."""
        known = {key: value for key, value in payload.items()
                 if key in cls._SERIALIZED_FIELDS}
        return cls(**known)


class _Outcome:
    """Control effects accumulated while executing one IR block."""

    __slots__ = ("next_pc", "halted", "exit_code", "trapped", "trap_code")

    def __init__(self):
        self.next_pc: Optional[T.Term] = None
        self.halted = False
        self.exit_code: Optional[T.Term] = None
        self.trapped = False
        self.trap_code: Optional[T.Term] = None


class _PathEnd(Exception):
    """Internal: the current path cannot continue (defect or dead end)."""

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


class Engine:
    """Symbolic executor over a generated :class:`ArchModel`."""

    def __init__(self, model, config: Optional[EngineConfig] = None,
                 solver: Optional[Solver] = None, strategy: str = "dfs",
                 seed: int = 0):
        self.model = model
        self.config = config if config is not None else EngineConfig()
        self.solver = solver if solver is not None else Solver(
            use_query_cache=self.config.use_solver_cache)
        # Engine-side incremental check reuse rides the same ablation
        # switch as the solver's query cache (see _branch_feasible).
        self._frame_reuse = self.config.use_solver_cache
        # -- observability wiring (see repro.obs) --------------------------
        self.obs = (self.config.obs if self.config.obs is not None
                    else Obs.default())
        self.obs.set_isa(model.name)
        self.solver.attach_obs(self.obs)
        model.decoder.attach_obs(self.obs)
        self._tracer = self.obs.tracer
        self._profiler = self.obs.profiler
        self._profile_on = self.obs.profiler.enabled
        # Cost attribution (repro.obs.attr): charges eval/solver time,
        # cache traffic, forks and term allocations to rules / IR node
        # kinds / branch sites.  Observe-only, like the profiler.
        self.attr = None
        if self.config.attr is not None:
            from ..obs.attr import CostAttribution
            self.attr = CostAttribution(self.config.attr, model,
                                        metrics=self.obs.metrics)
            self.solver.attach_attr(self.attr)
        metrics = self.obs.metrics
        self._c_steps = metrics.counter("engine.steps")
        self._c_forks = metrics.counter("engine.forks")
        self._c_paths = metrics.counter("engine.paths")
        self._c_defects = metrics.counter("engine.defects")
        self._c_pruned = metrics.counter("engine.pruned")
        self.strategy: Strategy = make_strategy(strategy, seed)
        self._coverage_feedback = (self.strategy
                                   if isinstance(self.strategy,
                                                 CoverageStrategy) else None)
        if self.config.merge_states:
            from .merge import MergingFrontier
            self.strategy = MergingFrontier(self.strategy, obs=self.obs)
        # The strategy shim pays a few calls per push/pop; only mount it
        # when a layer that needs it is active (profiling or tracing —
        # sinks must be attached before the engine is constructed).
        if self.obs.profiler.enabled or self.obs.tracer.enabled:
            self.strategy = ObservedStrategy(self.strategy, self.obs)
        # Live health monitor (sampler + watchdog; repro.obs.health).
        self.health = None
        if self.config.health is not None:
            from ..obs.health import HealthMonitor
            self.health = HealthMonitor(self.config.health, self.obs)
        self._strategy_name = strategy
        self._strategy_seed = seed
        self._explore_start = 0.0
        self.memory_map = MemoryMap()
        self._base_memory = SymMemory(self.memory_map,
                                      cow=self.config.cow_memory)
        # Address hooks ("SimProcedure"-style): pc -> callable(engine,
        # state) -> Optional[list[SymState]].  See Engine.hook().
        self._hooks: Dict[int, object] = {}
        # User-registered checkers, called before each instruction.
        self._checkers: List[object] = []
        self._entry: Optional[int] = None
        self._result: Optional[R.ExplorationResult] = None
        self._defect_sites: set = set()
        self._endian = model.endian
        self._addr_width = model.pc_width
        # Specialized transfer functions (repro.compile): plans compiled
        # once per (isa, spec digest) and dispatched per instruction in
        # _exec_block.  Field terms are cached per decoded word because
        # term identity may matter to the solver's structural caches —
        # per-engine only, never across terms.configure() (the engine
        # lifetime is within one pool configuration).
        self._compiled = None
        self._field_term_cache: Dict = {}
        if self.config.compiled_semantics:
            from ..compile import compiled_for
            self._compiled = compiled_for(model)

    # -- setup -------------------------------------------------------------------

    def load_image(self, image, writable: bool = True) -> None:
        """Map an assembled image and take its entry point."""
        self._base_memory.load_image(image.base, bytes(image.data),
                                     name="image", writable=writable)
        self._entry = image.entry

    def add_region(self, start: int, size: int, name: str = "region",
                   writable: bool = True, track_uninit: bool = False) -> Region:
        """Declare additional valid memory (stack, heap, MMIO buffers)."""
        return self.memory_map.add(
            Region(start, size, name, writable, track_uninit))

    def hook(self, address: int, handler) -> None:
        """Replace execution at ``address`` with a Python handler.

        ``handler(engine, state)`` runs instead of the instruction there
        (the angr "SimProcedure" idea: model library calls, summarize
        functions, inject faults).  It may mutate ``state`` and must
        return the list of successor states (returning ``[state]`` to
        continue it, after advancing ``state.pc`` itself), or ``None`` as
        shorthand for "advance past this instruction and continue".
        """
        self._hooks[address] = handler

    def unhook(self, address: int) -> None:
        self._hooks.pop(address, None)

    def add_checker(self, checker) -> None:
        """Register ``checker(engine, state, decoded)`` to run before each
        instruction.  Use :meth:`report` inside it to file defects."""
        self._checkers.append(checker)

    def report(self, state: SymState, kind: str, message: str,
               decoded=None) -> None:
        """File a defect from a hook or custom checker."""
        self._report(state, kind, decoded, message)

    def initial_state(self) -> SymState:
        if self._entry is None:
            raise EngineError("no image loaded; call load_image() first")
        state = SymState(self.model, self._base_memory.fork())
        state.pc = self._entry
        return state

    # -- exploration --------------------------------------------------------------

    def explore(self, state: Optional[SymState] = None) -> R.ExplorationResult:
        """Run exploration to exhaustion or a configured limit.

        Solver stats and telemetry counters attached to the result are
        *per-exploration deltas*: exploring twice on one engine reports
        each run's own numbers, not cumulative ones.
        """
        result = R.ExplorationResult()
        self._result = result
        self._defect_sites = set()
        solver_before = self.solver.stats.as_dict()
        counters_before = self.obs.metrics.counters_snapshot()
        start_time = time.perf_counter()
        self._explore_start = start_time
        monitor = self.health
        if monitor is not None:
            monitor.begin(self, result)
        self.strategy.push(state if state is not None else
                           self.initial_state())
        try:
            while self.strategy:
                if self._limit_hit(result):
                    break
                if monitor is not None:
                    diagnoses = monitor.tick()
                    if diagnoses and not self._apply_health_actions(
                            diagnoses, result):
                        break
                current = self.strategy.pop()
                for successor in self._step(current, result):
                    if len(self.strategy) >= self.config.max_states:
                        result.states_pruned += 1
                        self._c_pruned.inc()
                        self._dead_end(successor, "max-states")
                        continue
                    self.strategy.push(successor)
        finally:
            result.wall_time = time.perf_counter() - start_time
            result.solver_stats = self.solver.stats.delta_since(
                solver_before)
            telemetry = self.obs.snapshot(counters_since=counters_before)
            telemetry["solver"] = dict(result.solver_stats)
            telemetry["wall_time"] = result.wall_time
            if monitor is not None:
                telemetry["health"] = monitor.finish()
            if self.attr is not None:
                telemetry["attr"] = self.attr.snapshot(self._profiler)
            result.telemetry = telemetry
            self._result = None
        return result

    def _limit_hit(self, result: R.ExplorationResult) -> bool:
        cfg = self.config
        if cfg.max_paths is not None and len(result.paths) >= cfg.max_paths:
            result.stop_reason = "max-paths"
            return True
        if (cfg.max_defects is not None
                and len(result.defects) >= cfg.max_defects):
            result.stop_reason = "max-defects"
            return True
        if (cfg.max_instructions is not None
                and result.instructions_executed >= cfg.max_instructions):
            result.stop_reason = "max-instructions"
            return True
        if (cfg.max_wall_seconds is not None
                and time.perf_counter() - self._explore_start
                >= cfg.max_wall_seconds):
            result.stop_reason = "deadline"
            return True
        return False

    # -- health-monitor degradation actions (opt-in; repro.obs.health) -----------

    def _apply_health_actions(self, diagnoses,
                              result: R.ExplorationResult) -> bool:
        """Act on watchdog diagnoses; False stops the exploration.

        Only diagnoses whose configured action is not ``"none"`` do
        anything — the watchdog is observe-only by default, so a
        monitored run explores exactly the same tree as an unmonitored
        one unless the operator explicitly opted into degradation.
        """
        for diagnosis in diagnoses:
            action = diagnosis.get("action", "none")
            if action == "stop":
                result.stop_reason = "pressure"
                return False
            if action == "merge":
                self._force_merge_pass(result)
            elif action == "switch":
                self._switch_strategy(
                    self.config.health.switch_strategy)
        return True

    def _force_merge_pass(self, result: R.ExplorationResult) -> int:
        """Drain the frontier and merge structurally compatible states
        parked at the same pc (graceful degradation under frontier
        pressure).  Returns the number of merges performed."""
        from .merge import try_merge
        drained: List[SymState] = []
        while self.strategy:
            drained.append(self.strategy.pop())
        survivors: List[SymState] = []
        buckets: Dict[int, List[int]] = {}
        merges = 0
        tracer = self._tracer
        for state in drained:
            merged_index = None
            for index in buckets.get(state.pc, ()):
                merged = try_merge(survivors[index], state)
                if merged is None:
                    continue
                if tracer.enabled:
                    tracer.emit("merge", state_id=merged.state_id,
                                pc=merged.pc,
                                merged_from=[survivors[index].state_id,
                                             state.state_id],
                                duplicate=merged is survivors[index],
                                forced=True)
                survivors[index] = merged
                merged_index = index
                merges += 1
                break
            if merged_index is None:
                buckets.setdefault(state.pc, []).append(len(survivors))
                survivors.append(state)
        # Pops drained newest-first; push back reversed so a stack
        # frontier keeps roughly its old scheduling order.
        for state in reversed(survivors):
            self.strategy.push(state)
        if merges:
            self.obs.metrics.counter("engine.merges").inc(merges)
        return merges

    def _switch_strategy(self, name: str) -> None:
        """Swap the frontier for a fresh strategy (graceful degradation:
        e.g. leave a depth-stuck DFS for BFS).  Pending states carry
        over; wrappers (merging, observability) are re-applied."""
        drained: List[SymState] = []
        while self.strategy:
            drained.append(self.strategy.pop())
        fresh = make_strategy(name, self._strategy_seed)
        self._coverage_feedback = (fresh if isinstance(
            fresh, CoverageStrategy) else None)
        if self.config.merge_states:
            from .merge import MergingFrontier
            fresh = MergingFrontier(fresh, obs=self.obs)
        if self.obs.profiler.enabled or self.obs.tracer.enabled:
            fresh = ObservedStrategy(fresh, self.obs)
        self.strategy = fresh
        for state in drained:
            self.strategy.push(state)
        self._strategy_name = name

    # -- single step -----------------------------------------------------------------

    def _step(self, state: SymState,
              result: R.ExplorationResult) -> List[SymState]:
        """Execute one instruction of ``state``; returns live successors."""
        self._c_steps.inc()
        tracer = self._tracer
        if tracer.enabled:
            tracer.set_context(state.state_id, state.pc)
        if self._coverage_feedback is not None:
            self._coverage_feedback.visit(state.pc)
        if self.config.collect_coverage:
            result.visited_pcs.add(state.pc)
        if self.config.max_visits_per_pc is not None:
            visits = state.visit_counts.get(state.pc, 0) + 1
            if visits > self.config.max_visits_per_pc:
                self._end_path(state, "loop-limit", result)
                result.states_pruned += 1
                self._c_pruned.inc()
                return []
            state.visit_counts[state.pc] = visits
        hook = self._hooks.get(state.pc)
        if hook is not None:
            result.instructions_executed += 1
            successors = hook(self, state)
            if successors is None:
                try:
                    decoded = self._fetch(state)
                except _PathEnd as dead:
                    self._dead_end(state, dead.reason)
                    return []
                state.pc = (state.pc + decoded.length) \
                    & T.mask(self._addr_width)
                return [state]
            return list(successors)
        try:
            decoded = self._fetch(state)
        except _PathEnd as dead:
            self._dead_end(state, dead.reason)
            return []
        for checker in self._checkers:
            checker(self, state, decoded)
        result.instructions_executed += 1
        cond_base = len(state.path_condition)
        if tracer.enabled:
            tracer.emit("step", state_id=state.state_id, pc=state.pc,
                        instr=decoded.instruction.name)
        # Cost attribution: set the (rule, pc) context every step; on a
        # *deep* (sampled) step additionally probe the recursive _eval
        # so per-IR-kind timings accrue.  The end_step charge in the
        # finally mirrors the eval phase scope exactly — that is the
        # reconciliation contract (attr eval calls == phase eval calls).
        attr = self.attr
        deep = False
        if attr is not None:
            deep = attr.begin_step(decoded.instruction.name, state.pc)
            if deep:
                self._install_ir_probe(attr)
            attr_start = time.perf_counter()
        try:
            if self._profile_on:
                with self._profiler.phase("eval"):
                    finished = self._exec_block(state, decoded)
            else:
                finished = self._exec_block(state, decoded)
        except _PathEnd as dead:
            self._dead_end(state, dead.reason)
            return []
        finally:
            if attr is not None:
                if deep:
                    self.__dict__.pop("_eval", None)
                attr.end_step(time.perf_counter() - attr_start)
        successors: List[SymState] = []
        for sub_state, outcome in finished:
            sub_state.steps += 1
            if outcome.trapped:
                self._report(sub_state, R.TRAP, decoded,
                             "trap instruction reached")
                self._dead_end(sub_state, "trap")
                continue
            if outcome.halted:
                self._finish_path(sub_state, outcome, result)
                continue
            if sub_state.steps >= self.config.max_steps_per_path:
                self._end_path(sub_state, "depth-limit", result)
                continue
            successors.extend(
                self._advance_pc(sub_state, outcome, decoded, result))
        if len(finished) > 1:
            forked = len(finished) - 1
            result.states_forked += forked
            self._c_forks.inc(forked)
            if attr is not None:
                attr.on_fork(forked)
            if tracer.enabled:
                tracer.emit("fork", state_id=state.state_id, pc=state.pc,
                            children=[sub.state_id
                                      for sub, _ in finished],
                            conds=[self._edge_cond(sub, cond_base)
                                   for sub, _ in finished])
        return successors

    def _install_ir_probe(self, attr) -> None:
        """Shadow ``self._eval`` with a timing wrapper for one deep step.

        Every ``self._eval(...)`` call site — including the recursive
        ones inside :meth:`_eval` itself — resolves through the
        instance attribute, so the whole expression tree is probed
        without duplicating the evaluator.  The shadow is popped in
        ``_step``'s finally, restoring the plain class method."""
        engine = self
        base = Engine._eval

        def probed(state, expr, fields, local_values, guards, decoded):
            attr.ir_enter(ir_kind(expr))
            try:
                return base(engine, state, expr, fields, local_values,
                            guards, decoded)
            finally:
                attr.ir_exit()

        self.__dict__["_eval"] = probed

    #: Rendered branch-condition summaries on fork events are truncated
    #: to this many characters (flight-recorder edge labels, not proofs).
    COND_SUMMARY_LIMIT = 96

    def _edge_cond(self, state: SymState, base_len: int) -> str:
        """Short rendering of the path conditions ``state`` gained during
        the current instruction — the per-edge branch-condition summary
        carried by ``fork`` events for the flight recorder."""
        extra = state.path_condition[base_len:]
        if not extra:
            return ""
        text = " && ".join(T.render(cond, max_depth=4) for cond in extra)
        if len(text) > self.COND_SUMMARY_LIMIT:
            text = text[:self.COND_SUMMARY_LIMIT - 3] + "..."
        return text

    def _dead_end(self, state: SymState, reason: str) -> None:
        """A state died without finishing a path (defect kill, dead end).

        Emits a ``prune`` event so the flight recorder can close the
        node instead of leaving it dangling as live.  Carries the fork
        parent when known: a branch that dies inside ``_fork_if`` never
        appears in a ``fork`` event (only survivors do), so this is the
        recorder's only chance to attach it to the tree."""
        if self._tracer.enabled:
            data = {"reason": reason}
            if state.parent_id is not None:
                data["parent"] = state.parent_id
            self._tracer.emit("prune", state_id=state.state_id,
                              pc=state.pc, **data)

    def _fetch(self, state: SymState):
        decoder = self.model.decoder
        if self._profile_on:
            with self._profiler.phase("decode"):
                decoded = self._fetch_inner(state, decoder)
        else:
            decoded = self._fetch_inner(state, decoder)
        if self._tracer.enabled:
            self._tracer.emit("decode_cache", state_id=state.state_id,
                              pc=state.pc, hit=decoder.last_cache_hit,
                              instr=decoded.instruction.name)
        return decoded

    def _fetch_inner(self, state: SymState, decoder):
        window = state.memory.concrete_window(
            state.pc, decoder.max_length)
        if window is None:
            self._report(state, R.INVALID_INSTRUCTION, None,
                         "symbolic bytes in instruction stream")
            raise _PathEnd("symbolic-code")
        try:
            return decoder.decode_bytes(window, state.pc)
        except DecodeError:
            self._report(state, R.INVALID_INSTRUCTION, None,
                         "undecodable instruction")
            raise _PathEnd("decode-error")

    def _finish_path(self, state: SymState, outcome: _Outcome,
                     result: R.ExplorationResult) -> None:
        exit_code = None
        if outcome.exit_code is not None and outcome.exit_code.is_const():
            exit_code = outcome.exit_code.value
        self._end_path(state, "halted", result, exit_code)

    def _end_path(self, state: SymState, status: str,
                  result: R.ExplorationResult,
                  exit_code: Optional[int] = None) -> None:
        """Record one finished path (all PathResult creation funnels
        through here so the ``path_end`` event cannot drift from the
        result list — the acceptance invariant paths == path_end)."""
        result.paths.append(R.PathResult(
            status, state, self._path_input(state), exit_code))
        self._c_paths.inc()
        if self._tracer.enabled:
            data = {"status": status}
            if exit_code is not None:
                data["exit_code"] = exit_code
            self._tracer.emit("path_end", state_id=state.state_id,
                              pc=state.pc, **data)

    def _path_input(self, state: SymState) -> bytes:
        if not self.config.collect_path_inputs:
            return b""
        if not state.path_condition:
            return bytes(len(state.input_vars))
        if self.solver.check(extra=state.path_condition) != SAT:
            return b""
        return state.input_bytes_from_model(self.solver.model())

    def _advance_pc(self, state: SymState, outcome: _Outcome, decoded,
                    result: R.ExplorationResult) -> List[SymState]:
        if outcome.next_pc is None:
            state.pc = (state.pc + decoded.length) & T.mask(self._addr_width)
            return [state]
        target = outcome.next_pc
        if target.is_const():
            state.pc = target.value
            return [state]
        if self.config.check_tainted_control and any(
                name.startswith("in_") for name in T.variables(target)):
            self._report(state, R.TAINTED_CONTROL, decoded,
                         "jump target depends on program input")
        # Indirect jump with a symbolic target: enumerate feasible values.
        values = self._enumerate(state, target, (),
                                 self.config.max_fork_targets)
        if not values:
            return []
        successors = []
        cond_base = len(state.path_condition)
        for value in values:
            branch = state if len(values) == 1 else state.fork()
            branch.assume(T.eq(target, T.bv(value, target.width)))
            branch.pc = value
            successors.append(branch)
        if len(successors) > 1:
            forked = len(successors) - 1
            result.states_forked += forked
            self._c_forks.inc(forked)
            if self.attr is not None:
                self.attr.on_fork(forked)
            if self._tracer.enabled:
                self._tracer.emit("fork", state_id=state.state_id,
                                  pc=state.pc, indirect=True,
                                  children=[s.state_id
                                            for s in successors],
                                  conds=[self._edge_cond(s, cond_base)
                                         for s in successors])
        return successors

    # -- block execution (with forking on symbolic conditions) ----------------------

    def _exec_block(self, state: SymState,
                    decoded) -> List[Tuple[SymState, _Outcome]]:
        if self._compiled is not None and (
                self.attr is None or not self.attr.deep):
            # Specialized path: pre-compiled plan, cached field terms.
            # Deep attribution steps fall back to the interpreted walk
            # so the per-IR-kind probes (`repro hot`) still see every
            # node — attr is observe-only and forces identical
            # evaluation order, so fingerprints cannot shift.
            from ..compile import symbolic as _compiled_sym
            plan = self._compiled.plans[decoded.instruction.name]
            return _compiled_sym.exec_block(self, state, decoded, plan)
        fields = {name: T.bv(value, self._field_width(decoded, name))
                  for name, value in decoded.fields.items()}
        frames = [(decoded.instruction.semantics, 0)]
        return self._run_frames(state, frames, {}, _Outcome(), fields,
                                decoded)

    def _compiled_fields(self, decoded) -> Dict[str, T.Term]:
        """Field-name -> term dict for one decoded word, cached.

        Keyed on ``(address, word)`` — :class:`Decoded` is slotted and
        the decoder's own cache can be cleared underneath us, so object
        identity is not a safe key.  Holding Term objects here is safe
        only because the cache dies with the engine, which lives inside
        a single term-pool configuration.
        """
        key = (decoded.address, decoded.word)
        fields = self._field_term_cache.get(key)
        if fields is None:
            fields = {name: T.bv(value, self._field_width(decoded, name))
                      for name, value in decoded.fields.items()}
            self._field_term_cache[key] = fields
        return fields

    def _field_width(self, decoded, name: str) -> int:
        operand = decoded.instruction.operands.get(name)
        if operand is not None:
            return operand.width
        return decoded.instruction.encoding.field(name).width

    def _run_frames(self, state, frames, local_values, outcome, fields,
                    decoded) -> List[Tuple[SymState, _Outcome]]:
        """Execute a continuation stack of (stmts, index) frames."""
        while frames:
            stmts, index = frames[-1]
            if index >= len(stmts):
                frames.pop()
                continue
            frames[-1] = (stmts, index + 1)
            stmt = stmts[index]
            if isinstance(stmt, N.IfStmt):
                cond = self._eval(state, stmt.cond, fields, local_values, (),
                                  decoded)
                if cond.is_const():
                    body = stmt.then_body if cond.value == 1 else stmt.else_body
                    if body:
                        frames.append((body, 0))
                    continue
                return self._fork_if(state, stmt, cond, frames, local_values,
                                     outcome, fields, decoded)
            terminal = self._exec_simple(state, stmt, outcome, fields,
                                         local_values, decoded)
            if terminal:
                return [(state, outcome)]
        return [(state, outcome)]

    def _branch_feasible(self, state: SymState, branch_cond: T.Term):
        """Feasibility of ``state.path_condition ∧ branch_cond``.

        Returns ``(verdict, model, memo)``: the witnessing model (and,
        when it came from the state's cached frame, the shared
        evaluation memo) on SAT, ``(verdict, None, None)`` otherwise.

        This is the incremental check-reuse fast path: each state keeps
        the last model known to satisfy its path condition plus a
        watermark of how many conjuncts that model has been validated
        against.  A branch check then only evaluates the *unvalidated
        suffix* and the branch condition under the cached model — no
        solver call, no re-blasting of the shared prefix.  Because a
        model is total (unassigned variables evaluate as 0), exactly one
        of ``c`` / ``¬c`` is true under it, so at most one sibling per
        fork falls through to the solver.  Sound by construction: the
        fast path only ever answers SAT, with an explicit witness.
        """
        if self._frame_reuse:
            model = state.frame_model
            if model is not None:
                memo = state.frame_memo
                path = state.path_condition
                if T.all_true(path[state.frame_checked:], model, memo):
                    state.frame_checked = len(path)
                    if T.all_true((branch_cond,), model, memo):
                        self.solver.note_frame_reuse()
                        return SAT, model, memo
                else:
                    # A newer conjunct falsified the cached model; drop
                    # the frame (replace, never mutate: forks share it).
                    state.frame_model = None
                    state.frame_memo = {}
                    state.frame_checked = 0
        verdict = self.solver.check(
            extra=state.path_condition + [branch_cond])
        if verdict != SAT:
            return verdict, None, None
        return SAT, (self.solver.model() if self._frame_reuse else None), None

    def _fork_if(self, state, stmt, cond, frames, local_values, outcome,
                 fields, decoded) -> List[Tuple[SymState, _Outcome]]:
        results: List[Tuple[SymState, _Outcome]] = []
        branches = ((cond, stmt.then_body), (T.not_(cond), stmt.else_body))
        feasible = []
        # On a deep attribution step the feasibility probes run under a
        # synthetic IfStmt frame, so their solver time shows up as
        # isa;rule;IfStmt;solver in the flamegraph (branch blame).
        attr = self.attr
        probe = attr is not None and attr.deep
        if probe:
            attr.ir_enter("IfStmt")
        try:
            for branch_cond, body in branches:
                verdict, model, memo = self._branch_feasible(state,
                                                             branch_cond)
                if verdict == SAT:
                    feasible.append((branch_cond, body, model, memo))
        finally:
            if probe:
                attr.ir_exit()
        for position, (branch_cond, body, model, memo) in enumerate(feasible):
            last = position == len(feasible) - 1
            branch_state = state if last else state.fork()
            branch_state.assume(branch_cond)
            if model is not None:
                # Seed the child's frame with the witness that proved
                # this branch: it satisfies the extended path condition,
                # so the child's next branch check starts validated.
                branch_state.frame_model = model
                branch_state.frame_memo = memo if memo is not None else {}
                branch_state.frame_checked = \
                    len(branch_state.path_condition)
            branch_frames = [(stmts, idx) for stmts, idx in frames]
            if body:
                branch_frames.append((tuple(body), 0))
            branch_outcome = _Outcome()
            for slot in _Outcome.__slots__:
                setattr(branch_outcome, slot, getattr(outcome, slot))
            branch_locals = dict(local_values)
            try:
                results.extend(self._run_frames(
                    branch_state, branch_frames, branch_locals,
                    branch_outcome, fields, decoded))
            except _PathEnd as dead:
                # This branch died (e.g. OOB store); siblings continue.
                self._dead_end(branch_state, dead.reason)
                continue
        return results

    def _exec_simple(self, state, stmt, outcome, fields, local_values,
                     decoded) -> bool:
        """Execute a non-branching statement; True means block terminated."""
        if isinstance(stmt, N.SetLocal):
            if isinstance(stmt.value, N.InputByte):
                local_values[stmt.name] = state.next_input()
            else:
                local_values[stmt.name] = self._eval(
                    state, stmt.value, fields, local_values, (), decoded)
            return False
        if isinstance(stmt, N.SetReg):
            if isinstance(stmt.value, N.InputByte):
                value = state.next_input()
            else:
                value = self._eval(state, stmt.value, fields, local_values,
                                   (), decoded)
            index = None
            if stmt.index is not None:
                index_term = self._eval(state, stmt.index, fields,
                                        local_values, (), decoded)
                index = self._concrete_index(state, index_term, decoded)
            state.write_reg(stmt.regfile, index, value)
            return False
        if isinstance(stmt, N.SetPc):
            outcome.next_pc = self._eval(state, stmt.value, fields,
                                         local_values, (), decoded)
            return False
        if isinstance(stmt, N.Store):
            addr = self._eval(state, stmt.addr, fields, local_values, (),
                              decoded)
            value = self._eval(state, stmt.value, fields, local_values, (),
                               decoded)
            self._store(state, addr, value, stmt.size, decoded)
            return False
        if isinstance(stmt, N.Output):
            state.output.append(self._eval(state, stmt.value, fields,
                                           local_values, (), decoded))
            return False
        if isinstance(stmt, N.Halt):
            outcome.halted = True
            outcome.exit_code = self._eval(state, stmt.code, fields,
                                           local_values, (), decoded)
            return True
        if isinstance(stmt, N.Trap):
            outcome.trapped = True
            outcome.trap_code = self._eval(state, stmt.code, fields,
                                           local_values, (), decoded)
            return True
        raise EngineError("unknown IR statement %r" % (stmt,))

    # -- expression evaluation ------------------------------------------------------

    _BINOP_BUILDERS = {
        "add": T.add, "sub": T.sub, "mul": T.mul,
        "udiv": T.udiv, "urem": T.urem, "sdiv": T.sdiv, "srem": T.srem,
        "and": T.and_, "or": T.or_, "xor": T.xor,
        "shl": T.shl, "lshr": T.lshr, "ashr": T.ashr,
        "eq": T.eq, "ne": T.ne, "ult": T.ult, "ule": T.ule,
        "ugt": T.ugt, "uge": T.uge, "slt": T.slt, "sle": T.sle,
        "sgt": T.sgt, "sge": T.sge,
    }

    _DIV_OPS = frozenset({"udiv", "urem", "sdiv", "srem"})

    def _eval(self, state: SymState, expr: N.Expr, fields, local_values,
              guards: Tuple[T.Term, ...], decoded) -> T.Term:
        if isinstance(expr, N.Const):
            return T.bv(expr.value, expr.width)
        if isinstance(expr, N.Field):
            return fields[expr.name]
        if isinstance(expr, N.Local):
            return local_values[expr.name]
        if isinstance(expr, N.Pc):
            return T.bv(state.pc, expr.width)
        if isinstance(expr, N.ReadReg):
            index = None
            if expr.index is not None:
                index_term = self._eval(state, expr.index, fields,
                                        local_values, guards, decoded)
                index = self._concrete_index(state, index_term, decoded)
            return state.read_reg(expr.regfile, index)
        if isinstance(expr, N.Load):
            addr = self._eval(state, expr.addr, fields, local_values,
                              guards, decoded)
            return self._load(state, addr, expr.size, guards, decoded)
        if isinstance(expr, N.BinOp):
            left = self._eval(state, expr.left, fields, local_values,
                              guards, decoded)
            right = self._eval(state, expr.right, fields, local_values,
                               guards, decoded)
            if expr.op in self._DIV_OPS and self.config.check_div_zero:
                self._check_div(state, right, guards, decoded)
            return self._BINOP_BUILDERS[expr.op](left, right)
        if isinstance(expr, N.UnOp):
            operand = self._eval(state, expr.operand, fields, local_values,
                                 guards, decoded)
            if expr.op == "not":
                return T.not_(operand)
            if expr.op == "neg":
                return T.neg(operand)
            if expr.op == "boolnot":
                return T.not_(operand)
            raise EngineError("unknown unary op %r" % expr.op)
        if isinstance(expr, N.Ext):
            operand = self._eval(state, expr.operand, fields, local_values,
                                 guards, decoded)
            extra = expr.width - operand.width
            return T.zext(operand, extra) if expr.kind == "zext" else \
                T.sext(operand, extra)
        if isinstance(expr, N.ExtractBits):
            operand = self._eval(state, expr.operand, fields, local_values,
                                 guards, decoded)
            return T.extract(operand, expr.hi, expr.lo)
        if isinstance(expr, N.ConcatBits):
            hi_part = self._eval(state, expr.hi_part, fields, local_values,
                                 guards, decoded)
            lo_part = self._eval(state, expr.lo_part, fields, local_values,
                                 guards, decoded)
            return T.concat(hi_part, lo_part)
        if isinstance(expr, N.IteExpr):
            cond = self._eval(state, expr.cond, fields, local_values,
                              guards, decoded)
            if cond.is_const():
                chosen = expr.then if cond.value == 1 else expr.other
                return self._eval(state, chosen, fields, local_values,
                                  guards, decoded)
            then = self._eval(state, expr.then, fields, local_values,
                              guards + (cond,), decoded)
            other = self._eval(state, expr.other, fields, local_values,
                               guards + (T.not_(cond),), decoded)
            return T.ite(cond, then, other)
        if isinstance(expr, N.InputByte):
            raise EngineError(
                "in() must be a whole right-hand side (translator bug)")
        raise EngineError("unknown IR expression %r" % (expr,))

    # -- checkers --------------------------------------------------------------------

    def _check_div(self, state: SymState, divisor: T.Term, guards,
                   decoded) -> None:
        zero = T.bv(0, divisor.width)
        cond = T.eq(divisor, zero)
        if T.is_false(cond):
            return
        site = (R.DIV_BY_ZERO, state.pc)
        if self.config.dedup_defects and site in self._defect_sites:
            return
        query = state.path_condition + [cond]
        if self.config.div_check_respects_guards:
            query = state.path_condition + list(guards) + [cond]
        if self.solver.check(extra=query) == SAT:
            self._report(state, R.DIV_BY_ZERO, decoded,
                         "divisor can be zero",
                         model=self.solver.model())

    def _check_mapped(self, state: SymState, addr: T.Term, guards,
                      decoded, writing: bool) -> bool:
        """OOB / write-protect checks; False ends the path."""
        if not self.config.check_oob:
            return True
        inside = self.memory_map.membership_term(addr)
        outside = T.not_(inside)
        if addr.is_const():
            region = self.memory_map.region_for(addr.value)
            if region is None:
                self._report(state, R.OOB_ACCESS, decoded,
                             "access to unmapped address %#x" % addr.value)
                return False
            if writing and not region.writable and \
                    self.config.check_write_protect:
                self._report(state, R.WRITE_TO_CODE, decoded,
                             "write to read-only region %r at %#x"
                             % (region.name, addr.value))
                return False
            return True
        site = (R.OOB_ACCESS, state.pc)
        skip_report = self.config.dedup_defects and site in self._defect_sites
        if not skip_report and self.solver.check(
                extra=state.path_condition + list(guards) + [outside]) == SAT:
            model = self.solver.model()
            bad_addr = T.evaluate(addr, model)
            self._report(state, R.OOB_ACCESS, decoded,
                         "access can reach unmapped address %#x" % bad_addr,
                         model=model)
        # Constrain to mapped memory and continue if possible.
        state.assume(inside)
        return self.solver.check(extra=state.path_condition) == SAT

    def _report(self, state: SymState, kind: str, decoded, message: str,
                model: Optional[Dict[str, int]] = None) -> None:
        result = self._result
        if result is None:
            return
        site = (kind, state.pc)
        if self.config.dedup_defects and site in self._defect_sites:
            return
        self._defect_sites.add(site)
        if model is None:
            if state.path_condition and self.solver.check(
                    extra=state.path_condition) != SAT:
                return  # path infeasible after all; drop silently
            model = self.solver.model() if state.path_condition else {}
        instruction = decoded.instruction.name if decoded else "?"
        result.defects.append(R.Defect(
            kind, state.pc, instruction, message,
            state.input_bytes_from_model(model), model,
            state.state_id, state.steps))
        self._c_defects.inc()
        if self._tracer.enabled:
            self._tracer.emit("defect", state_id=state.state_id,
                              pc=state.pc, defect_kind=kind,
                              instr=instruction, message=message)

    # -- memory access with concretization ----------------------------------------------

    def _load(self, state: SymState, addr: T.Term, size: int, guards,
              decoded) -> T.Term:
        if self._profile_on:
            with self._profiler.phase("memory"):
                return self._load_inner(state, addr, size, guards, decoded)
        return self._load_inner(state, addr, size, guards, decoded)

    def _load_inner(self, state: SymState, addr: T.Term, size: int, guards,
                    decoded) -> T.Term:
        if not self._check_mapped(state, addr, guards, decoded,
                                  writing=False):
            raise _PathEnd("oob-load")
        if addr.is_const():
            self._check_uninit(state, addr.value, size, decoded)
            return state.memory.read(addr.value, size, self._endian)
        values = self._resolve_address(state, addr, guards)
        if not values:
            raise _PathEnd("no-feasible-address")
        result = state.memory.read(values[-1], size, self._endian)
        for value in reversed(values[:-1]):
            result = T.ite(T.eq(addr, T.bv(value, addr.width)),
                           state.memory.read(value, size, self._endian),
                           result)
        state.assume(T.disjoin(T.eq(addr, T.bv(v, addr.width))
                               for v in values))
        return result

    def _store(self, state: SymState, addr: T.Term, value: T.Term,
               size: int, decoded) -> None:
        if self._profile_on:
            with self._profiler.phase("memory"):
                self._store_inner(state, addr, value, size, decoded)
            return
        self._store_inner(state, addr, value, size, decoded)

    def _store_inner(self, state: SymState, addr: T.Term, value: T.Term,
                     size: int, decoded) -> None:
        if not self._check_mapped(state, addr, (), decoded, writing=True):
            raise _PathEnd("oob-store")
        if addr.is_const():
            state.memory.write(addr.value, value, size, self._endian)
            return
        values = self._resolve_address(state, addr, ())
        if not values:
            raise _PathEnd("no-feasible-address")
        # Concretize the store: constrain the address to one value (the
        # common single-value case is exact; multi-value is weakened by
        # ite-merging the old contents).
        if len(values) == 1:
            state.assume(T.eq(addr, T.bv(values[0], addr.width)))
            state.memory.write(values[0], value, size, self._endian)
            return
        state.assume(T.disjoin(T.eq(addr, T.bv(v, addr.width))
                               for v in values))
        for candidate in values:
            hit = T.eq(addr, T.bv(candidate, addr.width))
            old = state.memory.read(candidate, size, self._endian)
            state.memory.write(candidate, T.ite(hit, value, old), size,
                               self._endian)

    def _check_uninit(self, state: SymState, addr: int, size: int,
                      decoded) -> None:
        if not self.config.check_uninit:
            return
        for offset in range(size):
            byte_addr = addr + offset
            region = self.memory_map.region_for(byte_addr)
            if (region is not None and region.track_uninit
                    and not state.memory.is_initialized(byte_addr)):
                self._report(state, R.UNINIT_READ, decoded,
                             "read of uninitialized byte at %#x" % byte_addr)
                return

    def _resolve_address(self, state: SymState, addr: T.Term,
                         guards) -> List[int]:
        """Concrete candidate addresses for a symbolic address term."""
        from ..smt.interval import interval
        lo, hi = interval(addr)
        window = self.config.symbolic_read_window
        if hi - lo + 1 <= window:
            return [value for value in range(lo, hi + 1)
                    if self.memory_map.is_mapped(value)]
        return self._enumerate(state, addr, guards,
                               self.config.max_address_values)

    def _enumerate(self, state: SymState, term: T.Term, guards,
                   limit: int) -> List[int]:
        """Solver-enumerate up to ``limit`` feasible values of ``term``."""
        found: List[int] = []
        exclusions: List[T.Term] = []
        base = state.path_condition + list(guards)
        while len(found) < limit:
            if self.solver.check(extra=base + exclusions) != SAT:
                break
            value = T.evaluate(term, self.solver.model())
            found.append(value)
            exclusions.append(T.ne(term, T.bv(value, term.width)))
        return found

    # -- register index concretization ----------------------------------------------------

    def _concrete_index(self, state: SymState, index_term: T.Term,
                        decoded) -> int:
        if index_term.is_const():
            return index_term.value
        # Register indices come from encoding fields in every built-in ISA,
        # so a symbolic index indicates exotic semantics; concretize to the
        # first feasible value and constrain.
        values = self._enumerate(state, index_term, (), 1)
        if not values:
            raise _PathEnd("no-feasible-register-index")
        state.assume(T.eq(index_term, T.bv(values[0], index_term.width)))
        return values[0]
