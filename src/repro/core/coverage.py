"""Coverage accounting: exploration progress against the recovered CFG.

Measures which instructions / basic blocks of a program symbolic (or
concolic) exploration actually reached — the feedback signal behind the
coverage-guided strategy and the extension experiment (Figure 4).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..isa.cfg import Cfg, recover_cfg

__all__ = ["CoverageReport", "measure"]


class CoverageReport:
    """Instruction- and block-level coverage of one exploration."""

    def __init__(self, cfg: Cfg, visited: Set[int]):
        self.cfg = cfg
        self.visited = set(visited)
        self.known = set(cfg.instruction_addresses)
        self.covered_instructions = self.visited & self.known
        self.covered_blocks = {
            start for start, block in cfg.blocks.items()
            if any(addr in self.visited for addr in block.addresses)}
        # Addresses executed but not statically discovered (e.g. behind an
        # indirect jump the CFG could not follow).
        self.dynamic_only = self.visited - self.known

    @property
    def instruction_ratio(self) -> float:
        if not self.known:
            return 0.0
        return len(self.covered_instructions) / len(self.known)

    @property
    def block_ratio(self) -> float:
        if not self.cfg.blocks:
            return 0.0
        return len(self.covered_blocks) / len(self.cfg.blocks)

    def uncovered_blocks(self) -> List[int]:
        return sorted(set(self.cfg.blocks) - self.covered_blocks)

    def summary(self) -> str:
        return ("coverage: %d/%d instructions (%.0f%%), %d/%d blocks "
                "(%.0f%%)%s"
                % (len(self.covered_instructions), len(self.known),
                   100 * self.instruction_ratio,
                   len(self.covered_blocks), len(self.cfg.blocks),
                   100 * self.block_ratio,
                   ", %d dynamic-only" % len(self.dynamic_only)
                   if self.dynamic_only else ""))

    def __repr__(self):
        return "<CoverageReport %s>" % self.summary()


def measure(model, image, visited: Iterable[int],
            cfg: Optional[Cfg] = None) -> CoverageReport:
    """Build a coverage report for a set of visited pc values.

    ``visited`` typically comes from
    :attr:`~repro.core.reporting.ExplorationResult.visited_pcs` (enable
    ``EngineConfig(collect_coverage=True)``).
    """
    if cfg is None:
        cfg = recover_cfg(model, image)
    return CoverageReport(cfg, set(visited))
