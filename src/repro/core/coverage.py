"""Coverage accounting: exploration progress against the recovered CFG.

Measures which instructions / basic blocks of a program symbolic (or
concolic) exploration actually reached — the feedback signal behind the
coverage-guided strategy and the extension experiment (Figure 4).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..isa.cfg import Cfg, recover_cfg

__all__ = ["CoverageReport", "measure"]


class CoverageReport:
    """Instruction- and block-level coverage of one exploration.

    When ``rules`` (an :class:`~repro.obs.speccov.IsaSpecCoverage`) is
    attached the report is *unified*: :meth:`summary` carries both the
    address-level figures ("which parts of this program ran") and the
    spec-level figures ("which semantic rules of the ADL spec ran").
    """

    def __init__(self, cfg: Cfg, visited: Set[int], rules=None):
        self.cfg = cfg
        self.visited = set(visited)
        self.rules = rules  # Optional[IsaSpecCoverage]
        self.known = set(cfg.instruction_addresses)
        self.covered_instructions = self.visited & self.known
        self.covered_blocks = {
            start for start, block in cfg.blocks.items()
            if any(addr in self.visited for addr in block.addresses)}
        # Addresses executed but not statically discovered (e.g. behind an
        # indirect jump the CFG could not follow).
        self.dynamic_only = self.visited - self.known

    @property
    def instruction_ratio(self) -> float:
        if not self.known:
            return 0.0
        return len(self.covered_instructions) / len(self.known)

    @property
    def block_ratio(self) -> float:
        if not self.cfg.blocks:
            return 0.0
        return len(self.covered_blocks) / len(self.cfg.blocks)

    def uncovered_blocks(self) -> List[int]:
        return sorted(set(self.cfg.blocks) - self.covered_blocks)

    def summary(self) -> str:
        line = ("coverage: %d/%d instructions (%.0f%%), %d/%d blocks "
                "(%.0f%%)%s"
                % (len(self.covered_instructions), len(self.known),
                   100 * self.instruction_ratio,
                   len(self.covered_blocks), len(self.cfg.blocks),
                   100 * self.block_ratio,
                   ", %d dynamic-only" % len(self.dynamic_only)
                   if self.dynamic_only else ""))
        if self.rules is not None:
            line += "\n" + self.rules.summary()
        return line

    def __repr__(self):
        return "<CoverageReport %s>" % self.summary()


def measure(model, image, visited: Iterable[int],
            cfg: Optional[Cfg] = None,
            spec_coverage: bool = False) -> CoverageReport:
    """Build a coverage report for a set of visited pc values.

    ``visited`` typically comes from
    :attr:`~repro.core.reporting.ExplorationResult.visited_pcs` (enable
    ``EngineConfig(collect_coverage=True)``).

    With ``spec_coverage=True`` the report also attributes every visited
    pc back to the ADL semantic rule that produced its IR (via
    :func:`repro.obs.speccov.rule_coverage_from_visited`), so one call
    yields the unified address-level + rule-level summary.
    """
    if cfg is None:
        cfg = recover_cfg(model, image)
    rules = None
    if spec_coverage:
        from ..obs.speccov import rule_coverage_from_visited
        rules = rule_coverage_from_visited(model, image, visited)
    return CoverageReport(cfg, set(visited), rules=rules)
