"""Symbolic machine state: registers, flags, memory, path condition.

One :class:`SymState` is one execution path prefix.  The program counter is
kept *concrete* (the classic binary-symbolic-execution design: branches fork
states, indirect jumps are concretized), while register and memory contents
are solver terms.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..smt import terms as T
from .memory import SymMemory

__all__ = ["SymState"]

_state_ids = itertools.count()


class SymState:
    """One path's machine state plus its path condition."""

    def __init__(self, model, memory: SymMemory):
        self.model = model
        self.memory = memory
        self.pc: int = 0
        self.regfiles: Dict[str, List[T.Term]] = {
            name: [T.bv(0, info.width)] * info.count
            for name, info in model.regfiles.items()}
        self.registers: Dict[str, T.Term] = {
            name: T.bv(0, width) for name, width in model.registers.items()}
        self.path_condition: List[T.Term] = []
        self.input_vars: List[T.Term] = []
        self.output: List[T.Term] = []
        self.steps = 0
        self.halted = False
        self.exit_code: Optional[T.Term] = None
        self.state_id = next(_state_ids)
        self.parent_id: Optional[int] = None
        # Cumulative priority hint for coverage-guided search.
        self.priority = 0.0
        # Per-path pc visit counts (populated only when the engine's
        # loop bound, max_visits_per_pc, is configured).
        self.visit_counts: Dict[int, int] = {}
        # Incremental solver-frame reuse (Engine._branch_feasible): the
        # last model known to satisfy this path's condition, a shared
        # term-evaluation memo for that model, and a watermark counting
        # how many path-condition conjuncts the model has been validated
        # against.  Forks share model + memo (sound: both are read-only
        # relative to one fixed assignment; a state that adopts a new
        # model replaces them wholesale, never mutates in place).
        self.frame_model: Optional[Dict[str, int]] = None
        self.frame_memo: Dict[int, int] = {}
        self.frame_checked: int = 0

    # -- path forking ---------------------------------------------------------------

    def fork(self) -> "SymState":
        child = SymState.__new__(SymState)
        child.model = self.model
        child.memory = self.memory.fork()
        child.pc = self.pc
        child.regfiles = {name: list(regs)
                          for name, regs in self.regfiles.items()}
        child.registers = dict(self.registers)
        child.path_condition = list(self.path_condition)
        child.input_vars = list(self.input_vars)
        child.output = list(self.output)
        child.steps = self.steps
        child.halted = self.halted
        child.exit_code = self.exit_code
        child.state_id = next(_state_ids)
        child.parent_id = self.state_id
        child.priority = self.priority
        child.visit_counts = dict(self.visit_counts)
        child.frame_model = self.frame_model
        child.frame_memo = self.frame_memo
        child.frame_checked = self.frame_checked
        return child

    # -- constraints -------------------------------------------------------------------

    def assume(self, cond: T.Term) -> None:
        """Add ``cond`` to this path's condition (no feasibility check)."""
        if not T.is_true(cond):
            self.path_condition.append(cond)

    # -- registers ------------------------------------------------------------------------

    def read_reg(self, regfile: str, index: Optional[int]) -> T.Term:
        if index is None:
            return self.registers[regfile]
        info = self.model.regfiles[regfile]
        if not (0 <= index < info.count):
            raise IndexError("register index %d out of range for %r"
                             % (index, regfile))
        if info.zero_index is not None and index == info.zero_index:
            return T.bv(0, info.width)
        return self.regfiles[regfile][index]

    def write_reg(self, regfile: str, index: Optional[int],
                  value: T.Term) -> None:
        if index is None:
            expected = self.model.registers[regfile]
            if value.width != expected:
                raise T.WidthError("register %r takes %d bits, got %d"
                                   % (regfile, expected, value.width))
            self.registers[regfile] = value
            return
        info = self.model.regfiles[regfile]
        if not (0 <= index < info.count):
            raise IndexError("register index %d out of range for %r"
                             % (index, regfile))
        if info.zero_index is not None and index == info.zero_index:
            return
        if value.width != info.width:
            raise T.WidthError("regfile %r takes %d bits, got %d"
                               % (regfile, info.width, value.width))
        self.regfiles[regfile][index] = value

    # -- input stream ------------------------------------------------------------------------

    def next_input(self) -> T.Term:
        """Fresh symbolic byte for the next input read.

        Input position k is named ``in_k`` on every path, so a model's
        ``in_*`` variables directly give the triggering input bytes.
        """
        var = T.var("in_%d" % len(self.input_vars), 8)
        self.input_vars.append(var)
        return var

    def input_bytes_from_model(self, model: Dict[str, int]) -> bytes:
        """Concrete input realizing this path, given a solver model."""
        return bytes(model.get("in_%d" % i, 0) & 0xff
                     for i in range(len(self.input_vars)))

    # -- footprint (health monitor) -----------------------------------------------

    def footprint(self) -> Dict[str, int]:
        """Cheap per-state cost estimate for the live health monitor.

        ``path_terms`` is the number of path-condition conjuncts (a
        proxy for solver query size), ``pages`` the number of memory
        pages this state references (COW-shared pages count once per
        state — the estimate bounds what a solver query or a merge pass
        may have to look at, not unique ownership).  O(1): no term
        traversal, no page scan.
        """
        return {"state": self.state_id, "pc": self.pc, "steps": self.steps,
                "path_terms": len(self.path_condition),
                "pages": self.memory.pages_touched,
                "depth": len(self.input_vars)}

    def __repr__(self):
        return "<SymState #%d pc=%#x steps=%d |pc|=%d>" % (
            self.state_id, self.pc, self.steps, len(self.path_condition))
