"""The retargetable symbolic execution core (the paper's contribution)."""

from . import reporting  # noqa: F401
from .concolic import ConcolicExplorer, ConcolicRun  # noqa: F401
from .coverage import CoverageReport, measure  # noqa: F401
from .executor import Engine, EngineConfig, EngineError  # noqa: F401
from .merge import MergingFrontier, try_merge  # noqa: F401
from .trace import TraceEntry, Tracer, trace_run  # noqa: F401
from .memory import MemoryMap, Region, SymMemory  # noqa: F401
from .reporting import (  # noqa: F401
    DIV_BY_ZERO,
    INVALID_INSTRUCTION,
    OOB_ACCESS,
    TAINTED_CONTROL,
    TRAP,
    UNINIT_READ,
    WRITE_TO_CODE,
    Defect,
    ExplorationResult,
    PathResult,
    solver_cache_summary,
)
from .state import SymState  # noqa: F401
from .strategy import (  # noqa: F401
    STRATEGIES,
    BfsStrategy,
    CoverageStrategy,
    DfsStrategy,
    RandomStrategy,
    Strategy,
    make_strategy,
)
