"""repro — ADL-based retargetable symbolic execution.

A from-scratch reproduction of *"Architecture description language based
retargetable symbolic execution"* (A. Ibing, DATE 2015).  One symbolic
execution engine is generated from per-ISA architecture descriptions:
decoder, assembler, disassembler, concrete simulator and symbolic
semantics all derive from a few hundred lines of ADL per target.

Quickstart::

    from repro import build, assemble, Engine

    model = build("rv32")                     # generated ISA model
    image = assemble(model, '''
    .org 0x1000
    start:
        inb x1
        addi x2, x0, 42
        bne x1, x2, ok
        trap 1
    ok: halt 0
    .entry start
    ''')
    engine = Engine(model)
    engine.load_image(image)
    result = engine.explore()
    print(result.summary())                   # trap found with input b'*'

Subpackages: :mod:`repro.smt` (bitvector solver), :mod:`repro.adl` (the
description language), :mod:`repro.ir` (register-transfer IR),
:mod:`repro.isa` (generated models/tools), :mod:`repro.core` (the symbolic
engine), :mod:`repro.obs` (metrics / event tracing / profiling),
:mod:`repro.programs` (workloads), :mod:`repro.baseline`
(hand-written comparison engine).
"""

from . import adl, baseline, core, ir, isa, obs, programs, smt  # noqa: F401
from .adl import builtin_spec_names, load_builtin_spec  # noqa: F401
from .core import (  # noqa: F401
    ConcolicExplorer,
    Defect,
    Engine,
    EngineConfig,
    ExplorationResult,
    PathResult,
)
from .isa import (  # noqa: F401
    ArchModel,
    Assembler,
    Image,
    MachineState,
    Simulator,
    assemble,
    build,
    format_instruction,
    run_image,
)
from .obs import Obs  # noqa: F401
from .smt import Solver  # noqa: F401

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "adl", "baseline", "core", "ir", "isa", "obs", "programs", "smt",
    "ArchModel", "Assembler", "ConcolicExplorer", "Defect", "Engine",
    "EngineConfig", "ExplorationResult", "Image", "MachineState",
    "Obs", "PathResult", "Simulator", "Solver",
    "assemble", "build", "builtin_spec_names", "format_instruction",
    "load_builtin_spec", "run_image",
]
