"""Benchmark runner + machine-readable result schema + A/B comparison.

One ``repro bench run`` produces a **report**::

    {
      "schema": "repro-bench/1",
      "generated_unix": ...,
      "suite": "quick",
      "env": { ...environment_snapshot()... },
      "env_digest": "sha256:...",
      "wall_s": 12.3,
      "results": [
        {
          "id": "solver_cache.repeated_speedup",
          "title": "...", "suite": "quick", "isas": ["rv32"],
          "workload": "...", "unit": "x", "direction": "higher",
          "reps": 3, "warmup": 1,
          "samples": [{"value": 1.91, "wall_s": ...,
                       "solver_time_s": ..., "steps_per_sec": ...}, ...],
          "median": 1.89, "mad": 0.02, "wall_s": 4.1,
          "expectations": [{"kind": "min", "threshold": 1.2,
                            "observed": 1.89, "passed": true}]
        }, ...
      ]
    }

The report is written as ``BENCH_<n>.json`` at the repo root (the
machine-readable perf snapshot this PR sequence tracks) and appended,
entry per benchmark, to the perf-history ledger
(:mod:`repro.bench.history`).

:func:`compare_reports` is the statistical regression gate: for every
benchmark present in both reports it runs :func:`repro.bench.stats.classify`
over the raw sample sets (median + MAD noise bands, direction-aware —
no raw single-sample thresholds anywhere) and re-evaluates the
candidate's declarative expectations.  ``repro bench compare`` exits 3
when anything regresses, mirroring ``repro diffstats``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..runstore.provenance import environment_snapshot
from . import stats
from .history import env_digest
from .registry import Benchmark, BenchError, Sample, benchmarks_dir

__all__ = ["REPORT_SCHEMA", "REPORT_BASENAME", "run_benchmarks",
           "default_report_path", "write_report", "load_report",
           "evaluate_expectations", "compare_reports", "ReportComparison",
           "BenchDiffRow", "render_report", "render_comparison"]

REPORT_SCHEMA = "repro-bench/1"

#: The checked-in perf snapshot of this PR (ISSUE 9's observatory).
REPORT_BASENAME = "BENCH_9.json"


def default_report_path(bench_dir: Optional[str] = None) -> str:
    """``BENCH_9.json`` next to the benchmarks directory (the repo
    root); falls back to the current directory."""
    try:
        directory = benchmarks_dir(bench_dir)
        return os.path.join(os.path.dirname(directory), REPORT_BASENAME)
    except BenchError:
        return os.path.join(os.getcwd(), REPORT_BASENAME)


def evaluate_expectations(bench: Benchmark, observed: float
                          ) -> List[Dict[str, object]]:
    """Declarative absolute expectations on the median (the migrated
    CI speedup guards).  Empty when the benchmark declares none."""
    rows: List[Dict[str, object]] = []
    if bench.expect_min is not None:
        rows.append({"kind": "min", "threshold": bench.expect_min,
                     "observed": observed,
                     "passed": observed >= bench.expect_min})
    if bench.expect_max is not None:
        rows.append({"kind": "max", "threshold": bench.expect_max,
                     "observed": observed,
                     "passed": observed <= bench.expect_max})
    return rows


def run_benchmarks(benches: Sequence[Benchmark], suite: str = "full",
                   reps: Optional[int] = None,
                   warmup: Optional[int] = None,
                   progress: Optional[Callable[[str], None]] = None
                   ) -> Dict[str, object]:
    """Run ``benches`` and build the report dict.

    ``reps`` / ``warmup`` override every benchmark's declared defaults
    (CI uses this to trade accuracy for time).  Per benchmark: warmup
    repetitions are executed and discarded, then ``reps`` timed
    repetitions each produce one :class:`Sample`; the headline number
    is the sample **median**, with the MAD recorded beside it.
    """
    say = progress or (lambda _line: None)
    started = time.perf_counter()
    results: List[Dict[str, object]] = []
    for bench in benches:
        bench_reps = reps if reps is not None else bench.reps
        bench_warm = warmup if warmup is not None else bench.warmup
        say("%s (%d warmup, %d reps)..."
            % (bench.id, bench_warm, bench_reps))
        bench_start = time.perf_counter()
        for _ in range(bench_warm):
            bench.fn()
        samples: List[Sample] = []
        for _ in range(max(1, bench_reps)):
            samples.append(Sample.of(bench.fn()))
        values = [sample.value for sample in samples]
        med = stats.median(values)
        row = bench.metadata()
        row.update({
            "reps": len(samples),
            "warmup": bench_warm,
            "samples": [sample.to_dict() for sample in samples],
            "median": round(med, 9),
            "mad": round(stats.mad(values), 9),
            "wall_s": round(time.perf_counter() - bench_start, 4),
            "expectations": evaluate_expectations(bench, med),
        })
        results.append(row)
        say("  %s = %.6g %s" % (bench.id, med, bench.unit))
    env = environment_snapshot()
    return {
        "schema": REPORT_SCHEMA,
        "generated_unix": round(time.time(), 3),
        "suite": suite,
        "env": env,
        "env_digest": env_digest(env),
        "wall_s": round(time.perf_counter() - started, 4),
        "results": results,
    }


def write_report(report: Dict[str, object], path: str) -> str:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_report(path: str) -> Dict[str, object]:
    """Load + validate a report file; raises :class:`BenchError` with a
    one-line story on anything unusable."""
    try:
        with open(path) as handle:
            report = json.load(handle)
    except OSError as exc:
        raise BenchError("cannot read %s: %s"
                         % (path, exc.strerror or exc))
    except ValueError as exc:
        raise BenchError("%s is not valid JSON: %s" % (path, exc))
    if not isinstance(report, dict):
        raise BenchError("%s is not a bench report (not an object)"
                         % path)
    if report.get("schema") != REPORT_SCHEMA:
        raise BenchError("%s has schema %r; this build reads %r"
                         % (path, report.get("schema"), REPORT_SCHEMA))
    if not isinstance(report.get("results"), list):
        raise BenchError("%s carries no results list" % path)
    return report


# -- comparison ---------------------------------------------------------------

class BenchDiffRow:
    """One benchmark across baseline (A) and candidate (B)."""

    __slots__ = ("bench_id", "unit", "verdict", "expectations", "flag")

    def __init__(self, bench_id: str, unit: str,
                 verdict: Optional[stats.Verdict],
                 expectations: List[Dict[str, object]]):
        self.bench_id = bench_id
        self.unit = unit
        self.verdict = verdict           # None: only in one report
        self.expectations = expectations
        failed = any(not e.get("passed") for e in expectations)
        if failed:
            self.flag = stats.REGRESSION
        elif verdict is None:
            self.flag = "unmatched"
        else:
            self.flag = verdict.flag

    def to_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {"id": self.bench_id, "unit": self.unit,
                                  "flag": self.flag,
                                  "expectations": self.expectations}
        if self.verdict is not None:
            row.update(self.verdict.to_dict())
        return row


class ReportComparison:
    """The statistical diff of two bench reports."""

    def __init__(self, path_a: str, path_b: str,
                 rows: List[BenchDiffRow], k: float, min_rel: float,
                 env_match: bool):
        self.path_a = path_a
        self.path_b = path_b
        self.rows = rows
        self.k = k
        self.min_rel = min_rel
        self.env_match = env_match

    @property
    def regressions(self) -> List[BenchDiffRow]:
        return [row for row in self.rows
                if row.flag == stats.REGRESSION]

    @property
    def improvements(self) -> List[BenchDiffRow]:
        return [row for row in self.rows
                if row.flag == stats.IMPROVEMENT]

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": REPORT_SCHEMA,
            "baseline": self.path_a,
            "candidate": self.path_b,
            "k": self.k,
            "min_rel": self.min_rel,
            "env_match": self.env_match,
            "rows": [row.to_dict() for row in self.rows],
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
        }


def compare_reports(report_a: Dict[str, object],
                    report_b: Dict[str, object],
                    path_a: str = "A", path_b: str = "B",
                    k: float = stats.DEFAULT_K,
                    min_rel: float = stats.DEFAULT_MIN_REL
                    ) -> ReportComparison:
    """Statistical A (baseline) vs B (candidate) gate.

    Per benchmark in both reports: classify B's samples against A's
    noise band.  B-only benchmarks get their expectations evaluated
    (they still gate) but no band; A-only benchmarks are reported as
    unmatched.  Differing env digests don't block the comparison —
    they're surfaced so a cross-machine diff reads as advisory.
    """
    results_a = {r.get("id"): r for r in report_a.get("results") or []}
    results_b = {r.get("id"): r for r in report_b.get("results") or []}
    rows: List[BenchDiffRow] = []
    for bench_id in sorted(set(results_a) | set(results_b)):
        in_a, in_b = results_a.get(bench_id), results_b.get(bench_id)
        current = in_b if in_b is not None else in_a
        expectations = list((in_b or {}).get("expectations") or [])
        verdict = None
        if in_a is not None and in_b is not None:
            samples_a = [s.get("value") for s in in_a.get("samples") or []
                         if isinstance(s.get("value"), (int, float))]
            samples_b = [s.get("value") for s in in_b.get("samples") or []
                         if isinstance(s.get("value"), (int, float))]
            if samples_a and samples_b:
                verdict = stats.classify(
                    samples_a, samples_b,
                    direction=current.get("direction", "lower"),
                    k=k, min_rel=min_rel)
        rows.append(BenchDiffRow(str(bench_id),
                                 str(current.get("unit", "")),
                                 verdict, expectations))
    env_match = (report_a.get("env_digest") == report_b.get("env_digest"))
    return ReportComparison(path_a, path_b, rows, k, min_rel, env_match)


# -- rendering ----------------------------------------------------------------

def _fmt(value: Optional[float]) -> str:
    return "%.6g" % value if isinstance(value, (int, float)) else "-"


def render_report(report: Dict[str, object]) -> str:
    """Human-readable run table (stdout of ``repro bench run``)."""
    lines = ["bench report (%s suite, %d benchmark%s, %.1fs)"
             % (report.get("suite", "?"),
                len(report.get("results") or []),
                "s" if len(report.get("results") or []) != 1 else "",
                report.get("wall_s") or 0.0),
             "",
             "  %-34s %12s %10s %6s %-9s %s"
             % ("benchmark", "median", "mad", "reps", "unit",
                "expectations"),
             "  " + "-" * 88]
    for result in report.get("results") or []:
        checks = []
        for exp in result.get("expectations") or []:
            checks.append("%s %s %.4g"
                          % ("PASS" if exp.get("passed") else "FAIL",
                             ">=" if exp.get("kind") == "min" else "<=",
                             exp.get("threshold", 0.0)))
        lines.append("  %-34s %12s %10s %6s %-9s %s"
                     % (result.get("id"), _fmt(result.get("median")),
                        _fmt(result.get("mad")), result.get("reps"),
                        result.get("unit"), "  ".join(checks)))
    failed = sum(1 for result in report.get("results") or []
                 for exp in result.get("expectations") or []
                 if not exp.get("passed"))
    lines.append("")
    lines.append("  expectations failed: %d" % failed)
    return "\n".join(lines)


def render_comparison(comparison: ReportComparison) -> str:
    """Human-readable compare table (``repro bench compare``)."""
    lines = ["bench comparison (noise band: max(%g*MAD, %.0f%%))"
             % (comparison.k, 100 * comparison.min_rel),
             "  A (baseline):  %s" % comparison.path_a,
             "  B (candidate): %s" % comparison.path_b]
    if not comparison.env_match:
        lines.append("  note: env digests differ — cross-machine diff, "
                     "bands are advisory")
    lines += ["",
              "  %-34s %12s %12s %9s  %-22s %s"
              % ("benchmark", "A median", "B median", "delta",
                 "band", "flag"),
              "  " + "-" * 100]
    for row in comparison.rows:
        verdict = row.verdict
        if verdict is None:
            lines.append("  %-34s %12s %12s %9s  %-22s %s"
                         % (row.bench_id, "-", "-", "-", "-", row.flag))
            continue
        delta = ("%+.1f%%" % (100 * verdict.delta_ratio)
                 if verdict.delta_ratio is not None else "-")
        band = "[%.6g, %.6g]" % (verdict.band.lo, verdict.band.hi)
        flag = "" if row.flag == stats.OK else row.flag.upper()
        lines.append("  %-34s %12s %12s %9s  %-22s %s"
                     % (row.bench_id, _fmt(verdict.baseline),
                        _fmt(verdict.candidate), delta, band, flag))
    lines.append("")
    lines.append("  regressions: %d   improvements: %d   compared: %d"
                 % (len(comparison.regressions),
                    len(comparison.improvements), len(comparison.rows)))
    return "\n".join(lines)
