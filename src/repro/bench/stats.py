"""Robust statistics for perf series: noise bands, verdicts,
changepoints.

Wall-clock benchmarks are noisy; a single-sample threshold ("fail if
this run is 20% slower than that run") flaps.  Everything here is built
on the median / MAD pair instead:

* **median** — the headline number of a repetition set; immune to the
  one GC pause or scheduler hiccup that ruins a mean.
* **MAD** (median absolute deviation) — the robust spread estimate.
  ``1.4826 * MAD`` estimates a normal sigma, but we use raw MAD with a
  generous multiplier and a *relative floor*: a tiny n with zero spread
  must not make every later run a "regression".
* **noise band** — ``median ± max(k*MAD, min_rel*|median|, min_abs)``:
  the region where a measurement is indistinguishable from the
  baseline.
* **verdict** — direction-aware A/B classification
  (:func:`classify`): the candidate median must leave the baseline's
  band *in the bad direction* and move by at least ``min_rel`` before
  it counts as a regression.  Same vocabulary as
  :mod:`repro.obs.compare` (``higher`` / ``lower`` is better).
* **changepoint** (:func:`changepoint`): two-segment split of a
  history series minimizing the summed absolute deviation around each
  segment's median — the "when did this land" question for
  ``repro bench history``.  A split only counts when the level shift
  clears the pooled noise band, so steady noise and gradual drift
  within the band stay quiet.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["median", "mad", "Band", "noise_band", "Verdict", "classify",
           "Changepoint", "changepoint", "sparkline",
           "DEFAULT_K", "DEFAULT_MIN_REL",
           "OK", "REGRESSION", "IMPROVEMENT"]

#: MAD multiplier for the noise band (3 * 1.4826*sigma-ish ~ very safe).
DEFAULT_K = 3.0
#: Relative floor of the band — changes below 5% are never flagged.
DEFAULT_MIN_REL = 0.05

HIGHER = "higher"
LOWER = "lower"

OK = "ok"
REGRESSION = "regression"
IMPROVEMENT = "improvement"


def median(values: Sequence[float]) -> float:
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("median of an empty series")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation around the median (0 for n == 1)."""
    center = median(values)
    return median([abs(float(v) - center) for v in values])


class Band:
    """A baseline's noise band: center, radius, [lo, hi]."""

    __slots__ = ("center", "radius")

    def __init__(self, center: float, radius: float):
        self.center = center
        self.radius = radius

    @property
    def lo(self) -> float:
        return self.center - self.radius

    @property
    def hi(self) -> float:
        return self.center + self.radius

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def to_dict(self) -> Dict[str, float]:
        return {"center": round(self.center, 9),
                "radius": round(self.radius, 9),
                "lo": round(self.lo, 9), "hi": round(self.hi, 9)}

    def __repr__(self):
        return "<Band %.6g ± %.6g>" % (self.center, self.radius)


def noise_band(values: Sequence[float], k: float = DEFAULT_K,
               min_rel: float = DEFAULT_MIN_REL,
               min_abs: float = 0.0) -> Band:
    """The band inside which a measurement is just noise.

    Radius = ``max(k * MAD, min_rel * |median|, min_abs)`` — the floors
    keep a low-spread (or single-sample) baseline honest.
    """
    center = median(values)
    radius = max(k * mad(values), min_rel * abs(center), min_abs)
    return Band(center, radius)


class Verdict:
    """A/B comparison outcome for one benchmark."""

    __slots__ = ("flag", "baseline", "candidate", "direction",
                 "delta_ratio", "worse_ratio", "band")

    def __init__(self, flag: str, baseline: float, candidate: float,
                 direction: str, delta_ratio: Optional[float],
                 worse_ratio: Optional[float], band: Band):
        self.flag = flag                 # ok | regression | improvement
        self.baseline = baseline         # baseline median
        self.candidate = candidate       # candidate median
        self.direction = direction
        self.delta_ratio = delta_ratio   # raw (B-A)/A, signed by value
        self.worse_ratio = worse_ratio   # signed toward "worse"
        self.band = band

    def to_dict(self) -> Dict[str, object]:
        return {"flag": self.flag,
                "baseline_median": self.baseline,
                "candidate_median": self.candidate,
                "direction": self.direction,
                "delta_ratio": self.delta_ratio,
                "worse_ratio": self.worse_ratio,
                "band": self.band.to_dict()}


def classify(baseline: Sequence[float], candidate: Sequence[float],
             direction: str = LOWER, k: float = DEFAULT_K,
             min_rel: float = DEFAULT_MIN_REL) -> Verdict:
    """Direction-aware, noise-robust comparison of two sample sets.

    A *regression* needs both: the candidate median outside the
    baseline noise band in the bad direction, AND a relative move of at
    least ``min_rel``.  Improvements are the mirror image.  Everything
    else — including any move on a zero baseline — is ``ok``.
    """
    if direction not in (HIGHER, LOWER):
        raise ValueError("direction must be 'higher' or 'lower', got %r"
                         % (direction,))
    band = noise_band(baseline, k=k, min_rel=min_rel)
    cand = median(candidate)
    base = band.center
    if base == 0:
        return Verdict(OK, base, cand, direction, None, None, band)
    raw = (cand - base) / abs(base)
    worse = -raw if direction == HIGHER else raw
    flag = OK
    if not band.contains(cand) and abs(raw) >= min_rel:
        flag = REGRESSION if worse > 0 else IMPROVEMENT
    return Verdict(flag, base, cand, direction, raw, worse, band)


class Changepoint:
    """A detected level shift in a history series."""

    __slots__ = ("index", "before", "after", "shift_ratio")

    def __init__(self, index: int, before: float, after: float,
                 shift_ratio: float):
        self.index = index               # first index of the new level
        self.before = before             # median of series[:index]
        self.after = after               # median of series[index:]
        self.shift_ratio = shift_ratio   # (after-before)/|before|

    def to_dict(self) -> Dict[str, object]:
        return {"index": self.index, "before": self.before,
                "after": self.after,
                "shift_ratio": round(self.shift_ratio, 6)}

    def __repr__(self):
        return ("<Changepoint @%d %.6g -> %.6g (%+.1f%%)>"
                % (self.index, self.before, self.after,
                   100 * self.shift_ratio))


def _abs_dev_cost(values: Sequence[float]) -> float:
    center = median(values)
    return sum(abs(v - center) for v in values)


def changepoint(values: Sequence[float], k: float = DEFAULT_K,
                min_rel: float = DEFAULT_MIN_REL,
                min_segment: int = 3) -> Optional[Changepoint]:
    """Best single step change in ``values``, or None.

    Scans every split leaving ``min_segment`` points on each side,
    keeps the one minimizing the summed absolute deviation around each
    segment's median, and reports it only when the level shift clears
    the pooled noise band — so flat series, noisy-but-flat series and
    drift within the band return None.  Series shorter than
    ``2 * min_segment`` carry too little evidence: also None.
    """
    series = [float(v) for v in values]
    if len(series) < 2 * min_segment:
        return None
    best_split = None
    best_cost = None
    for split in range(min_segment, len(series) - min_segment + 1):
        cost = (_abs_dev_cost(series[:split])
                + _abs_dev_cost(series[split:]))
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_split = split
    assert best_split is not None
    before = series[:best_split]
    after = series[best_split:]
    med_before, med_after = median(before), median(after)
    if med_before == 0:
        return None
    # The shift must clear the noise of BOTH segments — a split that
    # merely bisects noise has overlapping bands and stays quiet.
    pooled = max(k * mad(before), k * mad(after),
                 min_rel * abs(med_before))
    if abs(med_after - med_before) <= pooled:
        return None
    shift = (med_after - med_before) / abs(med_before)
    return Changepoint(best_split, med_before, med_after, shift)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Unicode sparkline of a series (newest right), for
    ``repro bench history``."""
    blocks = "▁▂▃▄▅▆▇█"
    series = [float(v) for v in values][-width:]
    if not series:
        return ""
    lo, hi = min(series), max(series)
    if hi == lo:
        return blocks[3] * len(series)
    scale = (len(blocks) - 1) / (hi - lo)
    return "".join(blocks[int(round((v - lo) * scale))] for v in series)
