"""Perf-history ledger: append-only, content-addressed, store-backed.

Each ``repro bench run`` appends one JSONL entry per benchmark to
``<store-root>/bench/history.jsonl`` (same root resolution as the run
store: ``--store DIR`` > ``$REPRO_STORE`` > ``~/.repro/store``), so a
machine accumulates its own perf trajectory across checkouts and PRs.

An entry is keyed on ``(benchmark id, git sha, env digest)`` and
carries its own ``sha256`` content digest (computed over the canonical
JSON of the entry minus the ``digest`` field — the same discipline as
the run store's run ids), which makes the ledger:

* **dedupable** — re-running an identical benchmark at the same
  revision in the same environment appends nothing new;
* **tamper-evident** — a hand-edited median no longer matches its
  digest and the reader drops the entry with a warning;
* **mergeable** — ledgers from two machines can be concatenated; the
  env digest keeps their noise bands separate.

The reader is tolerant the way every other sidecar reader in this
repo is: blank lines are skipped, an unparseable or truncated line (a
killed writer's last line) is skipped with a warning, and a wrong
schema version is skipped rather than guessed at.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, List, Optional, Tuple

from ..runstore.provenance import canonical_json
from ..runstore.store import resolve_store_root

__all__ = ["PerfLedger", "LEDGER_SCHEMA", "entry_digest", "env_digest"]

LEDGER_SCHEMA = "repro-bench/1"

#: Ledger location under the store root.
LEDGER_RELPATH = os.path.join("bench", "history.jsonl")


def env_digest(env: Dict[str, object]) -> str:
    """Digest of the *stable* environment fields — the "same machine,
    same toolchain" key component.  Volatile fields (argv, git sha)
    are deliberately excluded: the sha is its own key component and
    argv is not an environment."""
    stable = {key: env.get(key) for key in
              ("python", "implementation", "platform", "machine",
               "package_version")}
    rendered = canonical_json(stable).encode("utf-8")
    return "sha256:" + hashlib.sha256(rendered).hexdigest()[:24]


def entry_digest(entry: Dict[str, object]) -> str:
    """Content digest of a ledger entry (minus its ``digest`` field)."""
    payload = {key: val for key, val in entry.items() if key != "digest"}
    rendered = canonical_json(payload).encode("utf-8")
    return "sha256:" + hashlib.sha256(rendered).hexdigest()[:32]


class PerfLedger:
    """Append-only perf history under the run store root."""

    def __init__(self, root: Optional[str] = None):
        self.root = resolve_store_root(root)
        self.path = os.path.join(self.root, LEDGER_RELPATH)

    # -- writing -------------------------------------------------------------

    def append_report(self, report: Dict[str, object]) -> List[Dict[str, object]]:
        """Append one ledger entry per benchmark result in a runner
        report; returns the entries actually written (content-addressed
        dedup: an entry whose digest is already present is skipped)."""
        env = report.get("env") or {}
        entries = []
        for result in report.get("results") or []:
            entry = {
                "schema": LEDGER_SCHEMA,
                "bench": result.get("id"),
                "unix": report.get("generated_unix"),
                "git_sha": env.get("git_sha"),
                "env_digest": report.get("env_digest") or env_digest(env),
                "unit": result.get("unit"),
                "direction": result.get("direction"),
                "median": result.get("median"),
                "mad": result.get("mad"),
                "reps": result.get("reps"),
                "samples": [s.get("value") for s in
                            (result.get("samples") or [])],
            }
            entry["digest"] = entry_digest(entry)
            entries.append(entry)
        return self.append_entries(entries)

    def append_entries(self, entries: List[Dict[str, object]]
                       ) -> List[Dict[str, object]]:
        seen = {e.get("digest") for e, _w in self._read_raw()[0]}
        fresh = [e for e in entries if e.get("digest") not in seen]
        if not fresh:
            return []
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        with open(self.path, "a") as handle:
            for entry in fresh:
                handle.write(canonical_json(entry) + "\n")
        return fresh

    # -- reading -------------------------------------------------------------

    def _read_raw(self) -> Tuple[List[Tuple[Dict[str, object], None]],
                                 List[str]]:
        """All well-formed entries + reader warnings.  Missing file is
        simply an empty history."""
        import json
        rows: List[Tuple[Dict[str, object], None]] = []
        warnings: List[str] = []
        try:
            with open(self.path) as handle:
                lines = handle.read().split("\n")
        except OSError:
            return rows, warnings
        for number, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                warnings.append("%s:%d: unparseable line skipped"
                                % (self.path, number))
                continue
            if not isinstance(entry, dict):
                warnings.append("%s:%d: non-object entry skipped"
                                % (self.path, number))
                continue
            if entry.get("schema") != LEDGER_SCHEMA:
                warnings.append("%s:%d: unknown schema %r skipped"
                                % (self.path, number,
                                   entry.get("schema")))
                continue
            if entry.get("digest") != entry_digest(entry):
                warnings.append("%s:%d: digest mismatch (tampered or "
                                "corrupt) skipped"
                                % (self.path, number))
                continue
            rows.append((entry, None))
        return rows, warnings

    def entries(self, bench_id: Optional[str] = None
                ) -> Tuple[List[Dict[str, object]], List[str]]:
        """(entries, warnings) — chronological; optionally one bench."""
        rows, warnings = self._read_raw()
        entries = [entry for entry, _ in rows
                   if bench_id is None or entry.get("bench") == bench_id]
        entries.sort(key=lambda e: (e.get("unix") or 0.0))
        return entries, warnings

    def series(self, bench_id: str,
               env: Optional[str] = None) -> List[float]:
        """The chronological median series of one benchmark (optionally
        restricted to one env digest), for changepoint scans."""
        entries, _ = self.entries(bench_id)
        values = []
        for entry in entries:
            if env is not None and entry.get("env_digest") != env:
                continue
            value = entry.get("median")
            if isinstance(value, (int, float)):
                values.append(float(value))
        return values

    def bench_ids(self) -> List[str]:
        entries, _ = self.entries()
        return sorted({str(e.get("bench")) for e in entries
                       if e.get("bench")})
