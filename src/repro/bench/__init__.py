"""Performance observatory: benchmark framework + perf history + gates.

The ``benchmarks/bench_*.py`` modules used to be 13 ad-hoc scripts,
each with its own timing loop, table printer and (for three of them) a
hand-rolled wall-clock CI guard.  This package is the framework they
all register into:

* :mod:`repro.bench.registry` — declarative :class:`Benchmark`
  metadata (suite, ISA targets, workload, unit, higher/lower-is-better
  direction, absolute expectations) + discovery of the bench modules;
* :mod:`repro.bench.runner` — warmup, median-of-k repetitions with MAD
  spread, per-rep wall/solver-time/steps-per-sec from the telemetry
  summaries, environment provenance, the schema-versioned
  ``BENCH_<n>.json`` report, and the statistical A/B comparison;
* :mod:`repro.bench.history` — the append-only, content-addressed
  perf-history ledger under the run store, so trajectories survive
  across PRs and machines;
* :mod:`repro.bench.stats` — median/MAD noise bands, direction-aware
  verdicts and changepoint detection (no raw single-sample thresholds
  anywhere).

CLI: ``repro bench list | run | compare | history`` — see
``docs/OBSERVABILITY.md`` ("Performance observatory").
"""

from .history import LEDGER_SCHEMA, PerfLedger, entry_digest, env_digest  # noqa: F401,E501
from .registry import (  # noqa: F401
    SUITES,
    BenchError,
    Benchmark,
    Sample,
    all_benchmarks,
    benchmark,
    benchmarks_dir,
    clear_registry,
    discover,
    get,
    register,
    suite_benchmarks,
)
from .runner import (  # noqa: F401
    REPORT_BASENAME,
    REPORT_SCHEMA,
    BenchDiffRow,
    ReportComparison,
    compare_reports,
    default_report_path,
    evaluate_expectations,
    load_report,
    render_comparison,
    render_report,
    run_benchmarks,
    write_report,
)
from .stats import (  # noqa: F401
    IMPROVEMENT,
    OK,
    REGRESSION,
    Band,
    Changepoint,
    Verdict,
    changepoint,
    classify,
    mad,
    median,
    noise_band,
    sparkline,
)

__all__ = [
    "Benchmark", "Sample", "BenchError", "SUITES", "benchmark",
    "register", "get", "all_benchmarks", "suite_benchmarks",
    "clear_registry", "discover", "benchmarks_dir",
    "REPORT_SCHEMA", "REPORT_BASENAME", "run_benchmarks",
    "default_report_path", "write_report", "load_report",
    "evaluate_expectations", "compare_reports", "ReportComparison",
    "BenchDiffRow", "render_report", "render_comparison",
    "PerfLedger", "LEDGER_SCHEMA", "entry_digest", "env_digest",
    "median", "mad", "Band", "noise_band", "Verdict", "classify",
    "Changepoint", "changepoint", "sparkline",
    "OK", "REGRESSION", "IMPROVEMENT",
]
