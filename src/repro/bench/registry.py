"""Benchmark registry: declarative metadata + module discovery.

Every ``benchmarks/bench_*.py`` module *registers* what it measures
instead of hand-rolling its own timing / printing / guard boilerplate::

    from repro.bench import benchmark

    @benchmark(bench_id="solver_cache.repeated_speedup",
               title="solver cache: repeated-query speedup",
               suite="quick", isas=("rv32",), unit="x",
               direction="higher", expect_min=1.20,
               workload="maze(depth 9)+checksum(len 5), explored twice")
    def _bench():
        return guard_speedup()

The decorated function produces **one sample per repetition** — a bare
number, a :class:`Sample`, or a dict.  The runner
(:mod:`repro.bench.runner`) handles warmup, repetitions, medians and
noise bands; the registry only holds the *declaration*:

* ``suite`` — ``"quick"`` benchmarks run in the CI observatory job on
  every push; ``"full"`` ones only when the full suite is requested
  (the full suite is a superset of quick).
* ``direction`` — ``"higher"`` or ``"lower"`` is better, reusing the
  vocabulary of :mod:`repro.obs.compare` so ``repro bench compare``
  and ``repro diffstats`` flag regressions the same way.
* ``expect_min`` / ``expect_max`` — declarative absolute expectations
  on the *median* (the old hand-rolled CI guards, e.g. the >= 1.20x
  solver-cache speedup, live here now).  Environment-independent, so
  they gate on any machine; the statistical comparator handles the
  machine-relative part.
"""

from __future__ import annotations

import importlib.util
import os
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["Benchmark", "Sample", "BenchError", "SUITES", "benchmark",
           "register", "get", "all_benchmarks", "suite_benchmarks",
           "clear_registry", "discover", "benchmarks_dir"]

SUITES = ("quick", "full")

HIGHER = "higher"
LOWER = "lower"


class BenchError(Exception):
    """Registry misuse or a benchmark that cannot run."""


class Sample:
    """One repetition's measurement.

    ``value`` is the benchmark's headline metric (in ``unit``); the
    optional fields carry the per-rep context the ISSUE asks for —
    wall seconds, solver seconds and steps/sec pulled from the
    exploration's telemetry summary — plus free-form ``extra``.
    """

    __slots__ = ("value", "wall_s", "solver_time_s", "steps_per_sec",
                 "extra")

    def __init__(self, value: float, wall_s: Optional[float] = None,
                 solver_time_s: Optional[float] = None,
                 steps_per_sec: Optional[float] = None,
                 extra: Optional[Dict[str, object]] = None):
        self.value = float(value)
        self.wall_s = wall_s
        self.solver_time_s = solver_time_s
        self.steps_per_sec = steps_per_sec
        self.extra = dict(extra) if extra else None

    @classmethod
    def of(cls, raw) -> "Sample":
        """Normalize a benchmark function's return value."""
        if isinstance(raw, Sample):
            return raw
        if isinstance(raw, dict):
            if "value" not in raw:
                raise BenchError("sample dict needs a 'value' key: %r"
                                 % (raw,))
            known = {key: raw.get(key) for key in
                     ("wall_s", "solver_time_s", "steps_per_sec")}
            extra = {key: val for key, val in raw.items()
                     if key not in ("value", "wall_s", "solver_time_s",
                                    "steps_per_sec")}
            return cls(raw["value"], extra=extra or None, **known)
        if isinstance(raw, (int, float)) and not isinstance(raw, bool):
            return cls(raw)
        raise BenchError("benchmark returned %r; expected a number, "
                         "Sample, or dict with 'value'" % (raw,))

    @classmethod
    def from_result(cls, value: float, result=None,
                    wall: Optional[float] = None,
                    **extra) -> "Sample":
        """Build a sample from an ``ExplorationResult`` — the standard
        way a bench module forwards the telemetry summary's wall /
        solver-time / steps-per-sec alongside its headline metric."""
        wall_s = wall
        solver_s = None
        steps = None
        if result is not None:
            if wall_s is None:
                wall_s = getattr(result, "wall_time", None)
            stats = getattr(result, "solver_stats", None) or {}
            solve = stats.get("solve_time")
            if isinstance(solve, (int, float)):
                solver_s = float(solve)
            instructions = getattr(result, "instructions_executed", None)
            if (isinstance(instructions, (int, float)) and wall_s):
                steps = instructions / wall_s
        return cls(value, wall_s=wall_s, solver_time_s=solver_s,
                   steps_per_sec=steps, extra=extra or None)

    def to_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {"value": self.value}
        for key in ("wall_s", "solver_time_s", "steps_per_sec"):
            val = getattr(self, key)
            if val is not None:
                row[key] = round(float(val), 6)
        if self.extra:
            row["extra"] = self.extra
        return row


class Benchmark:
    """One registered benchmark: metadata + the sample function."""

    def __init__(self, bench_id: str, fn: Callable[[], object],
                 title: str = "", suite: str = "full",
                 isas: Sequence[str] = ("rv32",), workload: str = "",
                 unit: str = "s", direction: str = LOWER,
                 reps: int = 3, warmup: int = 1,
                 expect_min: Optional[float] = None,
                 expect_max: Optional[float] = None,
                 module: str = ""):
        if suite not in SUITES:
            raise BenchError("benchmark %r: suite must be one of %s, "
                             "got %r" % (bench_id, SUITES, suite))
        if direction not in (HIGHER, LOWER):
            raise BenchError("benchmark %r: direction must be 'higher' "
                             "or 'lower', got %r" % (bench_id, direction))
        if reps < 1:
            raise BenchError("benchmark %r: reps must be >= 1"
                             % bench_id)
        self.id = bench_id
        self.fn = fn
        self.title = title or bench_id
        self.suite = suite
        self.isas = tuple(isas)
        self.workload = workload
        self.unit = unit
        self.direction = direction
        self.reps = reps
        self.warmup = warmup
        self.expect_min = expect_min
        self.expect_max = expect_max
        self.module = module

    def metadata(self) -> Dict[str, object]:
        meta: Dict[str, object] = {
            "id": self.id, "title": self.title, "suite": self.suite,
            "isas": list(self.isas), "workload": self.workload,
            "unit": self.unit, "direction": self.direction,
        }
        if self.expect_min is not None:
            meta["expect_min"] = self.expect_min
        if self.expect_max is not None:
            meta["expect_max"] = self.expect_max
        return meta

    def __repr__(self):
        return "<Benchmark %s (%s)>" % (self.id, self.suite)


_REGISTRY: Dict[str, Benchmark] = {}


def register(bench: Benchmark) -> Benchmark:
    """Register one benchmark; re-registering the same id replaces it
    (module re-imports in one process must not error)."""
    _REGISTRY[bench.id] = bench
    return bench


def benchmark(bench_id: str, **meta):
    """Decorator form of :func:`register`."""

    def wrap(fn):
        register(Benchmark(bench_id, fn,
                           module=getattr(fn, "__module__", ""), **meta))
        return fn

    return wrap


def get(bench_id: str) -> Benchmark:
    try:
        return _REGISTRY[bench_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none registered"
        raise BenchError("unknown benchmark %r (known: %s)"
                         % (bench_id, known))


def all_benchmarks() -> List[Benchmark]:
    return [_REGISTRY[bench_id] for bench_id in sorted(_REGISTRY)]


def suite_benchmarks(suite: str) -> List[Benchmark]:
    """``quick`` -> quick benchmarks only; ``full`` -> everything."""
    if suite not in SUITES:
        raise BenchError("unknown suite %r (choose from %s)"
                         % (suite, "/".join(SUITES)))
    if suite == "full":
        return all_benchmarks()
    return [bench for bench in all_benchmarks() if bench.suite == suite]


def clear_registry() -> None:
    """Tests only: drop every registration."""
    _REGISTRY.clear()


# -- discovery ----------------------------------------------------------------

def benchmarks_dir(explicit: Optional[str] = None) -> str:
    """Locate the ``benchmarks/`` directory holding ``bench_*.py``.

    Preference order: an explicit path, ``$REPRO_BENCH_DIR``, the
    source checkout this package sits in, the current directory.
    """
    if explicit:
        # An explicit path is authoritative: a typo must not silently
        # fall through to some other checkout's benchmarks.
        explicit = os.path.abspath(os.path.expanduser(explicit))
        if not os.path.isdir(explicit):
            raise BenchError("benchmarks directory %s does not exist"
                             % explicit)
        return explicit
    candidates: List[str] = []
    env = os.environ.get("REPRO_BENCH_DIR")
    if env:
        candidates.append(env)
    here = os.path.dirname(os.path.abspath(__file__))
    # src/repro/bench -> repo root -> benchmarks/
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    candidates.append(os.path.join(repo_root, "benchmarks"))
    candidates.append(os.path.join(os.getcwd(), "benchmarks"))
    for candidate in candidates:
        candidate = os.path.abspath(os.path.expanduser(candidate))
        if os.path.isdir(candidate):
            return candidate
    raise BenchError("cannot locate a benchmarks/ directory (tried %s); "
                     "pass --dir or set $REPRO_BENCH_DIR"
                     % ", ".join(candidates))


def discover(directory: Optional[str] = None) -> Tuple[str, List[str]]:
    """Import every ``bench_*.py`` in the benchmarks directory so its
    registrations land in the registry.

    Returns ``(directory, imported module names)``.  A module that
    fails to import is a hard error — a silently skipped benchmark
    would read as "no regression" in CI.
    """
    directory = benchmarks_dir(directory)
    imported: List[str] = []
    # bench modules do ``from _util import ...``: they expect their own
    # directory on sys.path, exactly like running them as scripts.
    added_path = directory not in sys.path
    if added_path:
        sys.path.insert(0, directory)
    try:
        for filename in sorted(os.listdir(directory)):
            if not (filename.startswith("bench_")
                    and filename.endswith(".py")):
                continue
            name = "repro_benchmarks." + filename[:-3]
            if name in sys.modules:
                imported.append(filename[:-3])
                continue
            spec = importlib.util.spec_from_file_location(
                name, os.path.join(directory, filename))
            if spec is None or spec.loader is None:
                raise BenchError("cannot load %s" % filename)
            module = importlib.util.module_from_spec(spec)
            sys.modules[name] = module
            try:
                spec.loader.exec_module(module)
            except Exception as exc:
                sys.modules.pop(name, None)
                raise BenchError("importing %s failed: %s"
                                 % (filename, exc))
            imported.append(filename[:-3])
    finally:
        if added_path:
            try:
                sys.path.remove(directory)
            except ValueError:
                pass
    return directory, imported
