"""Verification certificates: cached translation-validation verdicts.

A full translation-validation run re-proves every rule of an ISA from
scratch; a *certificate* records that a specific spec, compiled by a
specific code generator, was already verified by a specific validator —
so re-linting an unchanged tree is a cache hit instead of a proof.

Key discipline mirrors the run store: a certificate is addressed by
``(spec digest, codegen version, validator version, pass id)``.  Any
input that could change the verdict is in the key —

* editing the spec changes :func:`~repro.runstore.provenance.spec_digest`,
* changing the code generator bumps
  :data:`repro.compile.CODEGEN_VERSION`,
* changing the validator bumps
  :data:`repro.verify.VALIDATOR_VERSION`,

— so a stale "verified" can never be replayed against artifacts it
never saw.  Certificates are stored one JSON file per key under
``<store root>/certs/`` (same root resolution as runs: ``--store`` >
``$REPRO_STORE`` > ``~/.repro/store``) and only written for *clean*
verdicts: counterexamples and unsupported rules must be re-derived
every run so their findings always carry fresh witnesses.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional

from .provenance import canonical_json, content_digest
from .store import resolve_store_root

__all__ = ["certificate_key", "load_certificate", "save_certificate"]

CERTS_DIR = "certs"

#: Certificate format version (distinct from the validator version:
#: this one only tracks the *file layout*).
CERT_FORMAT = 1


def certificate_key(spec_digest: str, codegen_version: int,
                    validator_version: int, pass_id: str) -> str:
    """Content address of one (spec, generator, validator, pass) cell."""
    return content_digest({
        "kind": "transval-cert",
        "format": CERT_FORMAT,
        "spec": spec_digest,
        "codegen_version": codegen_version,
        "validator_version": validator_version,
        "pass": pass_id,
    })


def _cert_path(root: Optional[str], key: str) -> str:
    digest = key.split(":", 1)[-1]
    return os.path.join(resolve_store_root(root), CERTS_DIR,
                        digest + ".json")


def load_certificate(spec_digest: str, codegen_version: int,
                     validator_version: int, pass_id: str,
                     store_root: Optional[str] = None
                     ) -> Optional[Dict[str, object]]:
    """The cached clean verdict for this key, or None (miss/corrupt)."""
    key = certificate_key(spec_digest, codegen_version,
                          validator_version, pass_id)
    path = _cert_path(store_root, key)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("key") != key:
        return None
    return payload


def save_certificate(spec_digest: str, codegen_version: int,
                     validator_version: int, pass_id: str,
                     summary: Dict[str, object],
                     store_root: Optional[str] = None) -> str:
    """Persist a clean verdict; returns the certificate path.

    ``summary`` is the pass's own record (isa, rule count, tier
    counts, wall time) — trusted only as far as its key: any input
    change re-addresses the certificate and forces a re-proof.
    """
    key = certificate_key(spec_digest, codegen_version,
                          validator_version, pass_id)
    path = _cert_path(store_root, key)
    payload = {
        "key": key,
        "format": CERT_FORMAT,
        "spec": spec_digest,
        "codegen_version": codegen_version,
        "validator_version": validator_version,
        "pass": pass_id,
        "summary": summary,
    }
    os.makedirs(os.path.dirname(path), exist_ok=True)
    # Atomic publish: a concurrent reader sees the old cert or the new
    # one, never a torn file.
    handle, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(canonical_json(payload))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
