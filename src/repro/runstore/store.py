"""Content-addressed run store: every exploration an immutable artifact.

A *run* is keyed by what determines its outcome — nothing more, nothing
less::

    run_id = sha256(canonical_json({
        isa, spec digest, program {base, entry, data}, engine config,
        strategy, seed, memory regions}))[:32]

Two submissions with the same key are the *same exploration*: the
engine is deterministic given that tuple (state ids and wall-clock are
process-local, which is why fingerprints canonicalize them — see
:mod:`repro.runstore.fingerprint`).  That buys three things:

* **dedup** — :func:`cached_explore` answers a repeated submission from
  the store (``store.hit`` counter + ``store`` event) without building
  an engine, so zero new solver checks;
* **replay** — :mod:`repro.runstore.replay` re-executes from the stored
  key and verifies the tree/leaf/defect fingerprints bit-for-bit;
* **warm starts** — a recorded run persists its solver
  :class:`~repro.smt.cache.QueryCache` (process-portable structural
  digests), which a later exploration can preload.

Layout (under ``~/.repro/store`` or ``--store DIR`` /
``$REPRO_STORE``)::

    runs/<run_id>/manifest.json        key, digests, fingerprints, env
    runs/<run_id>/events.jsonl.gz      full schema event stream
    runs/<run_id>/result.json          serialized ExplorationResult
    runs/<run_id>/solver_cache.json.gz persisted QueryCache (optional)
    runs/<run_id>/attr.json            cost-attribution profile
                                       (optional; repro hot <run_id>)

Writes are atomic: a run is streamed into ``runs/.tmp-*`` and
``os.rename``-d into place, so readers never observe a half-written
run and concurrent recorders of the same key race harmlessly.
"""

from __future__ import annotations

import gzip
import json
import os
import shutil
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.executor import Engine, EngineConfig
from ..core.reporting import ExplorationResult
from ..isa.assembler import Image
from ..obs import JsonlSink, Obs
from ..obs.events import STORE
from ..obs.sinks import load_run
from .fingerprint import (defects_fingerprint, leaves_fingerprint,
                          tree_fingerprint)
from .provenance import (canonical_json, content_digest,
                         environment_snapshot, spec_digest)

__all__ = ["RunStore", "RunStoreError", "StoredRun", "resolve_store_root",
           "run_key", "image_payload", "image_from_payload",
           "cached_explore", "record_exploration"]

#: Environment override for the store root; the CLI ``--store DIR``
#: flag wins over it, the default ``~/.repro/store`` loses to both.
STORE_ENV = "REPRO_STORE"
DEFAULT_ROOT = os.path.join("~", ".repro", "store")

MANIFEST = "manifest.json"
EVENTS = "events.jsonl.gz"
RESULT = "result.json"
SOLVER_CACHE = "solver_cache.json.gz"
ATTR = "attr.json"


class RunStoreError(Exception):
    """Store misuse, a missing/ambiguous run id, or a corrupt run."""


def resolve_store_root(path: Optional[str] = None) -> str:
    """``--store DIR`` > ``$REPRO_STORE`` > ``~/.repro/store``."""
    if path:
        return os.path.abspath(os.path.expanduser(path))
    env = os.environ.get(STORE_ENV)
    if env:
        return os.path.abspath(os.path.expanduser(env))
    return os.path.expanduser(DEFAULT_ROOT)


def image_payload(image) -> Dict[str, object]:
    """The outcome-relevant bytes of an assembled image."""
    return {"base": image.base, "entry": image.entry,
            "data": bytes(image.data).hex()}


def image_from_payload(payload: Dict[str, object]) -> Image:
    """Rebuild a loadable :class:`Image` from :func:`image_payload`."""
    image = Image(payload["base"])
    image.data = bytearray(bytes.fromhex(payload.get("data", "") or ""))
    image.entry = payload.get("entry", image.base)
    return image


def _normalize_regions(regions) -> List[List[object]]:
    rows = []
    for region in regions or ():
        start, size = region[0], region[1]
        track = bool(region[2]) if len(region) > 2 else False
        rows.append([start, size, track])
    return rows


def run_key(isa: str, spec: str, image, config: EngineConfig,
            strategy: str, seed: int,
            regions: Sequence = ()) -> Dict[str, object]:
    """The canonical key material of one exploration."""
    return {
        "isa": isa,
        "spec": spec,
        "program": image_payload(image),
        "config": config.to_dict(),
        "strategy": strategy,
        "seed": seed,
        "regions": _normalize_regions(regions),
    }


def key_digests(key: Dict[str, object]) -> Dict[str, str]:
    """Per-component digests of a run key.  Recorded in the manifest so
    replay can name *which* component a tampered run diverges in."""
    return {
        "spec": str(key.get("spec")),
        "program": content_digest(key.get("program")),
        "config": content_digest(key.get("config")),
        "strategy": content_digest({"strategy": key.get("strategy"),
                                    "seed": key.get("seed"),
                                    "regions": key.get("regions")}),
    }


def _jsonable(value):
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).hex()
    return str(value)


class StoredRun:
    """Read handle on one committed run directory."""

    def __init__(self, root: str, run_id: str):
        self.run_id = run_id
        self.path = os.path.join(root, "runs", run_id)
        self._manifest: Optional[Dict[str, object]] = None

    @property
    def manifest(self) -> Dict[str, object]:
        if self._manifest is None:
            try:
                with open(os.path.join(self.path, MANIFEST)) as handle:
                    self._manifest = json.load(handle)
            except (OSError, ValueError) as exc:
                raise RunStoreError("run %s has no readable manifest: %s"
                                    % (self.run_id, exc))
        return self._manifest

    @property
    def key(self) -> Dict[str, object]:
        return self.manifest.get("key") or {}

    @property
    def fingerprints(self) -> Dict[str, str]:
        return dict(self.manifest.get("fingerprints") or {})

    @property
    def environment(self) -> Dict[str, object]:
        return dict(self.manifest.get("env") or {})

    @property
    def created(self) -> float:
        return float(self.manifest.get("created", 0.0))

    @property
    def events_path(self) -> str:
        return os.path.join(self.path, EVENTS)

    def events(self):
        """The recorded schema event stream (list of ``Event``)."""
        return load_run(self.events_path).events

    def result_dict(self) -> Dict[str, object]:
        try:
            with open(os.path.join(self.path, RESULT)) as handle:
                return json.load(handle)
        except (OSError, ValueError) as exc:
            raise RunStoreError("run %s has no readable result: %s"
                                % (self.run_id, exc))

    def result(self) -> ExplorationResult:
        return ExplorationResult.from_dict(self.result_dict())

    def solver_cache(self) -> Optional[Dict[str, object]]:
        """The persisted QueryCache snapshot, or None (not recorded or
        unreadable — a warm start degrades to cold, never errors)."""
        path = os.path.join(self.path, SOLVER_CACHE)
        try:
            with gzip.open(path, "rt") as handle:
                return json.load(handle)
        except (OSError, EOFError, ValueError):
            return None

    def attr(self) -> Optional[Dict[str, object]]:
        """The cost-attribution profile (``repro.obs.attr`` snapshot
        block), or None — runs recorded without ``--attr`` (or by older
        code) simply have no profile; a corrupt artifact degrades to
        None, never errors (``repro hot`` reports it as missing)."""
        path = os.path.join(self.path, ATTR)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def __repr__(self):
        return "<StoredRun %s>" % self.run_id


class RunStore:
    """The content-addressed store: lookup, listing, gc."""

    def __init__(self, root: Optional[str] = None):
        self.root = resolve_store_root(root)
        self.runs_dir = os.path.join(self.root, "runs")

    @staticmethod
    def run_id_for(key: Dict[str, object]) -> str:
        import hashlib
        rendered = canonical_json(key).encode("utf-8")
        return hashlib.sha256(rendered).hexdigest()[:32]

    # -- lookup --------------------------------------------------------------

    def _ids(self) -> List[str]:
        try:
            names = os.listdir(self.runs_dir)
        except OSError:
            return []
        return sorted(name for name in names
                      if not name.startswith(".")
                      and os.path.exists(os.path.join(self.runs_dir, name,
                                                      MANIFEST)))

    def get(self, run_id: str) -> Optional[StoredRun]:
        """Exact or unique-prefix lookup; None when absent, error when
        a prefix is ambiguous."""
        if os.path.exists(os.path.join(self.runs_dir, run_id, MANIFEST)):
            return StoredRun(self.root, run_id)
        matches = [name for name in self._ids()
                   if name.startswith(run_id)]
        if len(matches) > 1:
            raise RunStoreError(
                "run id prefix %r is ambiguous (%s)"
                % (run_id, ", ".join(name[:12] for name in matches)))
        if matches:
            return StoredRun(self.root, matches[0])
        return None

    def __contains__(self, run_id: str) -> bool:
        return os.path.exists(os.path.join(self.runs_dir, run_id,
                                           MANIFEST))

    def list_runs(self) -> List[StoredRun]:
        """Every committed run, newest first."""
        runs = [StoredRun(self.root, run_id) for run_id in self._ids()]
        return sorted(runs, key=lambda run: run.created, reverse=True)

    # -- maintenance ---------------------------------------------------------

    def delete(self, run_id: str) -> bool:
        path = os.path.join(self.runs_dir, run_id)
        if not os.path.isdir(path):
            return False
        shutil.rmtree(path, ignore_errors=True)
        return True

    def gc(self, keep: Optional[int] = None,
           older_than_days: Optional[float] = None) -> List[str]:
        """Delete runs beyond the ``keep`` newest and/or older than
        ``older_than_days``; returns the deleted run ids.  Also sweeps
        abandoned ``.tmp-*`` directories from crashed recorders."""
        deleted: List[str] = []
        runs = self.list_runs()
        doomed = set()
        if keep is not None:
            doomed.update(run.run_id for run in runs[max(keep, 0):])
        if older_than_days is not None:
            horizon = time.time() - older_than_days * 86400.0
            doomed.update(run.run_id for run in runs
                          if run.created < horizon)
        for run_id in sorted(doomed):
            if self.delete(run_id):
                deleted.append(run_id)
        try:
            leftovers = [name for name in os.listdir(self.runs_dir)
                         if name.startswith(".tmp-")]
        except OSError:
            leftovers = []
        for name in leftovers:
            shutil.rmtree(os.path.join(self.runs_dir, name),
                          ignore_errors=True)
        return deleted


# -- recording ---------------------------------------------------------------


def _build_engine(model, image, config: EngineConfig, strategy: str,
                  seed: int, regions) -> Engine:
    engine = Engine(model, config=config, strategy=strategy, seed=seed)
    engine.load_image(image)
    for start, size, track in _normalize_regions(regions):
        engine.add_region(start, size, track_uninit=track)
    return engine


def _warm_start_engine(store: RunStore, engine: Engine,
                       source_id: Optional[str]) -> Tuple[Optional[str], int]:
    """Preload the engine's QueryCache from a stored run.  Returns
    (resolved source run id, entries loaded)."""
    if not source_id:
        return None, 0
    source = store.get(source_id)
    if source is None:
        raise RunStoreError("warm-start run %r is not in the store"
                            % source_id)
    if engine.solver.query_cache is None:
        return source.run_id, 0
    payload = source.solver_cache()
    if payload is None:
        return source.run_id, 0
    return source.run_id, engine.solver.query_cache.load_state(payload)


def record_exploration(store: RunStore, model, image,
                       config: EngineConfig, strategy: str = "dfs",
                       seed: int = 0, regions: Sequence = (),
                       argv: Optional[List[str]] = None,
                       warm_start: Optional[str] = None
                       ) -> Tuple[ExplorationResult, StoredRun]:
    """Explore and atomically persist the run; returns the *live*
    result plus the committed :class:`StoredRun` handle.

    The event stream is written gzip-compressed while the engine runs;
    fingerprints are then computed by *re-loading* the written sidecar
    (the exact artifact replay will read — like-for-like by
    construction).
    """
    spec = spec_digest(model)
    key = run_key(model.name, spec, image, config, strategy, seed,
                  regions)
    run_id = store.run_id_for(key)
    os.makedirs(store.runs_dir, exist_ok=True)
    tmp = os.path.join(store.runs_dir,
                       ".tmp-%s-%d" % (run_id, os.getpid()))
    os.makedirs(tmp, exist_ok=True)
    obs = config.obs if config.obs is not None else Obs.default()
    config.obs = obs
    env_extra: Dict[str, object] = {
        "spec_digests": {model.name: spec}, "run_id": run_id}
    if argv is not None:
        env_extra["argv"] = list(argv)
    sink = JsonlSink(os.path.join(tmp, EVENTS), env=env_extra)
    obs.add_sink(sink)
    try:
        engine = _build_engine(model, image, config, strategy, seed,
                               regions)
        warm_source, warm_loaded = _warm_start_engine(store, engine,
                                                      warm_start)
        result = engine.explore()
        sink.write_meta({"record": "run_summary",
                         "isa": model.name,
                         "paths": len(result.paths),
                         "defects": len(result.defects),
                         "instructions": result.instructions_executed,
                         "wall_time": result.wall_time,
                         "stop_reason": result.stop_reason,
                         "telemetry": result.telemetry})
    except Exception:
        obs.tracer.remove_sink(sink)
        sink.close()
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    obs.tracer.remove_sink(sink)
    sink.close()

    recorded = load_run(os.path.join(tmp, EVENTS))
    result_dict = result.to_dict()
    fingerprints = {
        "tree": tree_fingerprint(recorded.events),
        "leaves": leaves_fingerprint(result_dict["paths"]),
        "defects": defects_fingerprint(result_dict["defects"]),
    }
    with open(os.path.join(tmp, RESULT), "w") as handle:
        json.dump(result_dict, handle, sort_keys=True,
                  default=_jsonable)
    if engine.solver.query_cache is not None:
        with gzip.open(os.path.join(tmp, SOLVER_CACHE), "wt") as handle:
            json.dump(engine.solver.query_cache.save_state(), handle)
    # Cost-attribution profile: persisted as its own artifact so
    # ``repro hot <run-id>`` reads it without parsing the full result.
    attr_block = (result.telemetry or {}).get("attr")
    if isinstance(attr_block, dict):
        with open(os.path.join(tmp, ATTR), "w") as handle:
            json.dump(attr_block, handle, sort_keys=True)
    manifest = {
        "run_id": run_id,
        "created": time.time(),
        "isa": model.name,
        "key": key,
        "key_digests": key_digests(key),
        "fingerprints": fingerprints,
        "env": environment_snapshot(argv=argv,
                                    spec_digests={model.name: spec}),
        "warm_start": warm_source,
        "warm_loaded": warm_loaded,
        "counts": {"paths": len(result.paths),
                   "defects": len(result.defects),
                   "instructions": result.instructions_executed,
                   "events": len(recorded.events)},
        "summary": result.summary(),
    }
    with open(os.path.join(tmp, MANIFEST), "w") as handle:
        json.dump(manifest, handle, sort_keys=True, indent=2)

    final = os.path.join(store.runs_dir, run_id)
    try:
        os.rename(tmp, final)
    except OSError:
        # A concurrent recorder committed the same key first; its run
        # is identical by construction — drop ours.
        shutil.rmtree(tmp, ignore_errors=True)
        if not os.path.isdir(final):
            raise
    return result, StoredRun(store.root, run_id)


def cached_explore(store: RunStore, model, image, config: EngineConfig,
                   strategy: str = "dfs", seed: int = 0,
                   regions: Sequence = (),
                   argv: Optional[List[str]] = None,
                   force: bool = False,
                   warm_start: Optional[str] = None,
                   persist_on_miss: bool = True
                   ) -> Tuple[ExplorationResult, Optional[StoredRun], bool]:
    """Store-backed exploration: answer an identical submission from
    the store, explore (and by default record) otherwise.

    Returns ``(result, stored_run, hit)``.  A hit increments the
    ``store.hit`` counter, emits a ``store`` event, and never
    constructs an engine — zero new solver checks.  A miss increments
    ``store.miss`` and explores; with ``persist_on_miss`` the run is
    committed so the next identical submission hits.
    """
    spec = spec_digest(model)
    key = run_key(model.name, spec, image, config, strategy, seed,
                  regions)
    run_id = store.run_id_for(key)
    obs = config.obs if config.obs is not None else Obs.default()
    config.obs = obs
    existing = None if force else store.get(run_id)
    if existing is not None:
        obs.metrics.counter("store.hit").inc()
        obs.tracer.emit(STORE, state_id=-1, pc=0, hit=True,
                        run_id=run_id)
        return existing.result(), existing, True
    obs.metrics.counter("store.miss").inc()
    obs.tracer.emit(STORE, state_id=-1, pc=0, hit=False, run_id=run_id)
    if persist_on_miss:
        result, stored = record_exploration(
            store, model, image, config, strategy, seed, regions,
            argv=argv, warm_start=warm_start)
        return result, stored, False
    engine = _build_engine(model, image, config, strategy, seed, regions)
    _warm_start_engine(store, engine, warm_start)
    return engine.explore(), None, False
