"""Deterministic replay: re-execute a stored run and verify it.

``repro replay <run-id>`` rebuilds the exploration from nothing but the
stored key material — spec-checked model, program bytes, engine config,
strategy, seed, regions — re-executes it, and compares the canonical
tree / leaves / defects fingerprints (:mod:`repro.runstore.fingerprint`)
against the manifest.  Exit codes: 0 verified, 3 diverged (the report
names the diverging field), 1 the run could not be replayed at all.

Verification is two-staged:

1. **integrity** — the per-component key digests recorded at capture
   time are recomputed from the manifest's key material, and the run id
   is recomputed from the whole key.  An edited ``manifest.json``
   (tampered program bytes, tweaked config) diverges *here*, before any
   execution, naming the component (``key_digests.program``, ...).
   The current machine's ADL spec is also digest-checked against the
   recorded one: replaying against a changed spec is reported as
   ``spec``, not as a mystery tree mismatch.
2. **fingerprints** — the run is re-executed (cold solver cache by
   default; if the run was recorded with a warm start, the same source
   cache is re-loaded first) and the canonical fingerprints must match
   bit-for-bit.  ``--diff`` locates the first diverging structural
   event for post-mortem.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..core.executor import EngineConfig
from ..isa import build
from ..obs import Obs
from .fingerprint import (defects_fingerprint, first_divergence,
                          leaves_fingerprint, tree_fingerprint)
from .provenance import spec_digest
from .store import (RunStore, RunStoreError, StoredRun, _build_engine,
                    _warm_start_engine, image_from_payload, key_digests)

__all__ = ["ReplayReport", "replay_run"]


class _ListSink:
    """Unbounded in-memory event sink (replay needs *every* event for
    fingerprinting; the bounded RingBufferSink would silently drop)."""

    def __init__(self):
        self.events = []

    def emit(self, event) -> None:
        self.events.append(event)


class ReplayReport:
    """Outcome of one replay verification."""

    def __init__(self, run_id: str):
        self.run_id = run_id
        # (field, recorded, replayed) triples; empty == verified.
        self.mismatches: List[Tuple[str, object, object]] = []
        self.fingerprints: Dict[str, str] = {}
        self.recorded_fingerprints: Dict[str, str] = {}
        self.divergence = None      # (index, recorded_ev, replayed_ev)
        self.executed = False
        self.wall_time = 0.0
        self.result_summary: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 3

    def flag(self, field: str, recorded, replayed) -> None:
        self.mismatches.append((field, recorded, replayed))

    def summary(self) -> str:
        lines = []
        if self.ok:
            lines.append("replay %s: VERIFIED (%d fingerprint%s match, "
                         "%.3fs)" % (self.run_id, len(self.fingerprints),
                                     "s" if len(self.fingerprints) != 1
                                     else "", self.wall_time))
        else:
            fields = ", ".join(field for field, _, _ in self.mismatches)
            lines.append("replay %s: DIVERGED in %s"
                         % (self.run_id, fields))
            for field, recorded, replayed in self.mismatches:
                lines.append("  %-22s recorded=%s" % (field, recorded))
                lines.append("  %-22s replayed=%s" % ("", replayed))
        if self.result_summary:
            lines.append("  " + self.result_summary)
        if self.divergence is not None:
            index, recorded, replayed = self.divergence
            lines.append("first diverging structural event (index %d):"
                         % index)
            lines.append("  recorded: %s"
                         % (recorded if recorded is not None
                            else "<stream ended>"))
            lines.append("  replayed: %s"
                         % (replayed if replayed is not None
                            else "<stream ended>"))
        return "\n".join(lines)


def replay_run(store: RunStore, run_id: str,
               diff: bool = False) -> ReplayReport:
    """Re-execute a stored run and verify it; see module docstring.

    Raises :class:`RunStoreError` when the run (or its warm-start
    source) is missing or unreadable — conditions where verification
    cannot even start (CLI exit 1, distinct from divergence's 3).
    """
    stored = store.get(run_id)
    if stored is None:
        raise RunStoreError("run %r is not in the store (see "
                            "'repro runs')" % run_id)
    manifest = stored.manifest
    key = stored.key
    if not key:
        raise RunStoreError("run %s has no key material in its manifest"
                            % stored.run_id)
    report = ReplayReport(stored.run_id)

    # -- stage 1: integrity of the stored key material -----------------------
    recorded_digests = manifest.get("key_digests") or {}
    current_digests = key_digests(key)
    for field in sorted(current_digests):
        recorded = recorded_digests.get(field)
        if recorded is not None and recorded != current_digests[field]:
            report.flag("key_digests.%s" % field, recorded,
                        current_digests[field])
    recomputed_id = store.run_id_for(key)
    if recomputed_id != stored.run_id:
        report.flag("run_id", stored.run_id, recomputed_id)
    if not report.ok:
        return report       # tampered at rest: do not execute it

    model = build(key["isa"])
    current_spec = spec_digest(model)
    if current_spec != key.get("spec"):
        # The spec on this machine is not the one the run was recorded
        # against — an honest, named divergence, not a tree mystery.
        report.flag("spec", key.get("spec"), current_spec)
        return report

    # -- stage 2: re-execute and compare fingerprints ------------------------
    image = image_from_payload(key.get("program") or {})
    config = EngineConfig.from_dict(key.get("config") or {})
    sink = _ListSink()
    obs = Obs(metrics=True, profile=False)
    obs.add_sink(sink)
    config.obs = obs
    started = time.perf_counter()
    engine = _build_engine(model, image, config, key.get("strategy",
                                                         "dfs"),
                           key.get("seed", 0), key.get("regions") or ())
    _warm_start_engine(store, engine, manifest.get("warm_start"))
    result = engine.explore()
    report.wall_time = time.perf_counter() - started
    report.executed = True
    report.result_summary = result.summary()

    result_dict = result.to_dict()
    report.fingerprints = {
        "tree": tree_fingerprint(sink.events),
        "leaves": leaves_fingerprint(result_dict["paths"]),
        "defects": defects_fingerprint(result_dict["defects"]),
    }
    report.recorded_fingerprints = stored.fingerprints
    for field in ("tree", "leaves", "defects"):
        recorded = report.recorded_fingerprints.get(field)
        replayed = report.fingerprints.get(field)
        if recorded != replayed:
            report.flag("fingerprints.%s" % field, recorded, replayed)
    if diff and not report.ok:
        try:
            report.divergence = first_divergence(stored.events(),
                                                 sink.events)
        except Exception:
            report.divergence = None
    return report
