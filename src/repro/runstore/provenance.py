"""Provenance capture: who/what/where produced a recorded run.

Reproducing a symbolic-execution run bit-for-bit needs the *inputs*
(spec, program bytes, config, strategy, seed — the run-store key, see
:mod:`repro.runstore.store`) — but auditing a divergence needs the
*context*: which python, which platform, which package version, which
git revision, which exact spec file bytes, which command line.  This
module captures that context as a plain JSON-able dict:

* :func:`environment_snapshot` — python/platform/package/git block,
  stamped into every JSONL sidecar's ``schema`` meta record (schema v4)
  and into every stored run's manifest,
* :func:`spec_digest` — the content digest of an ISA's ADL spec source
  (the first component of the run-store key: two runs over different
  spec revisions are different runs),
* :func:`file_digest` — generic helper for hashing artifact files.

Everything is best-effort and dependency-free: no git binary is
invoked (``.git/HEAD`` is read directly when present), and a missing
source file degrades to a digest over the generated model's rule table
rather than an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
from typing import Dict, List, Optional

from .. import __version__
from ..obs.events import SCHEMA_VERSION

__all__ = ["environment_snapshot", "spec_digest", "file_digest",
           "git_revision", "canonical_json", "content_digest"]


def canonical_json(payload) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace) —
    the serialization under every content digest in the run store."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_digest(payload) -> str:
    """``sha256:<hex>`` digest of a JSON-able payload's canonical form."""
    rendered = canonical_json(payload).encode("utf-8")
    return "sha256:" + hashlib.sha256(rendered).hexdigest()


def file_digest(path: str) -> str:
    """``sha256:<hex>`` digest of a file's bytes."""
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            hasher.update(chunk)
    return "sha256:" + hasher.hexdigest()


def spec_digest(model) -> str:
    """Content digest of the ADL spec behind an :class:`ArchModel`.

    Prefers the spec source file bytes (``model.source_path``, set for
    every built-in spec); a model without a known source — e.g. built
    from an in-memory spec in a test — degrades to a digest over the
    generated rule table (instruction names, syntax and provenance
    lines), which still changes whenever the semantics change.
    """
    source = getattr(model, "source_path", None)
    if source and os.path.exists(source):
        return file_digest(source)
    rows: List[str] = []
    for name in sorted(getattr(model, "rules", {}) or {}):
        provenance = model.rules[name]
        rows.append("%s@%s" % (name, getattr(provenance, "line", "?")))
    if not rows:
        rows = sorted(instr.name for instr in model.instructions)
    return content_digest({"isa": model.name, "rules": rows})


def git_revision(start: Optional[str] = None) -> Optional[str]:
    """Best-effort git HEAD sha, without invoking git.

    Walks up from ``start`` (default: this package's directory) looking
    for ``.git/HEAD``; follows one level of ``ref:`` indirection via
    the loose ref file or ``packed-refs``.  Returns None when the tree
    is not a checkout — provenance is best-effort by design.
    """
    directory = os.path.abspath(start or os.path.dirname(__file__))
    for _ in range(12):
        head_path = os.path.join(directory, ".git", "HEAD")
        if os.path.exists(head_path):
            return _resolve_head(os.path.join(directory, ".git"))
        parent = os.path.dirname(directory)
        if parent == directory:
            break
        directory = parent
    return None


def _resolve_head(git_dir: str) -> Optional[str]:
    try:
        with open(os.path.join(git_dir, "HEAD")) as handle:
            head = handle.read().strip()
    except OSError:
        return None
    if not head.startswith("ref:"):
        return head or None
    ref = head.split(":", 1)[1].strip()
    loose = os.path.join(git_dir, *ref.split("/"))
    try:
        with open(loose) as handle:
            return handle.read().strip() or None
    except OSError:
        pass
    try:
        with open(os.path.join(git_dir, "packed-refs")) as handle:
            for line in handle:
                line = line.strip()
                if line.endswith(" " + ref):
                    return line.split(" ", 1)[0]
    except OSError:
        pass
    return None


def environment_snapshot(argv: Optional[List[str]] = None,
                         spec_digests: Optional[Dict[str, str]] = None
                         ) -> Dict[str, object]:
    """The environment/provenance block of a recorded run.

    Stamped into the ``schema`` meta record of every JSONL sidecar
    (schema v4) and into run-store manifests.  ``argv`` and
    ``spec_digests`` are caller-supplied extensions (the CLI passes the
    command line and the explored ISA's spec digest).
    """
    snapshot: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "package": "repro",
        "package_version": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }
    revision = git_revision()
    if revision:
        snapshot["git_sha"] = revision
    if argv is not None:
        snapshot["argv"] = list(argv)
    if spec_digests:
        snapshot["spec_digests"] = dict(spec_digests)
    return snapshot
