"""Canonical fingerprints of an exploration: what replay verifies.

A replay is *bit-for-bit faithful* when three digests match the
recorded run:

* the **tree fingerprint** — the execution tree rebuilt from the
  structural event stream (``step`` / ``fork`` / ``merge`` /
  ``path_end`` / ``defect`` / ``prune``),
* the **leaves fingerprint** — every finished path's status, exit code
  and concretized input, in discovery order,
* the **defects fingerprint** — every filed defect's kind, site,
  instruction, message and triggering input.

Raw event streams are *not* directly comparable across processes: state
ids come from a process-global counter (``repro.core.state``), so the
same exploration started later in a process numbers its states higher,
and timestamps are wall-clock.  :func:`canonical_events` therefore
remaps state ids to first-appearance order and zeroes timestamps; only
then are streams hashed or diffed (:func:`first_divergence`).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

from ..obs.events import (DEFECT, FORK, MERGE, PATH_END, PRUNE, STEP,
                          Event)
from ..obs.tree import ExecutionTree

__all__ = ["STRUCTURAL_KINDS", "canonical_events", "tree_fingerprint",
           "leaves_fingerprint", "defects_fingerprint",
           "first_divergence"]

#: Event kinds that define the *shape* of an exploration.  Timing
#: kinds (``solver_check``, ``health``, ...) legitimately differ
#: between a record and its replay and are excluded from fingerprints.
STRUCTURAL_KINDS = (STEP, FORK, MERGE, PATH_END, DEFECT, PRUNE)

# data keys whose values are state ids (or lists of them) and must be
# remapped alongside Event.state_id.
_ID_LIST_KEYS = {FORK: "children", MERGE: "merged_from"}
_ID_KEYS = {PRUNE: "parent"}


def canonical_events(events: Iterable[Event]) -> List[Event]:
    """Structural events with process-portable ids and no timestamps.

    State ids are remapped to dense first-appearance order (the id a
    state would have received in a fresh process); the remap covers the
    id-carrying payload keys too (fork ``children``, merge
    ``merged_from``, prune ``parent``).  Timestamps are zeroed.
    """
    remap: Dict[int, int] = {}

    def rid(state_id) -> int:
        if not isinstance(state_id, int):
            return state_id
        mapped = remap.get(state_id)
        if mapped is None:
            mapped = remap[state_id] = len(remap)
        return mapped

    canonical: List[Event] = []
    for event in events:
        if event.kind not in STRUCTURAL_KINDS:
            continue
        # The acting state registers before any ids in its payload, so
        # e.g. a fork parent numbers lower than its children.
        sid = rid(event.state_id)
        data = dict(event.data) if event.data else {}
        list_key = _ID_LIST_KEYS.get(event.kind)
        if list_key and list_key in data:
            data[list_key] = [rid(child) for child in data[list_key]]
        id_key = _ID_KEYS.get(event.kind)
        if id_key and id_key in data:
            data[id_key] = rid(data[id_key])
        canonical.append(Event(event.kind, event.isa, sid, event.pc,
                               0.0, data or None))
    return canonical


def _digest(text: str) -> str:
    return "sha256:" + hashlib.sha256(text.encode("utf-8")).hexdigest()


def tree_fingerprint(events: Iterable[Event]) -> str:
    """Digest of the execution tree rebuilt from canonical events."""
    tree = ExecutionTree.from_events(canonical_events(events))
    return _digest(tree.to_json())


def leaves_fingerprint(paths: Iterable[Dict[str, object]]) -> str:
    """Digest over finished paths (serialized ``PathResult`` dicts:
    ``status`` / ``exit_code`` / ``input`` hex), in discovery order."""
    rows = ["%s|%s|%s" % (path.get("status"), path.get("exit_code"),
                          path.get("input"))
            for path in paths]
    return _digest("\n".join(rows))


def defects_fingerprint(defects: Iterable[Dict[str, object]]) -> str:
    """Digest over filed defects (serialized ``Defect`` dicts), in
    discovery order."""
    rows = ["%s|%s|%s|%s|%s" % (defect.get("kind"), defect.get("pc"),
                                defect.get("instruction"),
                                defect.get("message"),
                                defect.get("input"))
            for defect in defects]
    return _digest("\n".join(rows))


def first_divergence(recorded: Iterable[Event],
                     replayed: Iterable[Event]
                     ) -> Optional[Tuple[int, Optional[Event],
                                         Optional[Event]]]:
    """First position where the canonical streams differ.

    Returns ``(index, recorded_event, replayed_event)`` — either event
    is None when one stream ended early — or None when the structural
    streams are identical.  Drives ``repro replay --diff``.
    """
    canon_a = canonical_events(recorded)
    canon_b = canonical_events(replayed)
    for index, (left, right) in enumerate(zip(canon_a, canon_b)):
        if left != right:
            return index, left, right
    if len(canon_a) != len(canon_b):
        shorter = min(len(canon_a), len(canon_b))
        left = canon_a[shorter] if shorter < len(canon_a) else None
        right = canon_b[shorter] if shorter < len(canon_b) else None
        return shorter, left, right
    return None
