"""Content-addressed run store, provenance capture, deterministic replay.

The reproducibility backbone (ROADMAP item 3): every exploration is an
immutable, content-addressed artifact that can be listed, replayed and
verified bit-for-bit, deduplicated against, and used to warm-start the
solver of a later run.

* :mod:`repro.runstore.store` — the store itself (``RunStore``,
  ``cached_explore``, ``record_exploration``),
* :mod:`repro.runstore.replay` — re-execute + verify (``replay_run``),
* :mod:`repro.runstore.fingerprint` — canonical tree/leaf/defect
  digests that make runs comparable across processes,
* :mod:`repro.runstore.provenance` — environment snapshots and spec
  digests.

CLI: ``repro record`` / ``repro replay`` / ``repro runs`` and
``repro explore --store``; see docs/OBSERVABILITY.md.
"""

from .certs import (  # noqa: F401
    certificate_key,
    load_certificate,
    save_certificate,
)
from .fingerprint import (  # noqa: F401
    STRUCTURAL_KINDS,
    canonical_events,
    defects_fingerprint,
    first_divergence,
    leaves_fingerprint,
    tree_fingerprint,
)
from .provenance import (  # noqa: F401
    environment_snapshot,
    file_digest,
    spec_digest,
)
from .replay import ReplayReport, replay_run  # noqa: F401
from .store import (  # noqa: F401
    RunStore,
    RunStoreError,
    StoredRun,
    cached_explore,
    image_from_payload,
    image_payload,
    record_exploration,
    resolve_store_root,
    run_key,
)

__all__ = ["RunStore", "RunStoreError", "StoredRun", "cached_explore",
           "record_exploration", "resolve_store_root", "run_key",
           "image_payload", "image_from_payload",
           "ReplayReport", "replay_run",
           "STRUCTURAL_KINDS", "canonical_events", "tree_fingerprint",
           "leaves_fingerprint", "defects_fingerprint",
           "first_divergence",
           "environment_snapshot", "spec_digest", "file_digest",
           "certificate_key", "load_certificate", "save_certificate"]
