"""Benchmark kernels: the workloads behind Tables 3-4 and Figures 1-2.

All kernels are portable programs (they run on every ISA):

* :func:`maze` — a binary decision tree over input bits with an
  accumulator; 2**depth complete paths, exactly one reaching the trap.
  The path-explosion workload for the strategy comparison (Figure 1).
* :func:`password` — byte-by-byte comparison with early reject; the
  classic crackme shape (quickstart example, throughput rows).
* :func:`checksum` — a multiply-accumulate hash over n input bytes
  compared against a magic value; the solver-heavy workload.
* :func:`bsearch` — binary search over a sorted in-memory table keyed by
  an input byte; branchy and load-heavy (throughput rows).
* :func:`exerciser` — touches the whole portable vocabulary (every ALU
  op, branch condition, memory width, both jump kinds, I/O, a guarded
  trap); the ADL spec-coverage workload behind the
  ``repro speccov --min-ratio`` CI gate.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .portable import PortableProgram
from .suite import CODE_BASE, DATA_BASE

__all__ = ["maze", "password", "checksum", "bsearch", "dispatcher",
           "exerciser", "KERNELS", "build_kernel"]


def _start(program: PortableProgram) -> PortableProgram:
    program.org(CODE_BASE)
    program.entry("start")
    program.label("start")
    return program


def maze(depth: int = 8, solution: int = 0b10110010) -> PortableProgram:
    """Accumulate one input bit per step; trap iff the full path matches
    ``solution`` (low ``depth`` bits, first input byte = MSB decision)."""
    solution &= (1 << depth) - 1
    p = _start(PortableProgram())
    p.li("v1", 0)                        # accumulator
    p.li("v3", 1)
    for step in range(depth):
        p.read_input("v0")
        p.alu("and", "v0", "v0", "v3")   # keep bit 0
        p.alu("add", "v1", "v1", "v1")   # acc <<= 1
        p.alu("add", "v1", "v1", "v0")   # acc |= bit
        # A branch whose target is the fall-through: both outcomes
        # survive as distinct states, so the path tree is complete.
        p.li("v4", 0)
        p.branch("eq", "v0", "v4", "skip%d" % step)
        p.label("skip%d" % step)
    p.li("v2", solution)
    p.branch("ne", "v1", "v2", "out")
    p.trap(7)
    p.label("out")
    p.halt(0)
    return p


def password(secret: bytes = b"adl!") -> PortableProgram:
    """Byte-by-byte comparison with early exit; trap on a full match."""
    p = _start(PortableProgram())
    for byte in secret:
        p.read_input("v0")
        p.li("v1", byte)
        p.branch("ne", "v0", "v1", "fail")
    p.trap(9)
    p.label("fail")
    p.halt(0)
    return p


def checksum(length: int = 4, magic: int = 0x1d0d,
             multiplier: int = 31) -> PortableProgram:
    """acc = acc*mult + byte over ``length`` input bytes; trap when the
    result equals ``magic`` (16-bit masked so it fits every word size)."""
    p = _start(PortableProgram())
    p.li("v1", 0)                        # acc
    p.li("v2", multiplier)
    p.li("v4", 0xffff)
    for _ in range(length):
        p.read_input("v0")
        p.alu("mul", "v1", "v1", "v2")
        p.alu("add", "v1", "v1", "v0")
        p.alu("and", "v1", "v1", "v4")
    p.li("v3", magic & 0xffff)
    p.branch("ne", "v1", "v3", "no")
    p.trap(3)
    p.label("no")
    p.halt(0)
    return p


def bsearch(table: Optional[List[int]] = None,
            needle_slot: int = 13) -> PortableProgram:
    """Binary-search a sorted 16-entry byte table for the input byte; trap
    iff the needle is found in ``needle_slot``."""
    if table is None:
        table = [3, 9, 17, 22, 31, 40, 52, 61, 77, 85, 99, 120, 150, 181,
                 200, 240]
    if len(table) != 16 or sorted(table) != list(table):
        raise ValueError("table must be 16 sorted byte values")
    p = _start(PortableProgram())
    p.read_input("v0")                   # needle
    p.li("v1", 0)                        # lo
    p.li("v2", 16)                       # hi (exclusive)
    p.label("loop")
    p.branch("geu", "v1", "v2", "miss")
    # mid = (lo + hi) / 2
    p.alu("add", "v3", "v1", "v2")
    p.li("v4", 1)
    p.alu("shr", "v3", "v3", "v4")
    # load table[mid]
    p.li("v4", DATA_BASE)
    p.alu("add", "v4", "v4", "v3")
    p.loadb("v5", "v4", 0)
    p.branch("eq", "v5", "v0", "found")
    p.branch("ltu", "v5", "v0", "go_right")
    p.mov("v2", "v3")                    # hi = mid
    p.jump("loop")
    p.label("go_right")
    p.addi("v1", "v3", 1)                # lo = mid + 1
    p.jump("loop")
    p.label("found")
    p.li("v4", needle_slot)
    p.branch("ne", "v3", "v4", "miss")
    p.trap(5)
    p.label("miss")
    p.halt(0)
    p.org(DATA_BASE)
    p.label("table")
    p.byte_data(table)
    return p


def dispatcher(rounds: int = 3, magic: int = 0x77) -> PortableProgram:
    """A command loop dispatching over four handlers per input byte.

    Re-entrant code (the loop revisits the dispatch block every round)
    with a trap hidden in one handler behind a magic byte — the workload
    where coverage-guided search differs from DFS (extension Figure 4).
    """
    p = _start(PortableProgram())
    p.li("v2", 0)                         # acc
    p.li("v4", 0)                         # round counter
    p.label("loop")
    p.li("v5", rounds)
    p.branch("geu", "v4", "v5", "done")
    p.read_input("v0")
    p.li("v3", 3)
    p.alu("and", "v1", "v0", "v3")        # handler index 0..3
    p.li("v3", 0)
    p.branch("eq", "v1", "v3", "h0")
    p.li("v3", 1)
    p.branch("eq", "v1", "v3", "h1")
    p.li("v3", 2)
    p.branch("eq", "v1", "v3", "h2")
    p.jump("h3")
    p.label("h0")                         # acc += 1
    p.li("v3", 1)
    p.alu("add", "v2", "v2", "v3")
    p.jump("join")
    p.label("h1")                         # acc ^= 0x5a
    p.li("v3", 0x5A)
    p.alu("xor", "v2", "v2", "v3")
    p.jump("join")
    p.label("h2")                         # acc <<= 1
    p.li("v3", 1)
    p.alu("shl", "v2", "v2", "v3")
    p.jump("join")
    p.label("h3")                         # guarded trap
    p.read_input("v1")
    p.li("v3", magic)
    p.branch("ne", "v1", "v3", "join")
    p.trap(11)
    p.label("join")
    p.addi("v4", "v4", 1)
    p.jump("loop")
    p.label("done")
    p.write_output("v2")
    p.halt(0)
    return p


def diamonds(count: int = 8) -> PortableProgram:
    """``count`` independent branch diamonds feeding one accumulator.

    Each diamond reads an input byte and adds 1 or 2 depending on its low
    bit; the trap requires every diamond to have taken the "+2" arm.
    2**count paths without state merging, ``count + 1`` with it — the
    Table 6 workload.
    """
    p = _start(PortableProgram())
    p.li("v2", 0)                         # accumulator
    p.li("v4", 1)
    for step in range(count):
        p.read_input("v0")
        p.alu("and", "v0", "v0", "v4")    # low bit
        p.li("v3", 0)
        p.branch("eq", "v0", "v3", "one%d" % step)
        p.addi("v2", "v2", 2)
        p.jump("join%d" % step)
        p.label("one%d" % step)
        p.addi("v2", "v2", 1)
        p.label("join%d" % step)
    p.li("v3", 2 * count)                 # all "+2" arms
    p.branch("ne", "v2", "v3", "out")
    p.trap(4)
    p.label("out")
    p.halt(0)
    return p


PAD_BASE = 0x1300   # fixed landing pad for the exerciser's computed goto


def exerciser(magic: int = 0x2A) -> PortableProgram:
    """A spec-coverage workload: touch the whole portable vocabulary.

    Every ALU op (add/sub/and/or/xor/mul/divu/remu/shl/shr/sra), every
    branch condition (eq/ne/ltu/geu/lt/ge), byte and word loads/stores,
    li/mov/addi, a direct and an indirect jump, input/output, and a
    trap guarded by one symbolic branch (so the run both forks and
    files a defect).  Most branches compare *concrete* registers, so
    the path count stays tiny while every semantic rule still executes
    — the workload behind the ``repro speccov --min-ratio`` CI gate.
    """
    p = _start(PortableProgram())
    p.read_input("v0")                   # the one symbolic byte
    # -- ALU tour ----------------------------------------------------
    p.li("v1", 7)
    p.alu("add", "v2", "v0", "v1")
    p.alu("sub", "v2", "v2", "v1")
    p.alu("and", "v3", "v0", "v1")
    p.alu("or", "v3", "v3", "v1")
    p.alu("xor", "v3", "v3", "v0")
    p.alu("mul", "v4", "v0", "v1")
    p.li("v5", 3)
    p.alu("divu", "v4", "v4", "v5")      # concrete divisor: no defect
    p.alu("remu", "v4", "v4", "v5")
    p.li("v5", 2)
    p.alu("shl", "v4", "v4", "v5")
    p.alu("shr", "v4", "v4", "v5")
    p.alu("sra", "v4", "v4", "v5")
    p.mov("v2", "v4")
    p.addi("v2", "v2", 1)
    # -- memory tour -------------------------------------------------
    p.li("v5", DATA_BASE)
    p.storeb("v0", "v5", 0)
    p.loadb("v3", "v5", 0)
    p.storew("v2", "v5", 8)
    p.loadw("v2", "v5", 8)
    # -- branch tour (concrete operands: one feasible arm each) ------
    p.li("v1", 5)
    p.li("v2", 9)
    for index, cond in enumerate(("eq", "ne", "ltu", "geu", "lt", "ge")):
        p.branch(cond, "v1", "v2", "b%d" % index)
        p.label("b%d" % index)
    # -- symbolic fork + guarded trap --------------------------------
    p.li("v1", magic)
    p.branch("ne", "v3", "v1", "miss")
    p.trap(9)
    p.label("miss")
    p.write_output("v3")
    # -- computed goto to a fixed landing pad ------------------------
    p.li("v1", PAD_BASE)
    p.jump_reg("v1")
    p.org(PAD_BASE)
    p.label("land")
    p.jump("fin")                        # a direct jump, too
    p.label("fin")
    p.halt(0)
    # Writable scratch page for the memory tour.
    p.org(DATA_BASE)
    p.label("scratch")
    p.byte_data([0] * 16)
    return p


KERNELS = {
    "maze": maze,
    "password": password,
    "checksum": checksum,
    "bsearch": bsearch,
    "dispatcher": dispatcher,
    "diamonds": diamonds,
    "exerciser": exerciser,
}


def build_kernel(name: str, target: str, **params) -> Tuple[object, object]:
    """Lower and assemble a kernel; returns ``(model, image)``."""
    from ..isa import assemble, build
    from .portable import lower
    if name not in KERNELS:
        raise KeyError("unknown kernel %r (have: %s)"
                       % (name, ", ".join(sorted(KERNELS))))
    program = KERNELS[name](**params)
    model = build(target)
    image = assemble(model, lower(program, target), base=CODE_BASE)
    return model, image
