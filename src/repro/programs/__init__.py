"""Workload substrate: portable programs, the defect suite, and kernels."""

from .kernels import (  # noqa: F401
    KERNELS,
    bsearch,
    build_kernel,
    checksum,
    diamonds,
    dispatcher,
    maze,
    password,
)
from .parser_demo import MAGIC, protocol_parser  # noqa: F401
from .portable import TARGETS, PortableProgram, TargetInfo, lower  # noqa: F401
from .suite import (  # noqa: F401
    BUF_SIZE,
    CODE_BASE,
    DATA_BASE,
    SCRATCH_BASE,
    SuiteCase,
    all_cases,
    case_by_name,
    run_case,
)
