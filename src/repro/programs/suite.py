"""The defect suite: Juliet-style good/bad program pairs for every ISA.

Each :class:`SuiteCase` describes one defect pattern (named after the CWE
it models) and builds two portable-program variants:

* ``bad``  — the defect is reachable under some input; the engine must
  report it (with a triggering input).
* ``good`` — the same computation correctly guarded; reporting anything is
  a false positive.

Layout: code at CODE_BASE, data buffers at DATA_BASE (the *end* of the
image, so overflowing a buffer leaves mapped memory), an unimaged
scratch region at SCRATCH_BASE for the uninitialized-read case.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import core
from ..core import Engine, EngineConfig
from ..isa import assemble, build
from .portable import PortableProgram, lower

__all__ = ["SuiteCase", "all_cases", "case_by_name", "run_case",
           "CODE_BASE", "DATA_BASE", "SCRATCH_BASE", "BUF_SIZE"]

CODE_BASE = 0x1000
DATA_BASE = 0x1400
# A buffer at the image's *low* edge: indexing below it leaves the map
# (the underflow-wrap case needs the wrapped index to go unmapped).
LOW_BASE = 0x0f00
SCRATCH_BASE = 0x1800
SCRATCH_SIZE = 16
BUF_SIZE = 16


class SuiteCase:
    """One defect pattern with bad/good builders."""

    def __init__(self, name: str, cwe: str, defect_kind: str,
                 description: str, builder, needs_uninit_check: bool = False,
                 needs_taint_check: bool = False, extra_regions: Tuple = ()):
        self.name = name
        self.cwe = cwe
        self.defect_kind = defect_kind
        self.description = description
        self._builder = builder
        self.needs_uninit_check = needs_uninit_check
        self.needs_taint_check = needs_taint_check
        self.extra_regions = extra_regions   # (start, size, track_uninit)

    def build(self, variant: str) -> PortableProgram:
        if variant not in ("bad", "good"):
            raise ValueError("variant must be 'bad' or 'good'")
        return self._builder(variant == "bad")

    def __repr__(self):
        return "<SuiteCase %s (%s)>" % (self.name, self.cwe)


def _prologue(program: PortableProgram) -> PortableProgram:
    program.org(CODE_BASE)
    program.entry("start")
    program.label("start")
    return program


def _epilogue_with_buffer(program: PortableProgram,
                          size: int = BUF_SIZE) -> PortableProgram:
    program.org(DATA_BASE)
    program.label("buf")
    program.space(size)
    return program


# ---------------------------------------------------------------------------
# Case builders
# ---------------------------------------------------------------------------

def _div_by_zero(bad: bool) -> PortableProgram:
    """CWE-369: divide 100 by an input byte; good guards against zero."""
    p = _prologue(PortableProgram())
    p.read_input("v0")
    p.li("v1", 100)
    if not bad:
        p.li("v2", 0)
        p.branch("eq", "v0", "v2", "done")
    p.alu("divu", "v3", "v1", "v0")
    p.write_output("v3")
    p.label("done")
    p.halt(0)
    return p


def _oob_write(bad: bool) -> PortableProgram:
    """CWE-787: write buf[i] for an input index; good bounds-checks."""
    p = _prologue(PortableProgram())
    p.read_input("v0")
    if not bad:
        p.li("v3", BUF_SIZE)
        p.branch("geu", "v0", "v3", "done")
    p.li("v1", DATA_BASE)
    p.alu("add", "v2", "v1", "v0")
    p.storeb("v0", "v2", 0)
    p.label("done")
    p.halt(0)
    return _epilogue_with_buffer(p)


def _oob_read(bad: bool) -> PortableProgram:
    """CWE-125: read buf[i] for an input index; good bounds-checks."""
    p = _prologue(PortableProgram())
    p.read_input("v0")
    if not bad:
        p.li("v3", BUF_SIZE)
        p.branch("geu", "v0", "v3", "done")
    p.li("v1", DATA_BASE)
    p.alu("add", "v2", "v1", "v0")
    p.loadb("v4", "v2", 0)
    p.write_output("v4")
    p.label("done")
    p.halt(0)
    return _epilogue_with_buffer(p)


def _underflow_wrap(bad: bool) -> PortableProgram:
    """CWE-191: buf[len-1] with the upper bound checked but len == 0
    wrapping to a huge index; good also rejects zero."""
    p = _prologue(PortableProgram())
    p.read_input("v0")                    # length
    p.li("v3", BUF_SIZE + 1)
    p.branch("geu", "v0", "v3", "done")   # reject len > 16 (both variants)
    if not bad:
        p.li("v4", 0)
        p.branch("eq", "v0", "v4", "done")  # good: also reject len == 0
    p.addi("v1", "v0", -1)                # len - 1 (wraps when len == 0)
    p.li("v2", LOW_BASE)
    p.alu("add", "v2", "v2", "v1")
    p.storeb("v0", "v2", 0)
    p.label("done")
    p.halt(0)
    # The buffer sits at the low edge of the image so that buf[-1] (the
    # wrapped index) is unmapped.
    p.org(LOW_BASE)
    p.label("buf")
    p.space(BUF_SIZE)
    return p


def _off_by_one(bad: bool) -> PortableProgram:
    """CWE-193: copy loop writing one element past an 8-byte buffer."""
    limit = 9 if bad else 8
    p = _prologue(PortableProgram())
    p.li("v1", 0)                         # i
    p.li("v2", DATA_BASE)
    p.li("v3", limit)
    p.label("loop")
    p.branch("geu", "v1", "v3", "done")
    p.read_input("v0")
    p.alu("add", "v4", "v2", "v1")
    p.storeb("v0", "v4", 0)
    p.addi("v1", "v1", 1)
    p.jump("loop")
    p.label("done")
    p.halt(0)
    return _epilogue_with_buffer(p, size=8)


def _magic_trap(bad: bool) -> PortableProgram:
    """Reachable assertion: a trap behind a two-byte magic comparison;
    the good variant's condition is unsatisfiable."""
    p = _prologue(PortableProgram())
    p.read_input("v0")
    if bad:
        p.li("v1", 0x5A)
        p.branch("ne", "v0", "v1", "done")
        p.read_input("v2")
        p.li("v3", 0xA5)
        p.branch("ne", "v2", "v3", "done")
    else:
        p.li("v4", 0x0F)
        p.alu("and", "v0", "v0", "v4")
        p.li("v1", 0x1F)                  # (x & 0x0f) == 0x1f: impossible
        p.branch("ne", "v0", "v1", "done")
    p.trap(13)
    p.label("done")
    p.halt(0)
    return p


def _uninit_read(bad: bool) -> PortableProgram:
    """CWE-457: read a scratch byte before anything ever wrote it."""
    p = _prologue(PortableProgram())
    p.li("v1", SCRATCH_BASE)
    if not bad:
        p.li("v0", 7)
        p.storeb("v0", "v1", 0)
    p.loadb("v2", "v1", 0)
    p.write_output("v2")
    p.halt(0)
    return p


PAD_BASE = 0x1200   # fixed landing pads for the computed-goto case


def _tainted_jump(bad: bool) -> PortableProgram:
    """CWE-822-style control hijack.

    bad:  a computed goto whose target is derived (masked, even bounded!)
          from program input — the classic "attacker steers pc" pattern
          the taint checker exists for.
    good: the same dispatch rewritten as explicit branches; no indirect
          control transfer ever sees input-derived data.
    """
    p = _prologue(PortableProgram())
    p.read_input("v0")
    p.li("v3", 16)
    p.alu("and", "v0", "v0", "v3")            # offset 0 or 16
    if bad:
        p.li("v1", PAD_BASE)
        p.alu("add", "v1", "v1", "v0")
        p.jump_reg("v1")                      # tainted target
    else:
        p.li("v1", 0)
        p.branch("eq", "v0", "v1", "pad0_j")
        p.jump("pad1")
        p.label("pad0_j")
        p.jump("pad0")
    # Landing pads at fixed addresses (PAD_BASE and PAD_BASE + 16).
    p.org(PAD_BASE)
    p.label("pad0")
    p.halt(0)
    p.org(PAD_BASE + 16)
    p.label("pad1")
    p.halt(0)
    return p


_CASES = [
    SuiteCase("div_by_zero", "CWE-369", core.DIV_BY_ZERO,
              "unguarded division by an attacker-controlled byte",
              _div_by_zero),
    SuiteCase("oob_write", "CWE-787", core.OOB_ACCESS,
              "unchecked input index used for a buffer write",
              _oob_write),
    SuiteCase("oob_read", "CWE-125", core.OOB_ACCESS,
              "unchecked input index used for a buffer read",
              _oob_read),
    SuiteCase("underflow_wrap", "CWE-191", core.OOB_ACCESS,
              "len-1 wraps past zero despite an upper bound check",
              _underflow_wrap),
    SuiteCase("off_by_one", "CWE-193", core.OOB_ACCESS,
              "copy loop bound one past the end of the buffer",
              _off_by_one),
    SuiteCase("magic_trap", "assert", core.TRAP,
              "assertion failure reachable behind a 2-byte magic check",
              _magic_trap),
    SuiteCase("uninit_read", "CWE-457", core.UNINIT_READ,
              "scratch memory read before first write",
              _uninit_read, needs_uninit_check=True,
              extra_regions=((SCRATCH_BASE, SCRATCH_SIZE, True),)),
    SuiteCase("tainted_jump", "CWE-822", core.TAINTED_CONTROL,
              "computed goto steered by program input",
              _tainted_jump, needs_taint_check=True),
]


def all_cases() -> List[SuiteCase]:
    return list(_CASES)


def case_by_name(name: str) -> SuiteCase:
    for case in _CASES:
        if case.name == name:
            return case
    raise KeyError("no suite case named %r" % name)


def run_case(case: SuiteCase, target: str, variant: str,
             strategy: str = "dfs",
             config: Optional[EngineConfig] = None):
    """Build, assemble and symbolically execute one case variant.

    Returns ``(detected, result, image)`` where ``detected`` is True when a
    defect of the case's kind was reported.
    """
    model = build(target)
    source = lower(case.build(variant), target)
    image = assemble(model, source, base=CODE_BASE)
    if config is None:
        config = EngineConfig(max_steps_per_path=4096)
    if case.needs_uninit_check:
        config.check_uninit = True
    if case.needs_taint_check:
        config.check_tainted_control = True
    engine = Engine(model, config=config)
    engine.load_image(image)
    for start, size, track_uninit in case.extra_regions:
        engine.add_region(start, size, name="scratch",
                          track_uninit=track_uninit)
    result = engine.explore()
    detected = any(defect.kind == case.defect_kind
                   for defect in result.defects)
    return detected, result, image
