"""Portable machine-code workloads.

The evaluation needs the *same* program on every ISA (detection matrix,
cross-ISA replay).  :class:`PortableProgram` is a tiny ISA-independent
assembly builder — virtual registers ``v0..v5``, three-address ALU ops,
compare-and-branch — with one small lowering backend per ISA.  The backends
are the only per-ISA workload code; the symbolic engine itself stays fully
generated.

Lowering notes per target:

* ``rv32``  — direct; large constants via ``lui``/``addi`` with the
  standard +0x800 high-part adjustment.
* ``mips32`` — direct; constants via ``lui``/``ori``; ``mul``/``divu``
  through hi/lo; branches on flags-free compare-and-branch.
* ``armlite`` — compare-and-branch pairs lower to ``cmp`` + conditional
  branch (the flags-based path); ``remu`` is computed as
  ``a - (a / b) * b``; constants via ``movi``/``movt``.
* ``vlx`` — two-address ALU, so three-address ops lower through moves; the
  16-bit word size is why portable programs must keep constants under
  2**16.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["PortableProgram", "TARGETS", "lower", "TargetInfo"]


class TargetInfo:
    """Per-ISA facts the builder and the suite need."""

    def __init__(self, name: str, wordsize: int, word_bytes: int,
                 num_virtual_regs: int):
        self.name = name
        self.wordsize = wordsize
        self.word_bytes = word_bytes
        self.num_virtual_regs = num_virtual_regs


TARGETS: Dict[str, TargetInfo] = {
    "rv32": TargetInfo("rv32", 32, 4, 6),
    "mips32": TargetInfo("mips32", 32, 4, 6),
    "armlite": TargetInfo("armlite", 32, 4, 6),
    "vlx": TargetInfo("vlx", 16, 2, 6),
    "pred32": TargetInfo("pred32", 32, 4, 6),
}


class PortableProgram:
    """An ISA-independent program: a list of portable ops.

    Virtual registers are the strings ``"v0"`` .. ``"v5"``.  Branch/ALU ops
    mirror a generic RISC; each op becomes one or a few target instructions.
    """

    def __init__(self):
        self.ops: List[Tuple] = []

    # -- structure ---------------------------------------------------------------

    def label(self, name: str) -> "PortableProgram":
        self.ops.append(("label", name))
        return self

    def org(self, address: int) -> "PortableProgram":
        self.ops.append(("org", address))
        return self

    def entry(self, name: str) -> "PortableProgram":
        self.ops.append(("entry", name))
        return self

    # -- data -----------------------------------------------------------------------

    def byte_data(self, values: Sequence[int]) -> "PortableProgram":
        self.ops.append(("byte", tuple(values)))
        return self

    def space(self, amount: int) -> "PortableProgram":
        self.ops.append(("space", amount))
        return self

    # -- computation -------------------------------------------------------------------

    def li(self, rd: str, value: int) -> "PortableProgram":
        self.ops.append(("li", rd, value))
        return self

    def mov(self, rd: str, rs: str) -> "PortableProgram":
        self.ops.append(("mov", rd, rs))
        return self

    def alu(self, op: str, rd: str, ra: str, rb: str) -> "PortableProgram":
        """op in add/sub/and/or/xor/mul/divu/remu/shl/shr/sra."""
        self.ops.append(("alu", op, rd, ra, rb))
        return self

    def addi(self, rd: str, rs: str, imm: int) -> "PortableProgram":
        self.ops.append(("addi", rd, rs, imm))
        return self

    # -- memory (byte offsets; 'w' is one architecture word) ------------------------------

    def loadb(self, rd: str, base: str, offset: int = 0) -> "PortableProgram":
        self.ops.append(("loadb", rd, base, offset))
        return self

    def storeb(self, rs: str, base: str, offset: int = 0) -> "PortableProgram":
        self.ops.append(("storeb", rs, base, offset))
        return self

    def loadw(self, rd: str, base: str, offset: int = 0) -> "PortableProgram":
        self.ops.append(("loadw", rd, base, offset))
        return self

    def storew(self, rs: str, base: str, offset: int = 0) -> "PortableProgram":
        self.ops.append(("storew", rs, base, offset))
        return self

    # -- control flow -----------------------------------------------------------------------

    def branch(self, cond: str, ra: str, rb: str,
               target: str) -> "PortableProgram":
        """cond in eq/ne/ltu/geu/lt/ge."""
        self.ops.append(("branch", cond, ra, rb, target))
        return self

    def jump(self, target: str) -> "PortableProgram":
        self.ops.append(("jump", target))
        return self

    def jump_reg(self, rs: str) -> "PortableProgram":
        """Indirect jump through a register (computed goto)."""
        self.ops.append(("jumpr", rs))
        return self

    # -- environment ---------------------------------------------------------------------------

    def read_input(self, rd: str) -> "PortableProgram":
        self.ops.append(("in", rd))
        return self

    def write_output(self, rs: str) -> "PortableProgram":
        self.ops.append(("out", rs))
        return self

    def halt(self, code: int = 0) -> "PortableProgram":
        self.ops.append(("halt", code))
        return self

    def trap(self, code: int = 1) -> "PortableProgram":
        self.ops.append(("trap", code))
        return self


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------

class _Backend:
    """Lowers portable ops to target assembly lines."""

    name = "abstract"
    regs: Sequence[str] = ()
    scratch: Sequence[str] = ()   # extra regs the backend may clobber
    word_bytes = 4

    def __init__(self):
        self.lines: List[str] = []
        self._tmp_labels = 0

    def reg(self, virtual: str) -> str:
        index = int(virtual[1:])
        if index >= len(self.regs):
            raise ValueError("backend %s has only %d virtual registers"
                             % (self.name, len(self.regs)))
        return self.regs[index]

    def fresh_label(self) -> str:
        self._tmp_labels += 1
        return "_ll%d" % self._tmp_labels

    def emit(self, line: str) -> None:
        self.lines.append("    " + line)

    def emit_label(self, name: str) -> None:
        self.lines.append(name + ":")

    def lower(self, program: PortableProgram) -> str:
        for op in program.ops:
            kind = op[0]
            handler = getattr(self, "op_" + kind)
            handler(*op[1:])
        return "\n".join(self.lines) + "\n"

    # -- shared structural ops ----------------------------------------------------

    def op_label(self, name):
        self.emit_label(name)

    def op_org(self, address):
        self.lines.append(".org %#x" % address)

    def op_entry(self, name):
        self.lines.append(".entry %s" % name)

    def op_byte(self, values):
        self.lines.append(".byte " + ", ".join(str(v) for v in values))

    def op_space(self, amount):
        self.lines.append(".space %d" % amount)


class _Rv32Backend(_Backend):
    name = "rv32"
    regs = ("x10", "x11", "x12", "x13", "x14", "x15")
    scratch = ("x28", "x29")
    word_bytes = 4

    def op_li(self, rd, value):
        rd = self.reg(rd)
        value &= 0xffffffff
        low = value & 0xfff
        if low >= 0x800:
            low -= 0x1000
        high = ((value - low) >> 12) & 0xfffff
        if high:
            self.emit("lui %s, %d" % (rd, high))
            if low:
                self.emit("addi %s, %s, %d" % (rd, rd, low))
        else:
            self.emit("addi %s, x0, %d" % (rd, low))

    def op_mov(self, rd, rs):
        self.emit("addi %s, %s, 0" % (self.reg(rd), self.reg(rs)))

    def op_alu(self, op, rd, ra, rb):
        mnemonic = {"add": "add", "sub": "sub", "and": "and", "or": "or",
                    "xor": "xor", "mul": "mul", "divu": "divu",
                    "remu": "remu", "shl": "sll", "shr": "srl",
                    "sra": "sra"}[op]
        self.emit("%s %s, %s, %s" % (mnemonic, self.reg(rd), self.reg(ra),
                                     self.reg(rb)))

    def op_addi(self, rd, rs, imm):
        self.emit("addi %s, %s, %d" % (self.reg(rd), self.reg(rs), imm))

    def op_loadb(self, rd, base, offset):
        self.emit("lbu %s, %d(%s)" % (self.reg(rd), offset, self.reg(base)))

    def op_storeb(self, rs, base, offset):
        self.emit("sb %s, %d(%s)" % (self.reg(rs), offset, self.reg(base)))

    def op_loadw(self, rd, base, offset):
        self.emit("lw %s, %d(%s)" % (self.reg(rd), offset, self.reg(base)))

    def op_storew(self, rs, base, offset):
        self.emit("sw %s, %d(%s)" % (self.reg(rs), offset, self.reg(base)))

    def op_branch(self, cond, ra, rb, target):
        mnemonic = {"eq": "beq", "ne": "bne", "ltu": "bltu", "geu": "bgeu",
                    "lt": "blt", "ge": "bge"}[cond]
        self.emit("%s %s, %s, %s" % (mnemonic, self.reg(ra), self.reg(rb),
                                     target))

    def op_jump(self, target):
        self.emit("jal x0, %s" % target)

    def op_jumpr(self, rs):
        self.emit("jalr x0, 0(%s)" % self.reg(rs))

    def op_in(self, rd):
        self.emit("inb %s" % self.reg(rd))

    def op_out(self, rs):
        self.emit("outb %s" % self.reg(rs))

    def op_halt(self, code):
        self.emit("halt %d" % code)

    def op_trap(self, code):
        self.emit("trap %d" % code)


class _Mips32Backend(_Backend):
    name = "mips32"
    regs = ("r8", "r9", "r10", "r11", "r12", "r13")
    scratch = ("r24", "r25")
    word_bytes = 4

    def op_li(self, rd, value):
        rd = self.reg(rd)
        value &= 0xffffffff
        high, low = value >> 16, value & 0xffff
        if high:
            self.emit("lui %s, %d" % (rd, high))
            if low:
                self.emit("ori %s, %s, %d" % (rd, rd, low))
        else:
            self.emit("ori %s, r0, %d" % (rd, low))

    def op_mov(self, rd, rs):
        self.emit("addiu %s, %s, 0" % (self.reg(rd), self.reg(rs)))

    def op_alu(self, op, rd, ra, rb):
        rd, ra, rb = self.reg(rd), self.reg(ra), self.reg(rb)
        if op == "mul":
            self.emit("multu %s, %s" % (ra, rb))
            self.emit("mflo %s" % rd)
        elif op == "divu":
            self.emit("divu %s, %s" % (ra, rb))
            self.emit("mflo %s" % rd)
        elif op == "remu":
            self.emit("divu %s, %s" % (ra, rb))
            self.emit("mfhi %s" % rd)
        elif op in ("shl", "shr", "sra"):
            mnemonic = {"shl": "sllv", "shr": "srlv", "sra": "srav"}[op]
            self.emit("%s %s, %s, %s" % (mnemonic, rd, ra, rb))
        else:
            mnemonic = {"add": "addu", "sub": "subu", "and": "and",
                        "or": "or", "xor": "xor"}[op]
            self.emit("%s %s, %s, %s" % (mnemonic, rd, ra, rb))

    def op_addi(self, rd, rs, imm):
        self.emit("addiu %s, %s, %d" % (self.reg(rd), self.reg(rs), imm))

    def op_loadb(self, rd, base, offset):
        self.emit("lbu %s, %d(%s)" % (self.reg(rd), offset, self.reg(base)))

    def op_storeb(self, rs, base, offset):
        self.emit("sb %s, %d(%s)" % (self.reg(rs), offset, self.reg(base)))

    def op_loadw(self, rd, base, offset):
        self.emit("lw %s, %d(%s)" % (self.reg(rd), offset, self.reg(base)))

    def op_storew(self, rs, base, offset):
        self.emit("sw %s, %d(%s)" % (self.reg(rs), offset, self.reg(base)))

    def op_branch(self, cond, ra, rb, target):
        ra, rb = self.reg(ra), self.reg(rb)
        if cond == "eq":
            self.emit("beq %s, %s, %s" % (ra, rb, target))
        elif cond == "ne":
            self.emit("bne %s, %s, %s" % (ra, rb, target))
        else:
            # Lower through slt/sltu into a scratch register.
            scratch = self.scratch[0]
            if cond in ("ltu", "geu"):
                self.emit("sltu %s, %s, %s" % (scratch, ra, rb))
            else:
                self.emit("slt %s, %s, %s" % (scratch, ra, rb))
            if cond in ("ltu", "lt"):
                self.emit("bne %s, r0, %s" % (scratch, target))
            else:
                self.emit("beq %s, r0, %s" % (scratch, target))

    def op_jump(self, target):
        self.emit("j %s" % target)

    def op_jumpr(self, rs):
        self.emit("jr %s" % self.reg(rs))

    def op_in(self, rd):
        self.emit("inb %s" % self.reg(rd))

    def op_out(self, rs):
        self.emit("outb %s" % self.reg(rs))

    def op_halt(self, code):
        self.emit("halt %d" % code)

    def op_trap(self, code):
        self.emit("trap %d" % code)


class _ArmliteBackend(_Backend):
    name = "armlite"
    regs = ("r0", "r1", "r2", "r3", "r4", "r5")
    scratch = ("r8", "r9")
    word_bytes = 4

    def op_li(self, rd, value):
        rd = self.reg(rd)
        value &= 0xffffffff
        self.emit("movi %s, %d" % (rd, value & 0xffff))
        if value >> 16:
            self.emit("movt %s, %d" % (rd, value >> 16))

    def op_mov(self, rd, rs):
        self.emit("mov %s, %s" % (self.reg(rd), self.reg(rs)))

    def op_alu(self, op, rd, ra, rb):
        rd, ra, rb = self.reg(rd), self.reg(ra), self.reg(rb)
        if op == "remu":
            # a % b == a - (a / b) * b  (udiv defines x/0 == 0, making
            # remu by zero come out as the dividend, matching rv32 remu).
            scratch = self.scratch[0]
            self.emit("udiv %s, %s, %s" % (scratch, ra, rb))
            self.emit("mul %s, %s, %s" % (scratch, scratch, rb))
            self.emit("sub %s, %s, %s" % (rd, ra, scratch))
            return
        mnemonic = {"add": "add", "sub": "sub", "and": "and", "or": "orr",
                    "xor": "eor", "mul": "mul", "divu": "udiv",
                    "shl": "lsl", "shr": "lsr", "sra": "asr"}[op]
        self.emit("%s %s, %s, %s" % (mnemonic, rd, ra, rb))

    def op_addi(self, rd, rs, imm):
        if imm >= 0:
            self.emit("addi %s, %s, %d" % (self.reg(rd), self.reg(rs), imm))
        else:
            self.emit("subi %s, %s, %d" % (self.reg(rd), self.reg(rs), -imm))

    def op_loadb(self, rd, base, offset):
        self.emit("ldrb %s, [%s, %d]" % (self.reg(rd), self.reg(base),
                                         offset))

    def op_storeb(self, rs, base, offset):
        self.emit("strb %s, [%s, %d]" % (self.reg(rs), self.reg(base),
                                         offset))

    def op_loadw(self, rd, base, offset):
        self.emit("ldr %s, [%s, %d]" % (self.reg(rd), self.reg(base),
                                        offset))

    def op_storew(self, rs, base, offset):
        self.emit("str %s, [%s, %d]" % (self.reg(rs), self.reg(base),
                                        offset))

    def op_branch(self, cond, ra, rb, target):
        # The flags-based lowering: compare, then a conditional branch.
        self.emit("cmp %s, %s" % (self.reg(ra), self.reg(rb)))
        mnemonic = {"eq": "beq", "ne": "bne", "ltu": "bcc", "geu": "bcs",
                    "lt": "blt", "ge": "bge"}[cond]
        self.emit("%s %s" % (mnemonic, target))

    def op_jump(self, target):
        self.emit("b %s" % target)

    def op_jumpr(self, rs):
        self.emit("bx %s" % self.reg(rs))

    def op_in(self, rd):
        self.emit("inb %s" % self.reg(rd))

    def op_out(self, rs):
        self.emit("outb %s" % self.reg(rs))

    def op_halt(self, code):
        self.emit("halt %d" % code)

    def op_trap(self, code):
        self.emit("trap %d" % code)


class _VlxBackend(_Backend):
    name = "vlx"
    regs = ("r0", "r1", "r2", "r3", "r4", "r5")
    scratch = ("r6",)
    word_bytes = 2

    def op_li(self, rd, value):
        if not (-(1 << 15) <= value < (1 << 16)):
            raise ValueError("constant %#x exceeds the vlx 16-bit word"
                             % value)
        self.emit("ldi %s, %d" % (self.reg(rd), value & 0xffff))

    def op_mov(self, rd, rs):
        self.emit("mov %s, %s" % (self.reg(rd), self.reg(rs)))

    def op_alu(self, op, rd, ra, rb):
        rd_r, ra_r, rb_r = self.reg(rd), self.reg(ra), self.reg(rb)
        mnemonic = {"add": "add", "sub": "sub", "and": "and", "or": "or",
                    "xor": "xor", "mul": "mul", "divu": "divu",
                    "remu": "remu", "shl": "shl", "shr": "shr",
                    "sra": "sra"}[op]
        if rd_r == ra_r:
            self.emit("%s %s, %s" % (mnemonic, rd_r, rb_r))
        elif rd_r == rb_r:
            # Two-address form destroys rd; stage through scratch.
            scratch = self.scratch[0]
            self.emit("mov %s, %s" % (scratch, ra_r))
            self.emit("%s %s, %s" % (mnemonic, scratch, rb_r))
            self.emit("mov %s, %s" % (rd_r, scratch))
        else:
            self.emit("mov %s, %s" % (rd_r, ra_r))
            self.emit("%s %s, %s" % (mnemonic, rd_r, rb_r))

    def op_addi(self, rd, rs, imm):
        if not (-128 <= imm <= 127):
            raise ValueError("vlx addi immediate %d out of range" % imm)
        if rd != rs:
            self.emit("mov %s, %s" % (self.reg(rd), self.reg(rs)))
        self.emit("addi %s, %d" % (self.reg(rd), imm))

    def op_loadb(self, rd, base, offset):
        self.emit("ldb %s, [%s + %d]" % (self.reg(rd), self.reg(base),
                                         offset))

    def op_storeb(self, rs, base, offset):
        self.emit("stb %s, [%s + %d]" % (self.reg(rs), self.reg(base),
                                         offset))

    def op_loadw(self, rd, base, offset):
        self.emit("ld %s, [%s + %d]" % (self.reg(rd), self.reg(base),
                                        offset))

    def op_storew(self, rs, base, offset):
        self.emit("st %s, [%s + %d]" % (self.reg(rs), self.reg(base),
                                        offset))

    def op_branch(self, cond, ra, rb, target):
        # vlx branch offsets are only 8 bits; lower as an inverted branch
        # over an absolute jump so portable programs have no range limits.
        inverse = {"eq": "bne", "ne": "beq", "ltu": "bgeu", "geu": "bltu",
                   "lt": "bge", "ge": "blt"}[cond]
        skip = self.fresh_label()
        self.emit("%s %s, %s, %s" % (inverse, self.reg(ra), self.reg(rb),
                                     skip))
        self.emit("jmp %s" % target)
        self.emit_label(skip)

    def op_jump(self, target):
        self.emit("jmp %s" % target)

    def op_jumpr(self, rs):
        self.emit("jr %s" % self.reg(rs))

    def op_in(self, rd):
        self.emit("inb %s" % self.reg(rd))

    def op_out(self, rs):
        self.emit("outb %s" % self.reg(rs))

    def op_halt(self, code):
        self.emit("hlt %d" % code)

    def op_trap(self, code):
        self.emit("trap %d" % code)


class _Pred32Backend(_Backend):
    """The predicated-execution lowering: compare-and-branch pairs become
    ``cmp`` + a predicated ``b``; everything else runs with predicate 0
    (always)."""

    name = "pred32"
    regs = ("r0", "r1", "r2", "r3", "r4", "r5")
    scratch = ("r8", "r9")
    word_bytes = 4

    _PREDICATES = {"eq": 1, "ne": 2, "lt": 3, "ge": 4, "ltu": 5, "geu": 6}

    def op_li(self, rd, value):
        rd = self.reg(rd)
        value &= 0xffffffff
        self.emit("movi 0, %s, %d" % (rd, value & 0x3fff))
        if (value >> 14) & 0x3fff:
            self.emit("mov14 0, %s, %d" % (rd, (value >> 14) & 0x3fff))
        if value >> 28:
            self.emit("mov28 0, %s, %d" % (rd, value >> 28))

    def op_mov(self, rd, rs):
        self.emit("mov 0, %s, %s" % (self.reg(rd), self.reg(rs)))

    def op_alu(self, op, rd, ra, rb):
        rd, ra, rb = self.reg(rd), self.reg(ra), self.reg(rb)
        if op == "remu":
            scratch = self.scratch[0]
            self.emit("divu 0, %s, %s, %s" % (scratch, ra, rb))
            self.emit("mul 0, %s, %s, %s" % (scratch, scratch, rb))
            self.emit("sub 0, %s, %s, %s" % (rd, ra, scratch))
            return
        mnemonic = {"add": "add", "sub": "sub", "and": "and", "or": "or",
                    "xor": "xor", "mul": "mul", "divu": "divu",
                    "shl": "shl", "shr": "shr", "sra": "sar"}[op]
        self.emit("%s 0, %s, %s, %s" % (mnemonic, rd, ra, rb))

    def op_addi(self, rd, rs, imm):
        self.emit("addi 0, %s, %s, %d" % (self.reg(rd), self.reg(rs), imm))

    def op_loadb(self, rd, base, offset):
        self.emit("ldb 0, %s, [%s, %d]" % (self.reg(rd), self.reg(base),
                                           offset))

    def op_storeb(self, rs, base, offset):
        self.emit("stb 0, %s, [%s, %d]" % (self.reg(rs), self.reg(base),
                                           offset))

    def op_loadw(self, rd, base, offset):
        self.emit("ldw 0, %s, [%s, %d]" % (self.reg(rd), self.reg(base),
                                           offset))

    def op_storew(self, rs, base, offset):
        self.emit("stw 0, %s, [%s, %d]" % (self.reg(rs), self.reg(base),
                                           offset))

    def op_branch(self, cond, ra, rb, target):
        self.emit("cmp %s, %s" % (self.reg(ra), self.reg(rb)))
        self.emit("b %d, %s" % (self._PREDICATES[cond], target))

    def op_jump(self, target):
        self.emit("b 0, %s" % target)

    def op_jumpr(self, rs):
        self.emit("jr %s" % self.reg(rs))

    def op_in(self, rd):
        self.emit("inb %s" % self.reg(rd))

    def op_out(self, rs):
        self.emit("outb %s" % self.reg(rs))

    def op_halt(self, code):
        self.emit("halt %d" % code)

    def op_trap(self, code):
        self.emit("trap %d" % code)


_BACKENDS = {
    "rv32": _Rv32Backend,
    "mips32": _Mips32Backend,
    "armlite": _ArmliteBackend,
    "vlx": _VlxBackend,
    "pred32": _Pred32Backend,
}


def lower(program: PortableProgram, target: str) -> str:
    """Lower a portable program to assembly text for ``target``."""
    if target not in _BACKENDS:
        raise ValueError("unknown target %r (have: %s)"
                         % (target, ", ".join(sorted(_BACKENDS))))
    return _BACKENDS[target]().lower(program)
