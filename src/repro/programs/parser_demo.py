"""A realistic multi-stage workload: a little packet-protocol parser.

The closest thing in this repository to "symbolically execute a real
program": a parser with header validation, type dispatch, a
variable-length payload loop, a checksum gate, and two planted bugs that
are only reachable through the *whole* chain of conditions:

Packet format (read byte-by-byte from input)::

    [0] magic     must be 0x7e
    [1] type      0 = echo, 1 = store, 2 = sum
    [2] length    payload byte count
    [3..3+L-1]    payload
    [3+L]         checksum: xor of all payload bytes

* ``store`` copies the payload into a 16-byte buffer.  The *bad* variant
  bounds-checks ``length < 32`` instead of ``<= 16``: an overflow that
  requires valid magic, type 1, length in 17..31 **and** a matching
  checksum — the engine must chain four stages of constraints.
* ``sum`` outputs 100 / (sum of payload bytes).  The bad variant divides
  unguarded: a division-by-zero behind the same gates (all-zero payload,
  checksum 0).

The good variant fixes both (proper bound; zero-sum guard) and must
produce no findings.

Virtual register budget (6): v0 scratch/current byte, v1 running
checksum, v2 length, v3 loop index, v4 address/temp, v5 constant/temp.
"""

from __future__ import annotations

from .portable import PortableProgram
from .suite import CODE_BASE, DATA_BASE

__all__ = ["protocol_parser", "MAGIC", "BUFFER_SIZE", "VICTIM_BASE"]

MAGIC = 0x7E
BUFFER_SIZE = 16
BAD_BOUND = 32
# Staging area (32 bytes) precedes the victim buffer, which sits at the
# end of the image so overflowing it leaves mapped memory.
VICTIM_BASE = 0x1400 + 32   # == DATA_BASE + staging size


def protocol_parser(bad: bool = True) -> PortableProgram:
    """Build the parser as a portable program (bad or fixed variant)."""
    p = PortableProgram()
    p.org(CODE_BASE)
    p.entry("start")
    p.label("start")

    # --- header ---------------------------------------------------------
    p.read_input("v0")                       # magic
    p.li("v5", MAGIC)
    p.branch("ne", "v0", "v5", "reject")
    p.read_input("v4")                       # type (kept in v4)
    p.read_input("v2")                       # length (5-bit field)
    p.li("v5", 31)
    p.alu("and", "v2", "v2", "v5")

    # --- payload loop: store into buf, accumulate xor checksum ----------
    p.li("v1", 0)                            # checksum accumulator
    p.li("v3", 0)                            # index
    p.label("payload_loop")
    p.branch("geu", "v3", "v2", "payload_done")
    p.read_input("v0")
    p.alu("xor", "v1", "v1", "v0")
    # Staging area for the raw packet payload (32 bytes: fits even the
    # bad variant's overlong packets; the *victim* buffer is separate).
    p.li("v5", DATA_BASE)
    p.alu("add", "v5", "v5", "v3")
    p.storeb("v0", "v5", 0)
    p.addi("v3", "v3", 1)
    p.jump("payload_loop")
    p.label("payload_done")

    # --- checksum gate ----------------------------------------------------
    p.read_input("v0")                       # expected checksum
    p.branch("ne", "v0", "v1", "reject")

    # --- dispatch on type -------------------------------------------------
    p.li("v5", 0)
    p.branch("eq", "v4", "v5", "do_echo")
    p.li("v5", 1)
    p.branch("eq", "v4", "v5", "do_store")
    p.li("v5", 2)
    p.branch("eq", "v4", "v5", "do_sum")
    p.jump("reject")

    # --- echo: write the staged payload back out ---------------------------
    p.label("do_echo")
    p.li("v3", 0)
    p.label("echo_loop")
    p.branch("geu", "v3", "v2", "accept")
    p.li("v5", DATA_BASE)
    p.alu("add", "v5", "v5", "v3")
    p.loadb("v0", "v5", 0)
    p.write_output("v0")
    p.addi("v3", "v3", 1)
    p.jump("echo_loop")

    # --- store: copy staged payload into the 16-byte victim buffer ---------
    p.label("do_store")
    bound = BAD_BOUND if bad else BUFFER_SIZE + 1
    p.li("v5", bound)
    p.branch("geu", "v2", "v5", "reject")    # length bound (wrong if bad)
    p.li("v3", 0)
    p.label("store_loop")
    p.branch("geu", "v3", "v2", "accept")
    p.li("v5", DATA_BASE)
    p.alu("add", "v5", "v5", "v3")
    p.loadb("v0", "v5", 0)
    p.li("v5", VICTIM_BASE)
    p.alu("add", "v5", "v5", "v3")
    p.storeb("v0", "v5", 0)                  # buf[i] = payload[i]
    p.addi("v3", "v3", 1)
    p.jump("store_loop")

    # --- sum: 100 / sum(payload) --------------------------------------------
    p.label("do_sum")
    p.li("v1", 0)                            # reuse as byte sum
    p.li("v3", 0)
    p.label("sum_loop")
    p.branch("geu", "v3", "v2", "sum_done")
    p.li("v5", DATA_BASE)
    p.alu("add", "v5", "v5", "v3")
    p.loadb("v0", "v5", 0)
    p.alu("add", "v1", "v1", "v0")
    p.addi("v3", "v3", 1)
    p.jump("sum_loop")
    p.label("sum_done")
    if not bad:
        p.li("v5", 0)
        p.branch("eq", "v1", "v5", "reject")  # good: guard the division
    p.li("v0", 100)
    p.alu("divu", "v0", "v0", "v1")
    p.write_output("v0")
    p.jump("accept")

    p.label("accept")
    p.halt(0)
    p.label("reject")
    p.halt(1)

    # --- data layout ----------------------------------------------------------
    # Staging area (32 bytes), then the victim buffer at the END of the
    # image so overflowing it leaves mapped memory.
    p.org(DATA_BASE)
    p.label("staging")
    p.space(32)
    p.label("victim")
    p.space(BUFFER_SIZE)
    return p
