"""Errors raised by the semantics specializer."""


class CompileError(Exception):
    """A rule could not be specialized (malformed or undisciplined IR).

    Raised at generation time — never mid-execution: a model either
    compiles completely or the compiled engine refuses to start.
    """
