"""Concrete codegen: IR blocks -> specialized Python transfer functions.

Each translated rule (a tuple of :mod:`repro.ir.nodes` statements) is
lowered once into a generated Python function

    def _c0(C, F, O): ...

where ``C`` is a :class:`repro.ir.interp.MachineContext`, ``F`` the raw
decoded field dict and ``O`` the :class:`repro.ir.interp.ExecOutcome` to
fill in.  The generated body is straight-line Python with

* operand field extraction hoisted and constant-folded (``F['rs1'] &
  0x1f`` computed once per call, masks resolved at generation time),
* all widths/masks/shift amounts burned in as literals,
* fully-constant subtrees folded at generation time *through the
  reference interpreter itself* (:func:`repro.ir.interp._apply_binop`
  and friends), so folding cannot drift from interpreted semantics,
* rare edge-case operators (division, variable shifts) delegated to
  tiny helpers that replicate ``interp._apply_binop`` exactly.

The equivalence contract is bit-for-bit: for any machine context and
field assignment, the generated function must leave the machine in
exactly the state :func:`repro.ir.interp.exec_block` would — including
evaluation order of every machine-visible effect (loads, stores, input,
output, register writes).  ``tests/compile`` holds the differential and
property harnesses that enforce this.

Like the interpreter (and the symbolic engine), ``in()`` is only legal
as the *entire* right-hand side of an assignment — the input discipline
documented in :mod:`repro.adl.translate`.  Nested ``InputByte`` is a
:class:`CompileError` at generation time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import interp
from ..ir import nodes as N
from .errors import CompileError

__all__ = ["compile_concrete", "compile_block"]


def _mask(width: int) -> int:
    return (1 << width) - 1


# -- helpers available to generated code -------------------------------------
#
# Each replicates one `interp._apply_binop` edge case verbatim.  They are
# injected into the generated module's namespace, never re-generated.

def _udiv(left: int, right: int, top: int) -> int:
    return top if right == 0 else left // right


def _urem(left: int, right: int) -> int:
    return left if right == 0 else left % right


def _sdiv(left: int, right: int, width: int) -> int:
    return interp._apply_binop("sdiv", left, right, width)


def _srem(left: int, right: int, width: int) -> int:
    return interp._apply_binop("srem", left, right, width)


def _shl(left: int, right: int, width: int, top: int) -> int:
    return (left << right) & top if right < width else 0


def _lshr(left: int, right: int, width: int) -> int:
    return left >> right if right < width else 0


def _ashr(left: int, right: int, width: int, top: int) -> int:
    shift = min(right, width - 1)
    return (interp._to_signed(left, width) >> shift) & top


_HELPERS = {
    "_udiv": _udiv, "_urem": _urem, "_sdiv": _sdiv, "_srem": _srem,
    "_shl": _shl, "_lshr": _lshr, "_ashr": _ashr,
}


# -- constant folding ---------------------------------------------------------

_DYNAMIC = (N.Field, N.Local, N.Pc, N.ReadReg, N.Load, N.InputByte)


def _fold(expr: N.Expr) -> Optional[int]:
    """Value of a machine-independent subtree, or None.

    Folding is delegated to the reference interpreter's own arithmetic
    (``_apply_binop`` / ``_to_signed``) so a generated literal can never
    disagree with what interpretation would have computed.
    """
    if isinstance(expr, N.Const):
        return expr.value
    if isinstance(expr, _DYNAMIC):
        return None
    if isinstance(expr, N.BinOp):
        left, right = _fold(expr.left), _fold(expr.right)
        if left is None or right is None:
            return None
        return interp._apply_binop(expr.op, left, right, expr.left.width)
    if isinstance(expr, N.UnOp):
        operand = _fold(expr.operand)
        if operand is None:
            return None
        if expr.op == "not":
            return ~operand & _mask(expr.width)
        if expr.op == "neg":
            return -operand & _mask(expr.width)
        if expr.op == "boolnot":
            return 1 - (operand & 1)
        raise CompileError("unknown unary op %r" % expr.op)
    if isinstance(expr, N.Ext):
        operand = _fold(expr.operand)
        if operand is None:
            return None
        if expr.kind == "zext":
            return operand
        return interp._to_signed(operand, expr.operand.width) \
            & _mask(expr.width)
    if isinstance(expr, N.ExtractBits):
        operand = _fold(expr.operand)
        if operand is None:
            return None
        return (operand >> expr.lo) & _mask(expr.hi - expr.lo + 1)
    if isinstance(expr, N.ConcatBits):
        hi, lo = _fold(expr.hi_part), _fold(expr.lo_part)
        if hi is None or lo is None:
            return None
        return (hi << expr.lo_part.width) | lo
    if isinstance(expr, N.IteExpr):
        cond = _fold(expr.cond)
        if cond is None:
            return None
        return _fold(expr.then if cond == 1 else expr.other)
    return None


class _FunctionEmitter:
    """Emits one generated transfer function's source."""

    def __init__(self, name: str):
        self.name = name
        self.lines: List[str] = []
        self.indent = 1
        self._temp = 0
        # (field name, width) -> hoisted local name
        self.fields: Dict[Tuple[str, int], str] = {}

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def temp(self) -> str:
        self._temp += 1
        return "_w%d" % self._temp

    def field_local(self, name: str, width: int) -> str:
        local = self.fields.get((name, width))
        if local is None:
            local = "_f%d" % len(self.fields)
            self.fields[(name, width)] = local
        return local

    # -- expressions ---------------------------------------------------------

    def expr(self, expr: N.Expr) -> str:
        """Render ``expr`` as a pure Python expression string.

        Every rendered subexpression is already masked to its IR width
        (the invariant the interpreter maintains dynamically), and every
        operand is evaluated exactly once (walrus temps for reuse).
        """
        folded = _fold(expr)
        if folded is not None or isinstance(expr, N.Const):
            return str(folded if folded is not None else expr.value)
        if isinstance(expr, N.Field):
            return self.field_local(expr.name, expr.width)
        if isinstance(expr, N.Local):
            return "u_" + expr.name
        if isinstance(expr, N.Pc):
            return "(C.current_pc() & %#x)" % _mask(expr.width)
        if isinstance(expr, N.InputByte):
            raise CompileError(
                "in() may only be the entire right-hand side of an "
                "assignment (input discipline, repro.adl.translate)")
        if isinstance(expr, N.ReadReg):
            index = "None" if expr.index is None else self.expr(expr.index)
            return "(C.read_reg(%r, %s) & %#x)" % (
                expr.regfile, index, _mask(expr.width))
        if isinstance(expr, N.Load):
            return "(C.load(%s, %d) & %#x)" % (
                self.expr(expr.addr), expr.size, _mask(expr.width))
        if isinstance(expr, N.BinOp):
            return self._binop(expr)
        if isinstance(expr, N.UnOp):
            operand = self.expr(expr.operand)
            if expr.op == "not":
                return "((~%s) & %#x)" % (operand, _mask(expr.width))
            if expr.op == "neg":
                return "((-%s) & %#x)" % (operand, _mask(expr.width))
            if expr.op == "boolnot":
                return "(1 - (%s & 1))" % operand
            raise CompileError("unknown unary op %r" % expr.op)
        if isinstance(expr, N.Ext):
            operand = self.expr(expr.operand)
            if expr.kind == "zext":
                return operand
            return self._signed_masked(operand, expr.operand.width,
                                       expr.width)
        if isinstance(expr, N.ExtractBits):
            operand = self.expr(expr.operand)
            top = _mask(expr.hi - expr.lo + 1)
            if expr.lo == 0:
                return "(%s & %#x)" % (operand, top)
            return "((%s >> %d) & %#x)" % (operand, expr.lo, top)
        if isinstance(expr, N.ConcatBits):
            hi = self.expr(expr.hi_part)
            lo = self.expr(expr.lo_part)
            return "((%s << %d) | %s)" % (hi, expr.lo_part.width, lo)
        if isinstance(expr, N.IteExpr):
            cond = self.expr(expr.cond)
            then = self.expr(expr.then)
            other = self.expr(expr.other)
            # Lazy, like the interpreter: only the chosen arm runs.
            return "(%s if %s else %s)" % (then, cond, other)
        raise CompileError("unknown IR expression %r" % (expr,))

    def _signed(self, rendered: str, width: int) -> str:
        """Two's-complement reinterpretation, operand evaluated once."""
        sign = 1 << (width - 1)
        temp = self.temp()
        return "((%s := %s) - ((%s & %#x) << 1))" % (
            temp, rendered, temp, sign)

    def _signed_masked(self, rendered: str, width: int,
                       result_width: int) -> str:
        return "(%s & %#x)" % (self._signed(rendered, width),
                               _mask(result_width))

    def _signed_operand(self, expr: N.Expr) -> str:
        """Signed value of an operand, folding constants at gen time."""
        folded = _fold(expr)
        if folded is not None:
            return str(interp._to_signed(folded, expr.width))
        return self._signed(self.expr(expr), expr.width)

    _SIGNED_CMP = {"slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}
    _UNSIGNED_CMP = {"eq": "==", "ne": "!=", "ult": "<", "ule": "<=",
                     "ugt": ">", "uge": ">="}

    def _binop(self, expr: N.BinOp) -> str:
        op = expr.op
        width = expr.left.width
        top = _mask(width)
        if op in ("add", "sub", "mul"):
            sign = {"add": "+", "sub": "-", "mul": "*"}[op]
            return "((%s %s %s) & %#x)" % (
                self.expr(expr.left), sign, self.expr(expr.right), top)
        if op in ("and", "or", "xor"):
            sign = {"and": "&", "or": "|", "xor": "^"}[op]
            return "(%s %s %s)" % (
                self.expr(expr.left), sign, self.expr(expr.right))
        if op in self._UNSIGNED_CMP:
            return "(1 if %s %s %s else 0)" % (
                self.expr(expr.left), self._UNSIGNED_CMP[op],
                self.expr(expr.right))
        if op in self._SIGNED_CMP:
            return "(1 if %s %s %s else 0)" % (
                self._signed_operand(expr.left), self._SIGNED_CMP[op],
                self._signed_operand(expr.right))
        if op in ("shl", "lshr", "ashr"):
            return self._shift(expr, width, top)
        if op == "udiv":
            return "_udiv(%s, %s, %#x)" % (
                self.expr(expr.left), self.expr(expr.right), top)
        if op == "urem":
            return "_urem(%s, %s)" % (
                self.expr(expr.left), self.expr(expr.right))
        if op in ("sdiv", "srem"):
            return "_%s(%s, %s, %d)" % (
                op, self.expr(expr.left), self.expr(expr.right), width)
        raise CompileError("unknown binary op %r" % op)

    def _shift(self, expr: N.BinOp, width: int, top: int) -> str:
        amount = _fold(expr.right)
        if amount is None:
            helper = {"shl": "_shl(%s, %s, %d, %#x)",
                      "lshr": "_lshr(%s, %s, %d)",
                      "ashr": "_ashr(%s, %s, %d, %#x)"}[expr.op]
            args = (self.expr(expr.left), self.expr(expr.right), width)
            if expr.op != "lshr":
                args += (top,)
            return helper % args
        # Shift amount known at generation time: specialize fully.
        if expr.op == "shl":
            if amount >= width:
                return "0"
            return "((%s << %d) & %#x)" % (self.expr(expr.left), amount, top)
        if expr.op == "lshr":
            if amount >= width:
                return "0"
            if amount == 0:
                return self.expr(expr.left)
            return "(%s >> %d)" % (self.expr(expr.left), amount)
        shift = min(amount, width - 1)
        return "((%s >> %d) & %#x)" % (
            self._signed(self.expr(expr.left), width), shift, top)

    # -- statements ----------------------------------------------------------

    def block(self, stmts) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, stmt: N.Stmt) -> None:
        if isinstance(stmt, N.SetLocal):
            self.emit("u_%s = %s" % (stmt.name, self._rhs(stmt.value)))
        elif isinstance(stmt, N.SetReg):
            index = "None" if stmt.index is None else self.expr(stmt.index)
            # Argument order = interpreter order: index before value.
            self.emit("C.write_reg(%r, %s, %s)" % (
                stmt.regfile, index, self._rhs(stmt.value)))
        elif isinstance(stmt, N.SetPc):
            self.emit("O.next_pc = %s" % self.expr(stmt.value))
        elif isinstance(stmt, N.Store):
            self.emit("C.store(%s, %s, %d)" % (
                self.expr(stmt.addr), self.expr(stmt.value), stmt.size))
        elif isinstance(stmt, N.Output):
            self.emit("C.output_byte(%s & 0xff)" % self.expr(stmt.value))
        elif isinstance(stmt, N.Halt):
            self.emit("O.halted = True")
            self.emit("O.exit_code = %s" % self.expr(stmt.code))
            self.emit("return")
        elif isinstance(stmt, N.Trap):
            self.emit("O.trapped = True")
            self.emit("O.trap_code = %s" % self.expr(stmt.code))
            self.emit("return")
        elif isinstance(stmt, N.IfStmt):
            folded = _fold(stmt.cond)
            if folded is not None:
                self.block(stmt.then_body if folded == 1
                           else stmt.else_body)
                return
            self.emit("if %s:" % self.expr(stmt.cond))
            self.indent += 1
            if stmt.then_body:
                self.block(stmt.then_body)
            else:
                self.emit("pass")
            self.indent -= 1
            if stmt.else_body:
                self.emit("else:")
                self.indent += 1
                self.block(stmt.else_body)
                self.indent -= 1
        else:
            raise CompileError("unknown IR statement %r" % (stmt,))

    def _rhs(self, value: N.Expr) -> str:
        # The one place InputByte is legal: a whole assignment RHS.
        if isinstance(value, N.InputByte):
            return "(C.input_byte() & 0xff)"
        return self.expr(value)

    # -- assembly ------------------------------------------------------------

    def source(self) -> str:
        header = ["def %s(C, F, O):" % self.name]
        for (name, width), local in self.fields.items():
            header.append("    %s = F[%r] & %#x" % (local, name,
                                                    _mask(width)))
        body = self.lines or ["    pass"]
        return "\n".join(header + body)


def compile_block(name: str, stmts) -> "object":
    """Compile one IR block into a callable ``fn(ctx, fields, outcome)``.

    The unit-level entry point (tests, tooling); model-level callers go
    through :func:`compile_concrete`.
    """
    emitter = _FunctionEmitter("_fn")
    emitter.block(stmts)
    namespace = dict(_HELPERS)
    source = emitter.source()
    exec(compile(source, "<repro.compile:%s>" % name, "exec"), namespace)
    fn = namespace["_fn"]
    fn.__name__ = "compiled_" + name
    fn.__qualname__ = fn.__name__
    fn.generated_source = source
    return fn


def compile_concrete(model) -> Tuple[Dict[str, object], str]:
    """Compile every rule of ``model``; returns ``(table, source)``.

    ``table`` maps instruction name -> generated transfer function —
    the fused decode->semantics dispatch table for the concrete
    simulator.  ``source`` is the whole generated module (debugging,
    CI artifacts).
    """
    chunks = ["# generated by repro.compile — concrete semantics for %r"
              % model.name]
    table_rows = []
    rule_sources: Dict[str, str] = {}
    namespace = dict(_HELPERS)
    for position, instr in enumerate(model.instructions):
        emitter = _FunctionEmitter("_c%d" % position)
        try:
            emitter.block(instr.semantics)
        except CompileError as error:
            raise CompileError("%s: rule %r: %s"
                               % (model.name, instr.name, error))
        chunks.append("# rule %r" % instr.name)
        rule_sources[instr.name] = emitter.source()
        chunks.append(rule_sources[instr.name])
        table_rows.append("    %r: _c%d," % (instr.name, position))
    chunks.append("CONCRETE = {\n%s\n}" % "\n".join(table_rows))
    source = "\n\n".join(chunks) + "\n"
    exec(compile(source, "<repro.compile:%s:concrete>" % model.name,
                 "exec"), namespace)
    table = namespace["CONCRETE"]
    for name, fn in table.items():
        # Per-rule introspection hook: the translation validator
        # re-evaluates exactly the source this function was built from.
        fn.generated_source = rule_sources[name]
    return table, source
