"""Specialized transfer functions compiled from ADL semantics.

ROADMAP open item 1 ("compile the generated semantics"): instead of
walking each rule's IR tree per executed instruction, every rule is
lowered *once* into generated Python — a concrete transfer function for
the simulator (:mod:`repro.compile.concrete`) and a symbolic
term-building plan for the engine (:mod:`repro.compile.symbolic`).
Decode -> semantics dispatch becomes one per-ISA table lookup.

Cache discipline
----------------
Compiled tables are cached in-process keyed on ``(isa name,
spec_digest, CODEGEN_VERSION)`` — the content digest the run store
uses for provenance (:func:`repro.runstore.provenance.spec_digest`)
plus a bump-on-change codegen version, so editing a spec *or* the code
generator itself transparently regenerates the table; models rebuilt
from an unchanged spec under an unchanged generator share the cached
compilation.  Translation-validation certificates
(:mod:`repro.runstore.certs`) key on the same pair, so a stale
"verified" verdict can never outlive the generator that earned it.
The cache holds only generated *functions and plan tuples* — never
:class:`repro.smt.terms.Term` objects, because the term pool is
swappable and cached terms would dangle across ``terms.configure()``.

Equivalence discipline
----------------------
Compilation is an optimization, **not** a semantics change: the
differential harness (``tests/compile/``) requires bit-for-bit
identical exploration fingerprints (tree/leaves/defects) interpreted
vs compiled on every shipped ISA, and a Hypothesis property test pins
single-step equality against :mod:`repro.ir.interp`.  That is why
``EngineConfig.compiled_semantics`` is deliberately *excluded* from the
run-store key material: a compiled run answers for an interpreted run
and vice versa.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..runstore.provenance import spec_digest
from .concrete import compile_block, compile_concrete  # noqa: F401
from .errors import CompileError  # noqa: F401
from .symbolic import compile_symbolic, exec_block  # noqa: F401

__all__ = ["CODEGEN_VERSION", "CompiledSemantics", "CompileError",
           "compiled_for", "compile_block", "compile_concrete",
           "compile_symbolic", "clear_cache", "cache_info"]

#: Version of the code generators themselves.  Bump whenever
#: :mod:`repro.compile.concrete` or :mod:`repro.compile.symbolic`
#: change the code they emit: it invalidates the in-process compilation
#: cache and every translation-validation certificate keyed on the old
#: generator's output.
CODEGEN_VERSION = 2


class CompiledSemantics:
    """One ISA's compiled transfer functions, keyed by spec digest."""

    __slots__ = ("isa", "digest", "codegen_version", "concrete", "plans",
                 "concrete_source", "symbolic_source")

    def __init__(self, isa: str, digest: str, concrete, plans,
                 concrete_source: str, symbolic_source: str):
        self.isa = isa
        self.digest = digest
        self.codegen_version = CODEGEN_VERSION
        #: instruction name -> fn(ctx, fields, outcome)
        self.concrete = concrete
        #: instruction name -> plan tuple for symbolic.exec_block
        self.plans = plans
        self.concrete_source = concrete_source
        self.symbolic_source = symbolic_source

    @property
    def source(self) -> str:
        """Both generated modules, concatenated (debugging, artifacts)."""
        return self.concrete_source + "\n\n" + self.symbolic_source

    def __repr__(self):
        return "<CompiledSemantics %s %s: %d rules>" % (
            self.isa, self.digest[:18], len(self.plans))


_CACHE: Dict[Tuple[str, str, int], CompiledSemantics] = {}


def compiled_for(model) -> CompiledSemantics:
    """The (cached) compiled semantics for ``model``.

    Cache key is ``(model.name, spec_digest(model),
    CODEGEN_VERSION)``: an edited spec digests differently and is
    recompiled, and so is every spec after a generator change; an
    unchanged spec under an unchanged generator — even through a fresh
    :func:`repro.isa.build` — hits the cache.
    """
    digest = spec_digest(model)
    key = (model.name, digest, CODEGEN_VERSION)
    compiled = _CACHE.get(key)
    if compiled is None:
        concrete, concrete_source = compile_concrete(model)
        plans, symbolic_source = compile_symbolic(model)
        compiled = CompiledSemantics(model.name, digest, concrete, plans,
                                     concrete_source, symbolic_source)
        _CACHE[key] = compiled
    return compiled


def clear_cache() -> None:
    """Drop every cached compilation (tests, spec-development loops)."""
    _CACHE.clear()


def cache_info() -> Dict[str, int]:
    return {"entries": len(_CACHE)}
