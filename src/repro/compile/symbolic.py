"""Symbolic codegen: IR blocks -> specialized term-building plans.

The symbolic twin of :mod:`repro.compile.concrete`.  Each rule is
lowered into a *plan*: a nested tuple tree of tagged statements whose
expression slots are generated Python functions

    def _s0(E, S, FT, FI, L, D): ...

(``E`` engine, ``S`` state, ``FT`` per-decode field *terms*, ``FI`` raw
decoded field ints, ``L`` locals dict, ``D`` decoded) returning a
:class:`repro.smt.terms.Term`.  The generated body is the engine's
recursive ``Engine._eval`` unrolled for one specific expression tree:

* isinstance dispatch is gone — each node became a line of code,
* widths, masks and extension amounts are literals,
* register-index fields are pre-resolved (``FT['rs1'].value`` instead
  of eval + ``_concrete_index``),
* guard tuples for expression-``ite`` arms are threaded exactly as the
  engine threads them, and solver-visible callbacks (``_load``,
  ``_store``, ``_check_div``, ``_branch_feasible``,
  ``_concrete_index``) go back through the engine itself.

The plan driver (:func:`exec_block` / ``_run`` / ``_fork``) mirrors
``Engine._run_frames`` / ``Engine._fork_if`` statement for statement —
same solver-query order, same ``assume`` order, same fork order, same
frame-model seeding — because the equivalence contract is *bit-for-bit
identical exploration fingerprints* (tree/leaves/defects), not just
equal final values.  Term construction happens at run time, never at
generation time: the term pool is swappable (``terms.set_pool``), so a
digest-keyed cross-engine cache must not bake ``Term`` objects in.

No constant folding happens here beyond what ``Engine._eval`` itself
does (const-condition ``ite`` laziness, const register indices): the
engine's term *structure* feeds solver queries and fingerprints, so the
compiled path must build exactly the same terms.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import nodes as N
from ..smt import SAT
from ..smt import terms as T
from .errors import CompileError

__all__ = ["compile_symbolic", "exec_block",
           "S_LOCAL", "S_LOCAL_IN", "S_REG", "S_REG_IN", "S_PC",
           "S_STORE", "S_OUT", "S_HALT", "S_TRAP", "S_IF"]

# Plan statement tags (first tuple element).
S_LOCAL = 0      # (tag, name, fn)
S_LOCAL_IN = 1   # (tag, name)
S_REG = 2        # (tag, regfile, index_spec, fn)
S_REG_IN = 3     # (tag, regfile, index_spec)
S_PC = 4         # (tag, fn)
S_STORE = 5      # (tag, addr_fn, value_fn, size)
S_OUT = 6        # (tag, fn)
S_HALT = 7       # (tag, fn)
S_TRAP = 8       # (tag, fn)
S_IF = 9         # (tag, cond_fn, then_plan, else_plan)

# index_spec forms for S_REG / S_REG_IN:
#   None               single register (regfile is a plain register)
#   ("f", field_name)  index comes from an encoding field: FT[name].value
#   ("c", value)       constant index, resolved at generation time
#   ("e", fn)          general expression: eval + engine._concrete_index

_BUILDERS = {
    "add": "add", "sub": "sub", "mul": "mul",
    "udiv": "udiv", "urem": "urem", "sdiv": "sdiv", "srem": "srem",
    "and": "and_", "or": "or_", "xor": "xor",
    "shl": "shl", "lshr": "lshr", "ashr": "ashr",
    "eq": "eq", "ne": "ne", "ult": "ult", "ule": "ule",
    "ugt": "ugt", "uge": "uge", "slt": "slt", "sle": "sle",
    "sgt": "sgt", "sge": "sge",
}

_DIV_OPS = frozenset({"udiv", "urem", "sdiv", "srem"})


def _emits_statements(expr: N.Expr) -> bool:
    """Whether rendering ``expr`` emits statement lines (not pure inline).

    Used for operand ordering: when a *right* operand emits statements,
    the left operand must be materialized into a temp first, or the
    right operand's effects (solver checks, loads) would run before the
    left operand evaluates — diverging from ``Engine._eval``'s strict
    left-to-right order.
    """
    if isinstance(expr, N.IteExpr):
        return True
    if isinstance(expr, N.BinOp):
        return (expr.op in _DIV_OPS or _emits_statements(expr.left)
                or _emits_statements(expr.right))
    if isinstance(expr, N.ReadReg):
        if expr.index is None or isinstance(expr.index, (N.Field, N.Const)):
            return False
        return True
    if isinstance(expr, (N.UnOp, N.Ext, N.ExtractBits)):
        return _emits_statements(expr.operand)
    if isinstance(expr, N.ConcatBits):
        return (_emits_statements(expr.hi_part)
                or _emits_statements(expr.lo_part))
    if isinstance(expr, N.Load):
        return _emits_statements(expr.addr)
    return False


class _SymEmitter:
    """Emits one generated term-building function's source."""

    def __init__(self, name: str):
        self.name = name
        self.lines: List[str] = ["def %s(E, S, FT, FI, L, D):" % name]
        self.indent = 1
        self._temp = 0
        self._guard = 0

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def temp(self) -> str:
        self._temp += 1
        return "_t%d" % self._temp

    def guard_name(self) -> str:
        self._guard += 1
        return "_g%d" % self._guard

    # ``guards`` below is a *source-level* expression string for the
    # current guard tuple — "()" at statement level, growing inside
    # symbolic ite arms exactly like Engine._eval's ``guards`` argument.

    def expr(self, expr: N.Expr, guards: str) -> str:
        if isinstance(expr, N.Const):
            return "T.bv(%d, %d)" % (expr.value, expr.width)
        if isinstance(expr, N.Field):
            return "FT[%r]" % expr.name
        if isinstance(expr, N.Local):
            return "L[%r]" % expr.name
        if isinstance(expr, N.Pc):
            return "T.bv(S.pc, %d)" % expr.width
        if isinstance(expr, N.InputByte):
            raise CompileError(
                "in() may only be the entire right-hand side of an "
                "assignment (input discipline, repro.adl.translate)")
        if isinstance(expr, N.ReadReg):
            return "S.read_reg(%r, %s)" % (
                expr.regfile, self._index(expr.index, guards))
        if isinstance(expr, N.Load):
            addr = self.expr(expr.addr, guards)
            return "E._load(S, %s, %d, %s, D)" % (addr, expr.size, guards)
        if isinstance(expr, N.BinOp):
            if expr.op in _DIV_OPS:
                # Both operands materialize in order, then the div-zero
                # check runs *before* the op term is built — engine
                # order.
                left_t = self.temp()
                self.emit("%s = %s" % (left_t, self.expr(expr.left,
                                                         guards)))
                right_t = self.temp()
                self.emit("%s = %s" % (right_t, self.expr(expr.right,
                                                          guards)))
                self.emit("if E.config.check_div_zero:")
                self.emit("    E._check_div(S, %s, %s, D)"
                          % (right_t, guards))
                return "T.%s(%s, %s)" % (_BUILDERS[expr.op], left_t,
                                         right_t)
            left = self.expr(expr.left, guards)
            if _emits_statements(expr.right):
                left_t = self.temp()
                self.emit("%s = %s" % (left_t, left))
                left = left_t
            right = self.expr(expr.right, guards)
            return "T.%s(%s, %s)" % (_BUILDERS[expr.op], left, right)
        if isinstance(expr, N.UnOp):
            operand = self.expr(expr.operand, guards)
            if expr.op in ("not", "boolnot"):
                return "T.not_(%s)" % operand
            if expr.op == "neg":
                return "T.neg(%s)" % operand
            raise CompileError("unknown unary op %r" % expr.op)
        if isinstance(expr, N.Ext):
            operand = self.expr(expr.operand, guards)
            extra = expr.width - expr.operand.width
            kind = "zext" if expr.kind == "zext" else "sext"
            return "T.%s(%s, %d)" % (kind, operand, extra)
        if isinstance(expr, N.ExtractBits):
            return "T.extract(%s, %d, %d)" % (
                self.expr(expr.operand, guards), expr.hi, expr.lo)
        if isinstance(expr, N.ConcatBits):
            hi = self.expr(expr.hi_part, guards)
            if _emits_statements(expr.lo_part):
                hi_t = self.temp()
                self.emit("%s = %s" % (hi_t, hi))
                hi = hi_t
            lo = self.expr(expr.lo_part, guards)
            return "T.concat(%s, %s)" % (hi, lo)
        if isinstance(expr, N.IteExpr):
            return self._ite(expr, guards)
        raise CompileError("unknown IR expression %r" % (expr,))

    def _index(self, index: Optional[N.Expr], guards: str) -> str:
        if index is None:
            return "None"
        if isinstance(index, N.Field):
            # fields[name] is a const term; _concrete_index returns its
            # value.  FT[name].value is that same masked int.
            return "FT[%r].value" % index.name
        if isinstance(index, N.Const):
            return str(index.value)
        term = self.temp()
        self.emit("%s = %s" % (term, self.expr(index, guards)))
        return "E._concrete_index(S, %s, D)" % term

    def _ite(self, expr: N.IteExpr, guards: str) -> str:
        cond = self.temp()
        self.emit("%s = %s" % (cond, self.expr(expr.cond, guards)))
        result = self.temp()
        self.emit("if %s.is_const():" % cond)
        self.indent += 1
        # Const condition: engine evaluates only the chosen arm, under
        # the *unchanged* guards.
        self.emit("if %s.value == 1:" % cond)
        self.indent += 1
        self.emit("%s = %s" % (result, self.expr(expr.then, guards)))
        self.indent -= 1
        self.emit("else:")
        self.indent += 1
        self.emit("%s = %s" % (result, self.expr(expr.other, guards)))
        self.indent -= 2
        self.emit("else:")
        self.indent += 1
        then_guards = self.guard_name()
        self.emit("%s = %s + (%s,)" % (then_guards, guards, cond))
        then = self.temp()
        self.emit("%s = %s" % (then, self.expr(expr.then, then_guards)))
        else_guards = self.guard_name()
        self.emit("%s = %s + (T.not_(%s),)" % (else_guards, guards, cond))
        other = self.temp()
        self.emit("%s = %s" % (other, self.expr(expr.other, else_guards)))
        self.emit("%s = T.ite(%s, %s, %s)" % (result, cond, then, other))
        self.indent -= 1
        return result

    def source(self, result: str) -> str:
        return "\n".join(self.lines + ["    return %s" % result])


class _PlanBuilder:
    """Lowers one rule into (plan literal, generated functions)."""

    def __init__(self, prefix: str):
        self.prefix = prefix
        self.functions: List[str] = []
        self._count = 0

    def fn(self, expr: N.Expr) -> str:
        name = "%s_%d" % (self.prefix, self._count)
        self._count += 1
        emitter = _SymEmitter(name)
        result = emitter.expr(expr, "()")
        self.functions.append(emitter.source(result))
        return name

    def index_spec(self, index: Optional[N.Expr]) -> str:
        if index is None:
            return "None"
        if isinstance(index, N.Field):
            return "('f', %r)" % index.name
        if isinstance(index, N.Const):
            return "('c', %d)" % index.value
        return "('e', %s)" % self.fn(index)

    def plan(self, stmts) -> str:
        rows = []
        for stmt in stmts:
            if isinstance(stmt, N.SetLocal):
                if isinstance(stmt.value, N.InputByte):
                    rows.append("(%d, %r)" % (S_LOCAL_IN, stmt.name))
                else:
                    rows.append("(%d, %r, %s)" % (
                        S_LOCAL, stmt.name, self.fn(stmt.value)))
            elif isinstance(stmt, N.SetReg):
                spec = self.index_spec(stmt.index)
                if isinstance(stmt.value, N.InputByte):
                    rows.append("(%d, %r, %s)" % (
                        S_REG_IN, stmt.regfile, spec))
                else:
                    rows.append("(%d, %r, %s, %s)" % (
                        S_REG, stmt.regfile, spec, self.fn(stmt.value)))
            elif isinstance(stmt, N.SetPc):
                rows.append("(%d, %s)" % (S_PC, self.fn(stmt.value)))
            elif isinstance(stmt, N.Store):
                rows.append("(%d, %s, %s, %d)" % (
                    S_STORE, self.fn(stmt.addr), self.fn(stmt.value),
                    stmt.size))
            elif isinstance(stmt, N.Output):
                rows.append("(%d, %s)" % (S_OUT, self.fn(stmt.value)))
            elif isinstance(stmt, N.Halt):
                rows.append("(%d, %s)" % (S_HALT, self.fn(stmt.code)))
            elif isinstance(stmt, N.Trap):
                rows.append("(%d, %s)" % (S_TRAP, self.fn(stmt.code)))
            elif isinstance(stmt, N.IfStmt):
                rows.append("(%d, %s, %s, %s)" % (
                    S_IF, self.fn(stmt.cond), self.plan(stmt.then_body),
                    self.plan(stmt.else_body)))
            else:
                raise CompileError("unknown IR statement %r" % (stmt,))
        if not rows:
            return "()"
        return "(%s,)" % ", ".join(rows)


def compile_symbolic(model) -> Tuple[Dict[str, tuple], str]:
    """Compile every rule of ``model``; returns ``(plans, source)``.

    ``plans`` maps instruction name -> plan tuple for
    :func:`exec_block`; ``source`` is the generated module text.
    """
    chunks = ["# generated by repro.compile — symbolic plans for %r"
              % model.name]
    table_rows = []
    namespace: Dict[str, object] = {"T": T}
    for position, instr in enumerate(model.instructions):
        builder = _PlanBuilder("_s%d" % position)
        try:
            plan = builder.plan(instr.semantics)
        except CompileError as error:
            raise CompileError("%s: rule %r: %s"
                               % (model.name, instr.name, error))
        chunks.append("# rule %r" % instr.name)
        chunks.extend(builder.functions)
        table_rows.append("    %r: %s," % (instr.name, plan))
    chunks.append("PLANS = {\n%s\n}" % "\n".join(table_rows))
    source = "\n\n".join(chunks) + "\n"
    exec(compile(source, "<repro.compile:%s:symbolic>" % model.name,
                 "exec"), namespace)
    return namespace["PLANS"], source


# -- plan driver --------------------------------------------------------------
#
# Mirrors Engine._exec_block / _run_frames / _exec_simple / _fork_if.
# Any change to the engine's fork/assume/query order must be replicated
# here (the differential harness in tests/compile will catch drift).

def exec_block(engine, state, decoded, plan):
    """Compiled replacement for ``Engine._exec_block``."""
    from ..core.executor import _Outcome
    FT = engine._compiled_fields(decoded)
    return _run(engine, state, [(plan, 0)], {}, _Outcome(), FT,
                decoded.fields, decoded)


def _resolve_index(E, state, spec, FT, FI, L, D):
    if spec is None:
        return None
    kind = spec[0]
    if kind == "f":
        return FT[spec[1]].value
    if kind == "c":
        return spec[1]
    term = spec[1](E, state, FT, FI, L, D)
    return E._concrete_index(state, term, D)


def _run(E, state, frames, L, outcome, FT, FI, D):
    while frames:
        stmts, index = frames[-1]
        if index >= len(stmts):
            frames.pop()
            continue
        frames[-1] = (stmts, index + 1)
        st = stmts[index]
        tag = st[0]
        if tag == S_IF:
            cond = st[1](E, state, FT, FI, L, D)
            if cond.is_const():
                body = st[2] if cond.value == 1 else st[3]
                if body:
                    frames.append((body, 0))
                continue
            return _fork(E, state, st, cond, frames, L, outcome, FT, FI, D)
        if tag == S_REG:
            value = st[3](E, state, FT, FI, L, D)
            state.write_reg(st[1],
                            _resolve_index(E, state, st[2], FT, FI, L, D),
                            value)
        elif tag == S_LOCAL:
            L[st[1]] = st[2](E, state, FT, FI, L, D)
        elif tag == S_LOCAL_IN:
            L[st[1]] = state.next_input()
        elif tag == S_REG_IN:
            value = state.next_input()
            state.write_reg(st[1],
                            _resolve_index(E, state, st[2], FT, FI, L, D),
                            value)
        elif tag == S_PC:
            outcome.next_pc = st[1](E, state, FT, FI, L, D)
        elif tag == S_STORE:
            addr = st[1](E, state, FT, FI, L, D)
            value = st[2](E, state, FT, FI, L, D)
            E._store(state, addr, value, st[3], D)
        elif tag == S_OUT:
            state.output.append(st[1](E, state, FT, FI, L, D))
        elif tag == S_HALT:
            outcome.halted = True
            outcome.exit_code = st[1](E, state, FT, FI, L, D)
            return [(state, outcome)]
        elif tag == S_TRAP:
            outcome.trapped = True
            outcome.trap_code = st[1](E, state, FT, FI, L, D)
            return [(state, outcome)]
        else:  # pragma: no cover - plans are generated, tags are total
            raise CompileError("unknown plan tag %r" % (tag,))
    return [(state, outcome)]


def _fork(E, state, st, cond, frames, L, outcome, FT, FI, D):
    from ..core.executor import _Outcome, _PathEnd
    results = []
    branches = ((cond, st[2]), (T.not_(cond), st[3]))
    feasible = []
    attr = E.attr
    probe = attr is not None and attr.deep
    if probe:
        attr.ir_enter("IfStmt")
    try:
        for branch_cond, body in branches:
            verdict, model, memo = E._branch_feasible(state, branch_cond)
            if verdict == SAT:
                feasible.append((branch_cond, body, model, memo))
    finally:
        if probe:
            attr.ir_exit()
    for position, (branch_cond, body, model, memo) in enumerate(feasible):
        last = position == len(feasible) - 1
        branch_state = state if last else state.fork()
        branch_state.assume(branch_cond)
        if model is not None:
            branch_state.frame_model = model
            branch_state.frame_memo = memo if memo is not None else {}
            branch_state.frame_checked = len(branch_state.path_condition)
        branch_frames = [(stmts, idx) for stmts, idx in frames]
        if body:
            branch_frames.append((body, 0))
        branch_outcome = _Outcome()
        for slot in _Outcome.__slots__:
            setattr(branch_outcome, slot, getattr(outcome, slot))
        branch_locals = dict(L)
        try:
            results.extend(_run(E, branch_state, branch_frames,
                                branch_locals, branch_outcome, FT, FI, D))
        except _PathEnd as dead:
            E._dead_end(branch_state, dead.reason)
            continue
    return results
