"""Concrete ISA simulator.

Interprets the generated IR over plain integers.  This is the reference
semantics the symbolic executor is differentially tested against, the
replay vehicle for solver-found inputs (Figure 3), and the concrete half of
concolic execution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..ir import interp
from .assembler import Image
from .decoder import DecodeError

__all__ = ["SimError", "MachineState", "Simulator", "run_image"]


class SimError(Exception):
    """A concrete-execution failure (bad fetch, register index, memory)."""


class MachineState(interp.MachineContext):
    """Registers + byte-addressed sparse memory + I/O streams."""

    def __init__(self, model, input_bytes: bytes = b""):
        self.model = model
        self.regfiles: Dict[str, List[int]] = {
            name: [0] * info.count for name, info in model.regfiles.items()}
        self.registers: Dict[str, int] = {
            name: 0 for name in model.registers}
        self.memory: Dict[int, int] = {}
        self.pc = 0
        self.input = list(input_bytes)
        self.input_cursor = 0
        self.output = bytearray()
        self._addr_mask = (1 << model.pc_width) - 1

    # -- MachineContext interface -------------------------------------------------

    def read_reg(self, regfile: str, index) -> int:
        if index is None:
            return self.registers[regfile]
        info = self.model.regfiles[regfile]
        if not (0 <= index < info.count):
            raise SimError("register index %d out of range for %r"
                           % (index, regfile))
        if info.zero_index is not None and index == info.zero_index:
            return 0
        return self.regfiles[regfile][index]

    def write_reg(self, regfile: str, index, value: int) -> None:
        if index is None:
            width = self.model.registers[regfile]
            self.registers[regfile] = value & ((1 << width) - 1)
            return
        info = self.model.regfiles[regfile]
        if not (0 <= index < info.count):
            raise SimError("register index %d out of range for %r"
                           % (index, regfile))
        if info.zero_index is not None and index == info.zero_index:
            return
        self.regfiles[regfile][index] = value & ((1 << info.width) - 1)

    def load(self, addr: int, size: int) -> int:
        addr &= self._addr_mask
        data = [self.memory.get((addr + i) & self._addr_mask, 0)
                for i in range(size)]
        if self.model.endian == "big":
            data.reverse()
        value = 0
        for i, byte in enumerate(data):
            value |= byte << (8 * i)
        return value

    def store(self, addr: int, value: int, size: int) -> None:
        addr &= self._addr_mask
        data = [(value >> (8 * i)) & 0xff for i in range(size)]
        if self.model.endian == "big":
            data.reverse()
        for i, byte in enumerate(data):
            self.memory[(addr + i) & self._addr_mask] = byte

    def input_byte(self) -> int:
        if self.input_cursor < len(self.input):
            value = self.input[self.input_cursor]
        else:
            value = 0
        self.input_cursor += 1
        return value & 0xff

    def output_byte(self, value: int) -> None:
        self.output.append(value & 0xff)

    def current_pc(self) -> int:
        return self.pc

    # -- loading ----------------------------------------------------------------

    def load_image(self, image: Image) -> None:
        for offset, byte in enumerate(image.data):
            self.memory[image.base + offset] = byte
        self.pc = image.entry


class StepResult:
    """What happened during one :meth:`Simulator.step`."""

    __slots__ = ("decoded", "halted", "exit_code", "trapped", "trap_code")

    def __init__(self, decoded, outcome):
        self.decoded = decoded
        self.halted = outcome.halted
        self.exit_code = outcome.exit_code
        self.trapped = outcome.trapped
        self.trap_code = outcome.trap_code


class Simulator:
    """Fetch/decode/execute loop over a :class:`MachineState`."""

    def __init__(self, model, state: Optional[MachineState] = None,
                 input_bytes: bytes = b"", compiled: bool = False):
        self.model = model
        self.state = state if state is not None else MachineState(
            model, input_bytes)
        self.instruction_count = 0
        self.halted = False
        self.exit_code: Optional[int] = None
        self.trapped = False
        self.trap_code: Optional[int] = None
        # Specialized transfer functions (repro.compile): one generated
        # Python function per rule instead of an IR walk per step.
        # Bit-for-bit equivalent to the interpreter by the differential
        # harness (tests/compile), so this flag only changes speed.
        self._compiled_fns = None
        self._pc_mask = (1 << model.pc_width) - 1
        # Fused decode->dispatch sites: pc -> (byte pairs, decoded, fn).
        # Each hit revalidates the instruction's own bytes, so
        # self-modifying code falls back to a fresh decode.  Sound
        # because decoding is shortest-first over length groups: the
        # decision depends only on the decoded instruction's bytes.
        self._sites: Dict[int, tuple] = {}
        if compiled:
            from ..compile import compiled_for
            self._compiled_fns = compiled_for(model).concrete

    def _fetch_window(self) -> bytes:
        max_len = self.model.decoder.max_length
        pc = self.state.pc
        mask = (1 << self.model.pc_width) - 1
        return bytes(self.state.memory.get((pc + i) & mask, 0)
                     for i in range(max_len))

    def step(self) -> StepResult:
        if self.halted or self.trapped:
            raise SimError("machine is stopped")
        if self._compiled_fns is not None:
            return self._step_compiled()
        window = self._fetch_window()
        decoded = self.model.decoder.decode_bytes(window, self.state.pc)
        outcome = interp.exec_block(decoded.instruction.semantics,
                                    self.state, decoded.fields)
        return self._retire(decoded, outcome)

    def _step_compiled(self) -> StepResult:
        state = self.state
        memory = state.memory
        pc = state.pc
        site = self._sites.get(pc)
        if site is not None:
            pairs, decoded, fn = site
            for addr, byte in pairs:
                if memory.get(addr, 0) != byte:
                    site = None   # code changed under us: re-decode
                    break
        if site is None:
            window = self._fetch_window()
            decoded = self.model.decoder.decode_bytes(window, pc)
            fn = self._compiled_fns[decoded.instruction.name]
            pairs = tuple(((pc + i) & self._pc_mask, window[i])
                          for i in range(decoded.length))
            self._sites[pc] = (pairs, decoded, fn)
        outcome = interp.ExecOutcome()
        fn(state, decoded.fields, outcome)
        return self._retire(decoded, outcome)

    def _retire(self, decoded, outcome) -> StepResult:
        self.instruction_count += 1
        if outcome.halted:
            self.halted = True
            self.exit_code = outcome.exit_code
        elif outcome.trapped:
            self.trapped = True
            self.trap_code = outcome.trap_code
        elif outcome.next_pc is not None:
            self.state.pc = outcome.next_pc & self._pc_mask
        else:
            self.state.pc = (self.state.pc + decoded.length) & self._pc_mask
        return StepResult(decoded, outcome)

    def run(self, max_steps: int = 1_000_000) -> "Simulator":
        """Run until halt/trap or the step budget is exhausted."""
        for _ in range(max_steps):
            if self.halted or self.trapped:
                break
            self.step()
        return self

    @property
    def output(self) -> bytes:
        return bytes(self.state.output)


def run_image(model, image: Image, input_bytes: bytes = b"",
              max_steps: int = 1_000_000, compiled: bool = False) -> Simulator:
    """Assemble-and-go convenience: load an image and run it."""
    sim = Simulator(model, input_bytes=input_bytes, compiled=compiled)
    sim.state.load_image(image)
    return sim.run(max_steps)
