"""Generated two-pass assembler.

The assembler is derived entirely from the ADL: mnemonics and operand
shapes come from each instruction's ``syntax`` string, register names from
regfile prefixes and aliases, and immediate/branch encodings from the
``operand`` declarations (including pc-relative relocation and zero-padding
divisibility checks).

Supported source format::

    .org 0x1000          ; set location counter     (also: # comments)
    .entry start         ; entry point label
    .equ LIMIT, 16       ; symbolic constant
    start:               ; labels (may share a line with an instruction)
        addi x1, x0, 5
        beq  x1, x2, done
    value: .word 0xdeadbeef
    text:  .asciiz "hi"
        .byte 1, 2, 3
        .half 0x1234
        .space 16
        .align 4
    done:
        hlt 0

``.word`` emits 4 bytes, ``.half`` 2, ``.byte`` 1, honouring the
architecture's endianness.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..adl.analyze import syntax_placeholders

__all__ = ["AsmError", "Image", "Assembler", "assemble"]


class AsmError(Exception):
    """Assembly failure, annotated with the source line number."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = "line %d: %s" % (line, message)
        super().__init__(message)


class Image:
    """An assembled, loadable memory image."""

    def __init__(self, base: int):
        self.base = base
        self.data = bytearray()
        self.symbols: Dict[str, int] = {}
        self.entry = base

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def emit(self, blob: bytes) -> None:
        self.data.extend(blob)

    def patch(self, address: int, blob: bytes) -> None:
        offset = address - self.base
        self.data[offset:offset + len(blob)] = blob

    def __contains__(self, address: int) -> bool:
        return self.base <= address < self.end


_TOKEN_RE = re.compile(r"""
    (?P<char>'(?:\\.|[^'\\])')
  | (?P<int>-?0[xX][0-9a-fA-F_]+|-?0[bB][01_]+|-?\d[\d_]*)
  | (?P<name>[A-Za-z_.][A-Za-z0-9_.]*)
  | (?P<punct>[(),+\-\[\]])
""", re.VERBOSE)

_ESCAPES = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39}


def _tokenize_operands(text: str, line_no: int) -> List[Tuple[str, object]]:
    tokens: List[Tuple[str, object]] = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        found = _TOKEN_RE.match(text, pos)
        if not found:
            raise AsmError("cannot tokenize %r" % text[pos:], line_no)
        if found.lastgroup == "int":
            literal = found.group().replace("_", "")
            tokens.append(("int", int(literal, 0)))
        elif found.lastgroup == "char":
            body = found.group()[1:-1]
            if body.startswith("\\"):
                if body[1] not in _ESCAPES:
                    raise AsmError("bad escape %r" % body, line_no)
                tokens.append(("int", _ESCAPES[body[1]]))
            else:
                tokens.append(("int", ord(body)))
        elif found.lastgroup == "name":
            tokens.append(("name", found.group()))
        else:
            tokens.append(("punct", found.group()))
        pos = found.end()
    return tokens


class _SyntaxPattern:
    """A compiled instruction syntax string."""

    def __init__(self, instruction):
        self.instruction = instruction
        text = instruction.syntax
        mnemonic, _, rest = text.partition(" ")
        self.mnemonic = mnemonic
        self.items: List[Tuple[str, object]] = []
        pos = 0
        placeholder_re = re.compile(r"\{([A-Za-z_][A-Za-z_0-9]*)"
                                    r"(?::([A-Za-z_][A-Za-z_0-9]*))?\}")
        while pos < len(rest):
            ch = rest[pos]
            if ch.isspace():
                pos += 1
                continue
            if ch == "{":
                found = placeholder_re.match(rest, pos)
                self.items.append(("ph", (found.group(1), found.group(2))))
                pos = found.end()
            else:
                self.items.append(("lit", ch))
                pos += 1

    def match(self, tokens, register_names, line_no):
        """Try to bind tokens; returns placeholder->token dict or None."""
        bound: Dict[str, Tuple[str, object]] = {}
        pos = 0
        for kind, payload in self.items:
            if pos >= len(tokens):
                return None
            tok_kind, tok_value = tokens[pos]
            if kind == "lit":
                if tok_kind != "punct" or tok_value != payload:
                    return None
                pos += 1
                continue
            name, reg_kind = payload
            if reg_kind is not None:
                if tok_kind != "name" or tok_value not in register_names:
                    return None
                regfile, index = register_names[tok_value]
                if regfile != reg_kind:
                    return None
                bound[name] = ("reg", index)
                pos += 1
                continue
            # Immediate / label placeholder.  Support a leading '-' token
            # produced when '-' is split from the number by the tokenizer.
            if tok_kind == "int":
                bound[name] = ("int", tok_value)
                pos += 1
            elif tok_kind == "name" and tok_value not in register_names:
                bound[name] = ("label", tok_value)
                pos += 1
            else:
                return None
        if pos != len(tokens):
            return None
        return bound


class Assembler:
    """Two-pass assembler for one :class:`~repro.isa.model.ArchModel`."""

    def __init__(self, model):
        self.model = model
        self._patterns: Dict[str, List[_SyntaxPattern]] = {}
        for instr in model.instructions:
            pattern = _SyntaxPattern(instr)
            self._patterns.setdefault(pattern.mnemonic, []).append(pattern)

    # -- public API -------------------------------------------------------------

    def assemble(self, source: str, base: int = 0x1000) -> Image:
        lines = self._split_lines(source)
        symbols, entry_label, min_address = self._first_pass(lines, base)
        # The image starts at the lowest address anything was emitted at
        # (a leading .org below `base` moves the image down).
        image = self._second_pass(lines, base, symbols,
                                  min(base, min_address))
        image.symbols = symbols
        if entry_label is not None:
            if entry_label not in symbols:
                raise AsmError("entry label %r is undefined" % entry_label)
            image.entry = symbols[entry_label]
        return image

    # -- line handling ------------------------------------------------------------

    @staticmethod
    def _split_lines(source: str):
        """Yield (line_no, labels, statement) with comments stripped."""
        result = []
        for line_no, raw in enumerate(source.splitlines(), start=1):
            for comment_char in ("#", ";"):
                # Don't cut inside string literals.
                cut = _find_outside_strings(raw, comment_char)
                if cut >= 0:
                    raw = raw[:cut]
            text = raw.strip()
            if not text:
                continue
            labels = []
            while True:
                found = re.match(r"([A-Za-z_][A-Za-z0-9_]*)\s*:", text)
                if not found:
                    break
                labels.append(found.group(1))
                text = text[found.end():].strip()
            result.append((line_no, labels, text))
        return result

    # -- pass 1: layout ----------------------------------------------------------

    def _first_pass(self, lines, base: int):
        symbols: Dict[str, int] = {}
        entry_label: Optional[str] = None
        counter = base
        min_address = base
        for line_no, labels, text in lines:
            for label in labels:
                if label in symbols:
                    raise AsmError("duplicate label %r" % label, line_no)
                symbols[label] = counter
            if not text:
                continue
            if text.startswith("."):
                counter, entry = self._directive_size(
                    text, counter, line_no, symbols)
                if entry is not None:
                    entry_label = entry
                min_address = min(min_address, counter)
                continue
            min_address = min(min_address, counter)
            counter += self._instruction_for(text, line_no)[0].instruction.length
        return symbols, entry_label, min_address

    def _directive_size(self, text, counter, line_no, symbols):
        name, _, rest = text.partition(" ")
        rest = rest.strip()
        if name == ".org":
            return self._int_value(rest, line_no), None
        if name == ".entry":
            return counter, rest
        if name == ".equ":
            label, _, value_text = rest.partition(",")
            symbols[label.strip()] = self._int_value(value_text.strip(),
                                                     line_no)
            return counter, None
        if name == ".byte":
            return counter + len(_split_args(rest)), None
        if name == ".half":
            return counter + 2 * len(_split_args(rest)), None
        if name == ".word":
            return counter + 4 * len(_split_args(rest)), None
        if name == ".space":
            return counter + self._int_value(rest, line_no), None
        if name == ".align":
            alignment = self._int_value(rest, line_no)
            remainder = counter % alignment
            return counter + (alignment - remainder) % alignment, None
        if name in (".ascii", ".asciiz"):
            value = _parse_string(rest, line_no)
            return counter + len(value) + (1 if name == ".asciiz" else 0), None
        raise AsmError("unknown directive %r" % name, line_no)

    @staticmethod
    def _int_value(text, line_no):
        try:
            return int(text, 0)
        except ValueError:
            raise AsmError("expected an integer, got %r" % text, line_no)

    # -- pass 2: emission -----------------------------------------------------------

    def _second_pass(self, lines, base: int, symbols,
                     image_base: Optional[int] = None) -> Image:
        image = Image(base if image_base is None else image_base)
        counter = base
        for line_no, _labels, text in lines:
            if not text:
                continue
            if text.startswith("."):
                counter = self._emit_directive(image, text, counter, line_no,
                                               symbols)
                continue
            pattern, bound = self._instruction_for(text, line_no)
            blob = self._encode(pattern, bound, counter, symbols, line_no)
            self._emit_at(image, counter, blob)
            counter += len(blob)
        return image

    def _emit_at(self, image: Image, address: int, blob: bytes) -> None:
        offset = address - image.base
        if offset < 0:
            raise AsmError("location counter %#x below base %#x"
                           % (address, image.base))
        if offset > len(image.data):
            image.data.extend(b"\x00" * (offset - len(image.data)))
        image.data[offset:offset + len(blob)] = blob

    def _emit_directive(self, image, text, counter, line_no, symbols):
        name, _, rest = text.partition(" ")
        rest = rest.strip()
        if name == ".org":
            return self._int_value(rest, line_no)
        if name in (".entry", ".equ"):
            return counter
        if name in (".byte", ".half", ".word"):
            size = {".byte": 1, ".half": 2, ".word": 4}[name]
            order = "little" if self.model.endian == "little" else "big"
            blob = bytearray()
            for arg in _split_args(rest):
                value = self._value_or_label(arg.strip(), symbols, line_no)
                blob.extend((value & ((1 << (8 * size)) - 1)).to_bytes(
                    size, order))
            self._emit_at(image, counter, bytes(blob))
            return counter + len(blob)
        if name == ".space":
            amount = self._int_value(rest, line_no)
            self._emit_at(image, counter, b"\x00" * amount)
            return counter + amount
        if name == ".align":
            alignment = self._int_value(rest, line_no)
            pad = (alignment - counter % alignment) % alignment
            self._emit_at(image, counter, b"\x00" * pad)
            return counter + pad
        if name in (".ascii", ".asciiz"):
            value = _parse_string(rest, line_no).encode("latin-1")
            if name == ".asciiz":
                value += b"\x00"
            self._emit_at(image, counter, value)
            return counter + len(value)
        raise AsmError("unknown directive %r" % name, line_no)

    def _value_or_label(self, text, symbols, line_no):
        if re.match(r"^[A-Za-z_]", text) and text in symbols:
            return symbols[text]
        if text.startswith("'"):
            tokens = _tokenize_operands(text, line_no)
            return tokens[0][1]
        return self._int_value(text, line_no)

    # -- instruction selection and encoding ----------------------------------------

    def _instruction_for(self, text, line_no):
        mnemonic, _, rest = text.partition(" ")
        candidates = self._patterns.get(mnemonic)
        if not candidates:
            raise AsmError("unknown mnemonic %r" % mnemonic, line_no)
        tokens = _tokenize_operands(rest, line_no)
        tokens = _merge_negative_ints(tokens)
        for pattern in candidates:
            bound = pattern.match(tokens, self.model.register_names, line_no)
            if bound is not None:
                return pattern, bound
        raise AsmError("no operand form of %r matches %r"
                       % (mnemonic, text), line_no)

    def _encode(self, pattern: _SyntaxPattern, bound, address, symbols,
                line_no) -> bytes:
        instr = pattern.instruction
        fields: Dict[str, int] = {}
        for name, (kind, value) in bound.items():
            if kind == "reg":
                field = instr.encoding.field(name)
                regfile_count = 1 << field.width
                if value >= regfile_count:
                    raise AsmError(
                        "register index %d does not fit field %r"
                        % (value, name), line_no)
                fields[name] = value
                continue
            if kind == "label":
                if value not in symbols:
                    raise AsmError("undefined label %r" % value, line_no)
                resolved = symbols[value]
            else:
                resolved = value
            operand = instr.operands.get(name)
            if operand is not None:
                encoded = resolved
                if operand.pcrel:
                    # Labels and numeric operands are both absolute branch
                    # targets (matching disassembler output), relocated
                    # against the instruction address here.  The delta is
                    # taken modulo the address space, then re-signed, so
                    # targets that wrap around (as the disassembler
                    # renders them) relocate consistently.
                    addr_mask = (1 << self.model.pc_width) - 1
                    encoded = (resolved - (address + operand.pcrel_base)) \
                        & addr_mask
                    if operand.signed and encoded > addr_mask >> 1:
                        encoded -= addr_mask + 1
                self._check_operand_range(operand, encoded, line_no)
                instr.encode_operand(operand, encoded, fields)
            else:
                field = instr.encoding.field(name)
                self._check_field_range(field, resolved, line_no)
                fields[name] = resolved & ((1 << field.width) - 1)
        word = instr.assemble_word(fields)
        # Round-trip check: decode the word back and verify operand values.
        self._verify_roundtrip(instr, word, bound, address, symbols, line_no)
        return self.model.bytes_from_word(word, instr.length)

    @staticmethod
    def _check_operand_range(operand, value, line_no):
        width = operand.width
        if operand.signed:
            lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        else:
            lo, hi = 0, (1 << width) - 1
        if not (lo <= value <= hi):
            raise AsmError(
                "value %d out of range [%d, %d] for operand %r"
                % (value, lo, hi, operand.name), line_no)
        zero_bits = 0
        for part in reversed(operand.parts):
            if part.field_name is None:
                zero_bits += part.zero_bits
            else:
                break
        if zero_bits and value & ((1 << zero_bits) - 1):
            raise AsmError(
                "value %d for operand %r must be a multiple of %d"
                % (value, operand.name, 1 << zero_bits), line_no)

    @staticmethod
    def _check_field_range(field, value, line_no):
        width = field.width
        if not (-(1 << (width - 1)) <= value < (1 << width)):
            raise AsmError("immediate %d does not fit %d-bit field %r"
                           % (value, width, field.name), line_no)

    def _verify_roundtrip(self, instr, word, bound, address, symbols,
                          line_no):
        decoded_fields = instr.bind(word)
        for name, (kind, value) in bound.items():
            if kind == "reg":
                if decoded_fields[name] != value:
                    raise AsmError("encoder round-trip failed on %r" % name,
                                   line_no)


def _find_outside_strings(text: str, needle: str) -> int:
    in_string = False
    for index, ch in enumerate(text):
        if ch == '"' and (index == 0 or text[index - 1] != "\\"):
            in_string = not in_string
        elif ch == needle and not in_string:
            return index
    return -1


def _split_args(text: str) -> List[str]:
    return [part for part in (p.strip() for p in text.split(",")) if part]


def _parse_string(text: str, line_no: int) -> str:
    text = text.strip()
    if len(text) < 2 or text[0] != '"' or text[-1] != '"':
        raise AsmError("expected a quoted string", line_no)
    body = text[1:-1]
    out = []
    index = 0
    while index < len(body):
        ch = body[index]
        if ch == "\\" and index + 1 < len(body):
            out.append({"n": "\n", "t": "\t", "0": "\0",
                        '"': '"', "\\": "\\"}.get(body[index + 1],
                                                  body[index + 1]))
            index += 2
        else:
            out.append(ch)
            index += 1
    return "".join(out)


def _merge_negative_ints(tokens):
    """Join a '-' punct directly followed by an int into a negative int.

    Needed for operand positions like ``addi x1, x0, -5`` where the grammar
    has no binary minus to disambiguate against.
    """
    merged = []
    index = 0
    while index < len(tokens):
        kind, value = tokens[index]
        if (kind == "punct" and value == "-" and index + 1 < len(tokens)
                and tokens[index + 1][0] == "int"):
            merged.append(("int", -tokens[index + 1][1]))
            index += 2
        else:
            merged.append(tokens[index])
            index += 1
    return merged


def assemble(model, source: str, base: int = 0x1000) -> Image:
    """Convenience one-shot assembly."""
    return Assembler(model).assemble(source, base)
