"""Generated ISA models.

:class:`ArchModel` is what the ADL pipeline produces: register layout,
decodable/encodable instruction definitions with their semantics already
lowered to IR, a generated decoder, assembler and disassembler.  Everything
downstream (simulator, symbolic executor, workload builder) works against
this class and is therefore ISA-independent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import adl
from ..adl import ast as A
from ..adl.errors import AdlSemanticError
from ..adl.translate import (RuleProvenance, rule_provenance,
                             translate_instruction)
from ..ir import nodes as N

__all__ = ["ArchModel", "Instruction", "RegFileInfo", "build"]


class RegFileInfo:
    """Register-file layout extracted from the spec."""

    def __init__(self, decl: A.RegFileDecl):
        self.name = decl.name
        self.count = decl.count
        self.width = decl.width
        self.prefix = decl.prefix
        self.zero_index = decl.zero_index

    def register_name(self, index: int) -> str:
        return "%s%d" % (self.prefix, index)


class Instruction:
    """One instruction definition with decode pattern and IR semantics."""

    def __init__(self, spec: A.ArchSpec, decl: A.InstrDecl):
        self.name = decl.name
        self.decl = decl
        self.encoding = spec.encodings[decl.encoding]
        self.pattern = decl.pattern
        self.length = self.pattern.length          # bytes
        self.syntax = decl.syntax
        self.operands: Dict[str, A.OperandDecl] = {
            op.name: op for op in decl.operands}
        self.semantics: Tuple[N.Stmt, ...] = tuple(
            translate_instruction(spec, decl))
        self.mnemonic = decl.syntax.split()[0]
        # Spec provenance: which ADL source lines produced this rule's IR
        # (recorded at translation time; consumed by repro.obs.speccov).
        self.provenance: RuleProvenance = rule_provenance(spec, decl)
        # Register-typed fields and their valid index bound: a decoded
        # word whose register field exceeds the regfile is not a valid
        # instruction (possible when the field is wider than log2(count),
        # e.g. vlx's 4-bit fields over 8 registers).
        from ..adl.analyze import syntax_placeholders
        self.reg_field_limits: Dict[str, int] = {
            name: spec.regfiles[kind].count
            for name, kind in syntax_placeholders(decl.syntax)
            if kind is not None}

    # -- field and operand extraction ---------------------------------------

    def extract_fields(self, word: int) -> Dict[str, int]:
        """All encoding-field values from a decoded instruction word."""
        fields = {}
        for field in self.encoding.fields:
            fields[field.name] = (word >> field.lsb) & ((1 << field.width) - 1)
        return fields

    def operand_value(self, operand: A.OperandDecl,
                      fields: Dict[str, int]) -> int:
        """Concatenate an operand's parts (MSB first) from field values."""
        value = 0
        for part in operand.parts:
            if part.field_name is None:
                value <<= part.zero_bits
            else:
                field = self.encoding.field(part.field_name)
                value = (value << field.width) | fields[part.field_name]
        return value

    def bind(self, word: int) -> Dict[str, int]:
        """Fields plus derived operands: the environment IR executes under."""
        fields = self.extract_fields(word)
        for operand in self.operands.values():
            fields[operand.name] = self.operand_value(operand, fields)
        return fields

    def encode_operand(self, operand: A.OperandDecl, value: int,
                       fields: Dict[str, int]) -> None:
        """Split an operand value back into its encoding fields.

        ``value`` is the already-relocated target value; range and zero-pad
        divisibility were checked by the assembler.
        """
        for part in reversed(operand.parts):
            if part.field_name is None:
                value >>= part.zero_bits
            else:
                field = self.encoding.field(part.field_name)
                fields[part.field_name] = value & ((1 << field.width) - 1)
                value >>= field.width

    def assemble_word(self, fields: Dict[str, int]) -> int:
        """Build the instruction word from complete field values."""
        word = self.pattern.match
        for field in self.encoding.fields:
            if field.name in self.decl.match:
                continue
            value = fields.get(field.name, 0)
            word |= (value & ((1 << field.width) - 1)) << field.lsb
        return word

    def __repr__(self):
        return "<Instruction %s (%d bytes)>" % (self.name, self.length)


class ArchModel:
    """A complete generated ISA model (the unit of retargeting)."""

    def __init__(self, spec: A.ArchSpec):
        self.spec = spec
        self.name = spec.name
        self.wordsize = spec.wordsize
        self.endian = spec.endian
        self.pc_width = spec.pc.width
        self.regfiles: Dict[str, RegFileInfo] = {
            name: RegFileInfo(decl) for name, decl in spec.regfiles.items()}
        self.registers: Dict[str, int] = {
            name: decl.width for name, decl in spec.registers.items()}
        self.instructions: List[Instruction] = [
            Instruction(spec, decl) for decl in spec.instructions]
        self.by_name: Dict[str, Instruction] = {
            instr.name: instr for instr in self.instructions}
        # Semantic-rule table: instruction name -> spec provenance.  This
        # is the join key for spec-coverage attribution (every ``step``
        # event's ``instr`` payload resolves here).
        self.rules: Dict[str, RuleProvenance] = {
            instr.name: instr.provenance for instr in self.instructions}
        # Filesystem path of the ADL source, when known (set by build()
        # for built-in specs); enables annotated spec-coverage reports.
        self.source_path: Optional[str] = None
        # Register-name lookup for the assembler: prefix+index and aliases.
        self.register_names: Dict[str, Tuple[str, int]] = {}
        for regfile in self.regfiles.values():
            for index in range(regfile.count):
                self.register_names[regfile.register_name(index)] = (
                    regfile.name, index)
        for alias in spec.aliases:
            self.register_names[alias.alias] = (alias.regfile, alias.index)
        from .decoder import Decoder  # local import to avoid a cycle
        self.decoder = Decoder(self)

    # -- byte/word conversion -------------------------------------------------

    def word_from_bytes(self, data: bytes) -> int:
        order = "little" if self.endian == "little" else "big"
        return int.from_bytes(data, order)

    def bytes_from_word(self, word: int, length: int) -> bytes:
        order = "little" if self.endian == "little" else "big"
        return word.to_bytes(length, order)

    @property
    def instruction_lengths(self) -> List[int]:
        return sorted({instr.length for instr in self.instructions})

    def mnemonic_candidates(self, mnemonic: str) -> List[Instruction]:
        return [instr for instr in self.instructions
                if instr.mnemonic == mnemonic]

    def __repr__(self):
        return "<ArchModel %s: %d instructions>" % (
            self.name, len(self.instructions))


_MODEL_CACHE: Dict[str, ArchModel] = {}


def build(name: str, fresh: bool = False) -> ArchModel:
    """Build (and cache) the ArchModel for a built-in spec name."""
    if not fresh and name in _MODEL_CACHE:
        return _MODEL_CACHE[name]
    spec = adl.load_builtin_spec(name)
    model = ArchModel(spec)
    model.source_path = adl.builtin_spec_path(name)
    if not fresh:
        _MODEL_CACHE[name] = model
    return model
