"""Static control-flow-graph recovery from a loaded image.

Recursive-descent disassembly from the entry point: basic blocks, edges
and their kinds, derived *from the generated IR* — so CFG recovery is as
retargetable as the rest of the toolchain.  Successor extraction walks an
instruction's IR for ``SetPc`` statements whose targets are static
(constants or ``pc + constant``); indirect targets produce ``indirect``
edges with unknown destinations.

Used by the coverage reporter (:mod:`repro.core.coverage`) and on its own
for program inspection.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir import nodes as N
from .decoder import DecodeError

__all__ = ["BasicBlock", "Cfg", "recover_cfg", "static_successors"]

# Edge kinds.
FALL_THROUGH = "fall-through"
BRANCH = "branch"
JUMP = "jump"
CALL_RETURN = "call-return"   # not distinguished; kept for extension
INDIRECT = "indirect"
HALT = "halt"
TRAP = "trap"


class BasicBlock:
    """A maximal straight-line run of instructions."""

    def __init__(self, start: int):
        self.start = start
        self.addresses: List[int] = []
        self.successors: List[Tuple[Optional[int], str]] = []

    @property
    def end(self) -> int:
        """Address just past the last instruction (0 width if empty)."""
        return self.addresses[-1] if self.addresses else self.start

    def __repr__(self):
        return "<BasicBlock %#x (%d instrs)>" % (self.start,
                                                 len(self.addresses))


class Cfg:
    """The recovered control-flow graph."""

    def __init__(self, entry: int):
        self.entry = entry
        self.blocks: Dict[int, BasicBlock] = {}
        self.instruction_addresses: Set[int] = set()
        self.has_indirect = False

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    @property
    def edge_count(self) -> int:
        return sum(len(block.successors) for block in self.blocks.values())

    def block_of(self, address: int) -> Optional[BasicBlock]:
        """The block containing an instruction address, if any."""
        for block in self.blocks.values():
            if address in block.addresses:
                return block
        return None

    def __repr__(self):
        return "<Cfg entry=%#x blocks=%d edges=%d>" % (
            self.entry, self.block_count, self.edge_count)


def _static_expr_value(expr: N.Expr, fields: Dict[str, int],
                       pc: int, pc_width: int) -> Optional[int]:
    """Evaluate an IR expression that depends only on pc and fields."""
    mask = (1 << pc_width) - 1
    if isinstance(expr, N.Const):
        return expr.value
    if isinstance(expr, N.Pc):
        return pc & ((1 << expr.width) - 1)
    if isinstance(expr, N.Field):
        return fields[expr.name] & ((1 << expr.width) - 1)
    if isinstance(expr, N.Ext):
        inner = _static_expr_value(expr.operand, fields, pc, pc_width)
        if inner is None:
            return None
        if expr.kind == "zext":
            return inner
        sign = 1 << (expr.operand.width - 1)
        value = inner - ((inner & sign) << 1)
        return value & ((1 << expr.width) - 1)
    if isinstance(expr, N.ExtractBits):
        inner = _static_expr_value(expr.operand, fields, pc, pc_width)
        if inner is None:
            return None
        return (inner >> expr.lo) & ((1 << (expr.hi - expr.lo + 1)) - 1)
    if isinstance(expr, N.BinOp) and expr.op in ("add", "sub", "or", "and",
                                                 "xor", "shl"):
        left = _static_expr_value(expr.left, fields, pc, pc_width)
        right = _static_expr_value(expr.right, fields, pc, pc_width)
        if left is None or right is None:
            return None
        width_mask = (1 << expr.width) - 1
        if expr.op == "add":
            return (left + right) & width_mask
        if expr.op == "sub":
            return (left - right) & width_mask
        if expr.op == "or":
            return left | right
        if expr.op == "and":
            return left & right
        if expr.op == "xor":
            return left ^ right
        return (left << right) & width_mask if right < expr.width else 0
    return None   # depends on runtime state


def static_successors(model, decoded) -> List[Tuple[Optional[int], str]]:
    """Possible control successors of one decoded instruction.

    Returns ``(address, kind)`` pairs; ``address`` is ``None`` for
    indirect targets.  Derived by walking the instruction's IR:
    ``SetPc`` statements give explicit targets, ``Halt``/``Trap`` end
    control, everything else falls through.
    """
    fields = decoded.fields
    pc = decoded.address
    successors: List[Tuple[Optional[int], str]] = []
    saw_unconditional_setpc = False
    saw_halt = False

    def walk(stmts, conditional: bool) -> None:
        nonlocal saw_unconditional_setpc, saw_halt
        for stmt in stmts:
            if isinstance(stmt, N.SetPc):
                target = _static_expr_value(stmt.value, fields, pc,
                                            model.pc_width)
                kind = BRANCH if conditional else JUMP
                if target is None:
                    successors.append((None, INDIRECT))
                else:
                    successors.append((target & ((1 << model.pc_width) - 1),
                                       kind))
                if not conditional:
                    saw_unconditional_setpc = True
            elif isinstance(stmt, N.Halt):
                if not conditional:
                    saw_halt = True
                successors.append((None, HALT))
            elif isinstance(stmt, N.Trap):
                if not conditional:
                    saw_halt = True
                successors.append((None, TRAP))
            elif isinstance(stmt, N.IfStmt):
                walk(stmt.then_body, True)
                walk(stmt.else_body, True)

    walk(decoded.instruction.semantics, False)
    if not saw_unconditional_setpc and not saw_halt:
        fall = (pc + decoded.length) & ((1 << model.pc_width) - 1)
        successors.append((fall, FALL_THROUGH))
    return successors


def recover_cfg(model, image, entry: Optional[int] = None,
                max_instructions: int = 100000) -> Cfg:
    """Recursive-descent CFG recovery over an assembled image."""
    entry = image.entry if entry is None else entry
    cfg = Cfg(entry)
    data = bytes(image.data)
    base = image.base

    def window(address: int) -> bytes:
        offset = address - base
        if offset < 0 or offset >= len(data):
            return b""
        return data[offset:offset + model.decoder.max_length]

    # Pass 1: discover instruction addresses and raw successor sets.
    successor_map: Dict[int, List[Tuple[Optional[int], str]]] = {}
    worklist = [entry]
    while worklist and len(successor_map) < max_instructions:
        address = worklist.pop()
        if address in successor_map:
            continue
        try:
            decoded = model.decoder.decode_bytes(window(address), address)
        except DecodeError:
            continue
        succs = static_successors(model, decoded)
        successor_map[address] = succs
        cfg.instruction_addresses.add(address)
        for target, kind in succs:
            if kind == INDIRECT:
                cfg.has_indirect = True
            if target is not None and target not in successor_map:
                worklist.append(target)

    # Pass 2: carve basic blocks. Leaders: entry, targets of any control
    # transfer, and instructions following a control transfer.
    leaders = {entry}
    for address, succs in successor_map.items():
        kinds = {kind for _t, kind in succs}
        for target, kind in succs:
            if kind in (BRANCH, JUMP) and target is not None:
                leaders.add(target)
        if kinds - {FALL_THROUGH}:
            for target, kind in succs:
                if kind == FALL_THROUGH and target is not None:
                    leaders.add(target)

    # Walk addresses in order, splitting at leaders and control transfers.
    ordered = sorted(successor_map)
    position = {address: i for i, address in enumerate(ordered)}
    current: Optional[BasicBlock] = None
    for index, address in enumerate(ordered):
        if current is None or address in leaders:
            if current is not None:
                # A leader interrupts a straight line: synthesize the edge.
                current.successors = [(address, FALL_THROUGH)]
            current = BasicBlock(address)
            cfg.blocks[address] = current
        current.addresses.append(address)
        succs = successor_map[address]
        fall_target = None
        for target, kind in succs:
            if kind == FALL_THROUGH:
                fall_target = target
        transfers = any(kind != FALL_THROUGH for _t, kind in succs)
        next_in_order = ordered[index + 1] if index + 1 < len(ordered) \
            else None
        continues = (not transfers and fall_target is not None
                     and fall_target == next_in_order
                     and fall_target not in leaders)
        if not continues:
            current.successors = succs
            current = None
    return cfg
