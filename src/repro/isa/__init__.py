"""Generated ISA models: decoder, assembler, disassembler, simulator."""

from .assembler import AsmError, Assembler, Image, assemble  # noqa: F401
from .cfg import BasicBlock, Cfg, recover_cfg, static_successors  # noqa: F401
from .decoder import Decoded, DecodeError, Decoder  # noqa: F401
from .disasm import format_instruction  # noqa: F401
from .model import ArchModel, Instruction, RegFileInfo, build  # noqa: F401
from .simulator import (  # noqa: F401
    MachineState,
    SimError,
    Simulator,
    run_image,
)
