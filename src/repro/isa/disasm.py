"""Generated disassembler: formats decoded instructions via their syntax."""

from __future__ import annotations

import re

from .decoder import Decoded

__all__ = ["format_instruction"]

_PLACEHOLDER_RE = re.compile(r"\{([A-Za-z_][A-Za-z_0-9]*)"
                             r"(?::([A-Za-z_][A-Za-z_0-9]*))?\}")


def _to_signed(value: int, width: int) -> int:
    sign = 1 << (width - 1)
    return (value & ((1 << width) - 1)) - ((value & sign) << 1)


def format_instruction(model, decoded: Decoded) -> str:
    """Render a decoded instruction as assembly text."""
    instr = decoded.instruction
    fields = decoded.fields

    def substitute(found):
        name, reg_kind = found.group(1), found.group(2)
        value = fields[name]
        if reg_kind is not None:
            return model.regfiles[reg_kind].register_name(value)
        operand = instr.operands.get(name)
        if operand is not None:
            if operand.pcrel:
                target = (decoded.address + operand.pcrel_base
                          + _to_signed(value, operand.width))
                return "%#x" % (target & ((1 << model.pc_width) - 1))
            if operand.signed:
                return str(_to_signed(value, operand.width))
            return str(value)
        return str(value)

    return _PLACEHOLDER_RE.sub(substitute, instr.syntax)
