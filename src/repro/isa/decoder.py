"""Generated instruction decoder.

Built from the ADL decode patterns: instructions are grouped by byte
length, and within each group bucketed by their value under the group's
*common fixed mask* (the bits every instruction in the group constrains —
in practice the opcode bits).  Decoding reads candidate lengths shortest
first; the analyzer's ambiguity check guarantees at most one instruction can
match a given byte sequence, so the first hit is the answer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["Decoder", "Decoded", "DecodeError"]


class DecodeError(Exception):
    """No instruction matches the bytes at the given address."""

    def __init__(self, address: int, message: str = "invalid instruction"):
        self.address = address
        super().__init__("%s at %#x" % (message, address))


class Decoded:
    """One decoded instruction instance."""

    __slots__ = ("instruction", "address", "word", "fields", "length")

    def __init__(self, instruction, address: int, word: int,
                 fields: Dict[str, int]):
        self.instruction = instruction
        self.address = address
        self.word = word
        self.fields = fields
        self.length = instruction.length

    @property
    def rule(self):
        """Spec provenance of the semantic rule that decoded this
        instruction (:class:`~repro.adl.translate.RuleProvenance`)."""
        return self.instruction.provenance

    def __repr__(self):
        return "<Decoded %s @ %#x>" % (self.instruction.name, self.address)


class _LengthGroup:
    def __init__(self, length: int, instructions):
        self.length = length
        common = ~0
        for instr in instructions:
            common &= instr.pattern.mask
        self.common_mask = common & ((1 << (8 * length)) - 1)
        self.buckets: Dict[int, List] = {}
        for instr in instructions:
            key = instr.pattern.match & self.common_mask
            self.buckets.setdefault(key, []).append(instr)

    def lookup(self, word: int):
        for instr in self.buckets.get(word & self.common_mask, ()):
            if instr.pattern.matches(word):
                return instr
        return None


class Decoder:
    """Decodes instructions of an :class:`~repro.isa.model.ArchModel`."""

    def __init__(self, model):
        self._model = model
        groups: Dict[int, List] = {}
        for instr in model.instructions:
            groups.setdefault(instr.length, []).append(instr)
        self._groups: List[_LengthGroup] = [
            _LengthGroup(length, groups[length])
            for length in sorted(groups)]
        # A per-address decode cache: instruction memory rarely changes.
        self._cache: Dict[Tuple[int, bytes], Decoded] = {}
        # Observability (attached by the engine; see repro.obs).  The
        # engine reads ``last_cache_hit`` after each decode to emit the
        # ``decode_cache`` event with full state context.
        from ..obs.metrics import NULL_COUNTER
        self._hit_counter = NULL_COUNTER
        self._miss_counter = NULL_COUNTER
        self.last_cache_hit = False

    def attach_obs(self, obs) -> None:
        """Count decode-cache hits/misses in ``obs.metrics``."""
        self._hit_counter = obs.metrics.counter("decode.cache_hit")
        self._miss_counter = obs.metrics.counter("decode.cache_miss")

    def decode_bytes(self, data: bytes, address: int) -> Decoded:
        """Decode the instruction starting at ``data[0]``.

        ``data`` must supply at least as many bytes as the longest
        instruction, or as many as remain in the mapped region.
        """
        for group in self._groups:
            if len(data) < group.length:
                continue
            window = bytes(data[:group.length])
            cached = self._cache.get((address, window))
            if cached is not None:
                self.last_cache_hit = True
                self._hit_counter.inc()
                return cached
            word = self._model.word_from_bytes(window)
            instr = group.lookup(word)
            if instr is not None:
                fields = instr.bind(word)
                for name, limit in instr.reg_field_limits.items():
                    if fields[name] >= limit:
                        raise DecodeError(
                            address, "register index %d out of range in %s"
                            % (fields[name], instr.name))
                decoded = Decoded(instr, address, word, fields)
                self._cache[(address, window)] = decoded
                self.last_cache_hit = False
                self._miss_counter.inc()
                return decoded
        self.last_cache_hit = False
        raise DecodeError(address)

    @property
    def max_length(self) -> int:
        return self._groups[-1].length if self._groups else 0

    def cache_clear(self) -> None:
        self._cache.clear()
