"""Solver query cache + incremental check reuse: speedup measurement.

Table 3 shows the solver dominating exploration runtime; this benchmark
quantifies what the caching layer (ISSUE 3) buys back.  Two workload
shapes, each run with the cache on and off (``use_solver_cache`` — the
``--no-solver-cache`` CLI baseline):

* **single** — one exploration per engine.  Within one run the cache is
  fed by path-condition prefix sharing: per-branch feasibility checks
  reuse the parent frame (frame reuse), extended path conditions reuse
  cached models (model reuse) and unsat cores (subsumption).
* **repeated** — the same engine explores twice (the repeated-query
  workload: re-running analysis after a checker or strategy change).
  The second pass replays the first pass's queries nearly verbatim, so
  the exact-hit layer answers most of them.

The CI guard (``test_repeated_workload_speedup_guard`` /
``--check`` when run as a script) requires a **>= 20% wall-clock
improvement** on the repeated-branch maze+checksum workload, cache on
vs off.  Run as a script it prints the full table and writes the
``.telemetry.json`` sidecar.
"""

import sys

import pytest

from repro.bench import Sample, benchmark
from repro.core import Engine, EngineConfig
from repro.programs import build_kernel
from repro.smt import Solver

from _util import (best_of_attempts, print_table, report_guard, timed,
                   write_telemetry_sidecar)

# The repeated-branch workloads named by the acceptance criterion.
GUARD_WORKLOADS = [
    ("maze", {"depth": 9}),
    ("checksum", {"length": 5}),
]

# Extra context rows for the printed table.
EXTRA_WORKLOADS = [
    ("diamonds", {}),
    ("password", {}),
]

#: Required cached-speedup on the repeated-query workload (>= 20%).
GUARD_SPEEDUP = 1.20


def _engine(kernel, params, use_cache):
    model, image = build_kernel(kernel, "rv32", **params)
    config = EngineConfig(use_solver_cache=use_cache)
    engine = Engine(model, solver=Solver(use_query_cache=use_cache),
                    config=config)
    engine.load_image(image)
    return engine


def run_workload(kernel, params, use_cache, explorations=1):
    """Explore ``explorations`` times on one engine; returns
    (wall_seconds, last_result, engine)."""
    engine = _engine(kernel, params, use_cache)

    def run():
        result = None
        for _ in range(explorations):
            result = engine.explore()
        return result

    result, wall = timed(run)
    return wall, result, engine


def measure(workloads, explorations):
    """Rows of (kernel, on_wall, off_wall, on_result, on_engine)."""
    rows = []
    for kernel, params in workloads:
        on_wall, on_result, on_engine = run_workload(
            kernel, params, True, explorations)
        off_wall, off_result, _ = run_workload(
            kernel, params, False, explorations)
        # Soundness spot check, mirroring the differential harness.
        assert len(on_result.paths) == len(off_result.paths), kernel
        assert len(on_result.defects) == len(off_result.defects), kernel
        rows.append((kernel, on_wall, off_wall, on_result, on_engine))
    return rows


def _cache_cells(engine):
    stats = engine.solver.stats
    return ("%d/%d" % (stats.cache_hit_sat + stats.cache_hit_unsat,
                       stats.cache_misses),
            stats.cache_model_reuse, stats.cache_subsumed_unsat,
            stats.frame_reuse)


def table_rows():
    rows = []
    for mode, explorations in (("single", 1), ("repeated", 2)):
        for kernel, on_wall, off_wall, result, engine in measure(
                GUARD_WORKLOADS + EXTRA_WORKLOADS, explorations):
            hits, model_reuse, subsumed, frame = _cache_cells(engine)
            rows.append([
                kernel, mode, len(result.paths),
                "%.3fs" % on_wall, "%.3fs" % off_wall,
                "%.2fx" % (off_wall / on_wall),
                hits, model_reuse, subsumed, frame,
            ])
    return rows


def _guard_totals(explorations=2):
    """(rows, cache_on_total, cache_off_total) on the guard workload."""
    rows = measure(GUARD_WORKLOADS, explorations)
    on_total = sum(row[1] for row in rows)
    off_total = sum(row[2] for row in rows)
    return rows, on_total, off_total


def guard_speedup(explorations=2):
    """Aggregate cached speedup on the repeated-query guard workload."""
    _rows, on_total, off_total = _guard_totals(explorations)
    return off_total / on_total


@benchmark("solver_cache.repeated_speedup",
           title="solver cache: repeated-query speedup (on vs off)",
           suite="quick", isas=("rv32",), unit="x", direction="higher",
           expect_min=GUARD_SPEEDUP, reps=3, warmup=0,
           workload="maze(depth 9) + checksum(len 5), explored twice "
                    "per engine, cache on vs --no-solver-cache")
def _observatory_sample():
    rows, on_total, off_total = _guard_totals()
    solver_s = sum(row[3].solver_stats.get("solve_time", 0.0)
                   for row in rows)
    return Sample(off_total / on_total, wall_s=on_total + off_total,
                  solver_time_s=solver_s)


def print_report(check=False):
    print_table(
        "Solver query cache: cached vs --no-solver-cache (rv32)",
        ["kernel", "workload", "paths", "cache on", "cache off",
         "speedup", "hit/miss", "model reuse", "subsumed", "frame reuse"],
        table_rows())
    rows, on_total, off_total = _guard_totals()
    speedup = off_total / on_total
    runs = [{"label": "%s repeated" % kernel,
             "cache_on_s": round(on_wall, 4),
             "cache_off_s": round(off_wall, 4),
             "telemetry": result.telemetry}
            for kernel, on_wall, off_wall, result, _engine in rows]
    sidecar = write_telemetry_sidecar(__file__, runs,
                                      guard_speedup=round(speedup, 3),
                                      guard_required=GUARD_SPEEDUP)
    print("telemetry sidecar: %s" % sidecar)
    return report_guard("repeated-query guard workload speedup",
                        speedup, GUARD_SPEEDUP, check=check)


# -- pytest entry points ------------------------------------------------------

def test_repeated_workload_speedup_guard():
    """CI guard: >= 20% cached speedup on the repeated-query workload.

    Three attempts before failing: wall-clock guards on shared CI
    runners are noisy, and the cache's advantage grows with each
    attempt's retry cost on the uncached side anyway.
    """
    best = best_of_attempts(guard_speedup, GUARD_SPEEDUP)
    assert best >= GUARD_SPEEDUP, (
        "cached speedup %.2fx below the %.2fx guard" % (best, GUARD_SPEEDUP))


def test_cache_layers_fire_on_guard_workload():
    """The guard workload must exercise every cache layer (no vacuous
    wins): frame reuse and exact hits on maze, and nothing may change
    the explored path count."""
    _, result, engine = run_workload("maze", {"depth": 9}, True,
                                     explorations=2)
    stats = engine.solver.stats
    assert stats.frame_reuse > 0
    assert stats.cache_hit_sat + stats.cache_hit_unsat > 0
    assert stats.cache_model_reuse > 0
    assert result.solver_cache_line() is not None


@pytest.mark.parametrize("use_cache", [True, False],
                         ids=["cache-on", "cache-off"])
def test_bench_maze(benchmark, use_cache):
    def run():
        _, result, _ = run_workload("maze", {"depth": 8}, use_cache)
        return result

    result = benchmark(run)
    assert len(result.paths) > 0


if __name__ == "__main__":
    sys.exit(print_report(check="--check" in sys.argv[1:]))
