"""Table 3 — Engine throughput per ISA.

Instructions/second and paths/second of the generated engine on the
kernel workloads, with the solver's share of wall time.  The paper-shape
expectation: throughput within the same order of magnitude across ISAs
(the engine is shared; per-ISA cost is decode + IR size).
"""

import pytest

from repro.bench import Sample, benchmark
from repro.core import Engine, EngineConfig
from repro.obs import Obs
from repro.programs import build_kernel

from _util import ALL_TARGETS, print_table, timed, write_telemetry_sidecar

WORKLOADS = [
    ("maze", {"depth": 7, "solution": 0b1011001}),
    ("checksum", {"length": 4, "magic": 0x2d2d}),
    ("bsearch", {}),
]


def run_workload(target, kernel, params, profile=False):
    model, image = build_kernel(kernel, target, **params)
    config = EngineConfig(collect_path_inputs=False,
                          obs=Obs(metrics=True, profile=profile))
    engine = Engine(model, config=config)
    engine.load_image(image)
    result, wall = timed(engine.explore)
    return result, wall


@benchmark("table3.rv32_maze_throughput",
           title="engine throughput: rv32 maze instructions/sec",
           suite="quick", isas=("rv32",), unit="instr/s",
           direction="higher", reps=3, warmup=1,
           workload="maze(depth 7) full exploration on the generated "
                    "rv32 engine")
def _observatory_sample():
    result, wall = run_workload("rv32", "maze",
                                {"depth": 7, "solution": 0b1011001})
    return Sample.from_result(result.instructions_executed / wall,
                              result, wall)


def table_rows(profile=False, telemetry_runs=None):
    rows = []
    for target in ALL_TARGETS:
        for kernel, params in WORKLOADS:
            result, wall = run_workload(target, kernel, params, profile)
            solver_share = (result.solver_stats.get("solve_time", 0.0)
                            / wall if wall else 0.0)
            rows.append([
                target, kernel,
                result.instructions_executed,
                len(result.paths) + len(result.defects),
                "%.0f" % (result.instructions_executed / wall),
                "%.1f" % ((len(result.paths) + len(result.defects)) / wall),
                "%.0f%%" % (100 * solver_share),
                "%.3fs" % wall,
            ])
            if telemetry_runs is not None:
                telemetry_runs.append({
                    "label": "%s/%s" % (target, kernel),
                    "isa": target,
                    "kernel": kernel,
                    "telemetry": result.telemetry,
                })
    return rows


def print_report(write_sidecar=False):
    # Sidecar runs enable the phase profiler so the JSON carries a
    # decode/eval/solver/memory breakdown; the plain report keeps the
    # engine default (counters only) so the table is the honest number.
    runs = [] if write_sidecar else None
    rows = table_rows(profile=write_sidecar, telemetry_runs=runs)
    print_table(
        "Table 3: generated-engine throughput per ISA",
        ["ISA", "kernel", "instrs", "paths", "instr/s", "paths/s",
         "solver share", "time"],
        rows)
    if write_sidecar:
        path = write_telemetry_sidecar(__file__, runs,
                                       workloads=[k for k, _ in WORKLOADS])
        print("\ntelemetry sidecar: %s" % path)


@pytest.mark.parametrize("target", ALL_TARGETS)
def test_maze_throughput(benchmark, target):
    model, image = build_kernel("maze", target, depth=6)

    def explore():
        engine = Engine(model,
                        config=EngineConfig(collect_path_inputs=False))
        engine.load_image(image)
        return engine.explore()

    result = benchmark(explore)
    assert result.instructions_executed > 0


def test_print_table3():
    print_report()


if __name__ == "__main__":
    print_report(write_sidecar=True)
