"""Run store dedup: store-hit vs re-exploration speedup.

PR 6's content-addressed run store turns a repeated submission —
identical spec, program, config, strategy and seed — into a manifest
lookup plus a ``result.json`` load, skipping the engine entirely.  This
benchmark quantifies that: each workload is recorded once (the miss,
paying exploration + serialization), then resubmitted (the hit).

The CI guard (``test_store_hit_speedup_guard`` / ``--check`` as a
script) requires the hit to be **>= 5x faster** than the recorded miss
on the aggregate workload.  The hit must also be *faithful*: same path
count, defect kinds and coverage as the live result — a fast wrong
answer fails the guard.
"""

import shutil
import sys
import tempfile

from repro.bench import Sample, benchmark
from repro.core import EngineConfig
from repro.programs import build_kernel
from repro.runstore import RunStore, cached_explore

from _util import (best_of_attempts, print_table, report_guard, timed,
                   write_telemetry_sidecar)

# Workloads sized so the miss does real exploration work.
WORKLOADS = [
    ("maze", {"depth": 9}),
    ("checksum", {"length": 5}),
    ("exerciser", {}),
]

#: Required store-hit speedup over re-exploration (>= 5x).
GUARD_SPEEDUP = 5.0


def _submit(store, kernel, params):
    model, image = build_kernel(kernel, "rv32", **params)
    config = EngineConfig(collect_coverage=True)
    return cached_explore(store, model, image, config)


def measure(workloads=WORKLOADS):
    """Rows of (kernel, miss_wall, hit_wall, live_result, hit_result)."""
    rows = []
    root = tempfile.mkdtemp(prefix="bench-store-")
    try:
        store = RunStore(root)
        for kernel, params in workloads:
            (live, _, hit_flag), miss_wall = timed(
                _submit, store, kernel, params)
            assert not hit_flag, kernel
            (cached, _, hit_flag), hit_wall = timed(
                _submit, store, kernel, params)
            assert hit_flag, kernel
            # Faithfulness: a fast wrong answer is no win.
            assert len(cached.paths) == len(live.paths), kernel
            assert [d.kind for d in cached.defects] == \
                [d.kind for d in live.defects], kernel
            assert cached.visited_pcs == live.visited_pcs, kernel
            rows.append((kernel, miss_wall, hit_wall, live, cached))
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return rows


def guard_speedup(rows=None):
    """Aggregate hit speedup across the guard workloads."""
    rows = measure() if rows is None else rows
    miss_total = sum(row[1] for row in rows)
    hit_total = sum(row[2] for row in rows)
    return miss_total / hit_total


@benchmark("store.hit_speedup",
           title="run store: content-addressed hit vs re-exploration",
           suite="quick", isas=("rv32",), unit="x", direction="higher",
           expect_min=GUARD_SPEEDUP, reps=3, warmup=0,
           workload="maze(depth 9) + checksum(len 5) + exerciser, "
                    "recorded once then resubmitted")
def _observatory_sample():
    rows = measure()
    miss_total = sum(row[1] for row in rows)
    hit_total = sum(row[2] for row in rows)
    return Sample(miss_total / hit_total, wall_s=miss_total + hit_total)


def print_report(check=False):
    rows = measure()
    print_table(
        "Run store: recorded miss vs content-addressed hit (rv32)",
        ["kernel", "paths", "defects", "record (miss)", "hit",
         "speedup"],
        [[kernel, len(live.paths), len(live.defects),
          "%.3fs" % miss_wall, "%.4fs" % hit_wall,
          "%.1fx" % (miss_wall / hit_wall)]
         for kernel, miss_wall, hit_wall, live, _ in rows])
    speedup = guard_speedup(rows)
    runs = [{"label": kernel,
             "record_s": round(miss_wall, 4),
             "hit_s": round(hit_wall, 4),
             "telemetry": live.telemetry}
            for kernel, miss_wall, hit_wall, live, _ in rows]
    sidecar = write_telemetry_sidecar(__file__, runs,
                                      guard_speedup=round(speedup, 2),
                                      guard_required=GUARD_SPEEDUP)
    print("telemetry sidecar: %s" % sidecar)
    return report_guard("store-hit guard speedup", speedup,
                        GUARD_SPEEDUP, check=check, fmt="%.1fx")


# -- pytest entry points ------------------------------------------------------

def test_store_hit_speedup_guard():
    """CI guard: the store hit is >= 5x faster than re-exploration.

    Three attempts before failing: wall-clock guards on shared CI
    runners are noisy, though the margin here is normally 100x+ (a
    JSON load vs a full symbolic exploration).
    """
    best = best_of_attempts(guard_speedup, GUARD_SPEEDUP)
    assert best >= GUARD_SPEEDUP, (
        "store-hit speedup %.1fx below the %.1fx guard"
        % (best, GUARD_SPEEDUP))


def test_bench_store_hit(benchmark):
    root = tempfile.mkdtemp(prefix="bench-store-")
    try:
        store = RunStore(root)
        _submit(store, "maze", {"depth": 9})        # record once

        def hit():
            result, _, hit_flag = _submit(store, "maze", {"depth": 9})
            assert hit_flag
            return result

        result = benchmark(hit)
        assert len(result.paths) > 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(print_report(check="--check" in sys.argv[1:]))
