"""Table 2 — Defect detection matrix.

For every suite case (Juliet-style CWE pattern) and every ISA: was the bad
variant's defect detected, and did the good variant stay clean?  The
paper-shape expectation: full detection, zero false positives, on all
four ISAs.

The pytest-benchmark target times the full bad-variant analysis per ISA
(build + assemble + explore).
"""

import pytest

from repro.bench import Sample, benchmark
from repro.programs import suite

from _util import ALL_TARGETS, print_table, timed


@benchmark("table2.rv32_detection_wall",
           title="detection suite: all bad variants on rv32",
           suite="full", isas=("rv32",), unit="s", direction="lower",
           reps=3, warmup=1,
           workload="every suite case's bad variant, build + assemble "
                    "+ explore, rv32")
def _observatory_sample():
    def run_all():
        for case in suite.all_cases():
            detected, _result, _input = suite.run_case(case, "rv32",
                                                       "bad")
            assert detected, case.name
    _, wall = timed(run_all)
    return Sample(wall, wall_s=wall)


def matrix_rows():
    rows = []
    totals = {"detected": 0, "expected": 0, "false_positives": 0}
    for case in suite.all_cases():
        for target in ALL_TARGETS:
            (bad_hit, bad_result, _), bad_time = timed(
                suite.run_case, case, target, "bad")
            (good_hit, _, _), good_time = timed(
                suite.run_case, case, target, "good")
            totals["expected"] += 1
            totals["detected"] += int(bad_hit)
            totals["false_positives"] += int(good_hit)
            rows.append([case.name, case.cwe, target,
                         "yes" if bad_hit else "NO",
                         "none" if not good_hit else "FALSE-POSITIVE",
                         "%.0f" % bad_result.instructions_executed,
                         "%.3fs" % (bad_time + good_time)])
    return rows, totals


def print_report():
    rows, totals = matrix_rows()
    print_table(
        "Table 2: defect detection per case and ISA",
        ["case", "CWE", "ISA", "bad detected", "good variant",
         "instrs", "time"],
        rows)
    print("\ndetected %d/%d planted defects, %d false positives"
          % (totals["detected"], totals["expected"],
             totals["false_positives"]))


@pytest.mark.parametrize("target", ALL_TARGETS)
def test_suite_bad_variants_time(benchmark, target):
    """End-to-end time to analyze every bad variant on one ISA."""

    def run_all():
        hits = 0
        for case in suite.all_cases():
            detected, _, _ = suite.run_case(case, target, "bad")
            hits += int(detected)
        return hits

    hits = benchmark(run_all)
    assert hits == len(suite.all_cases())


def test_print_table2():
    print_report()


if __name__ == "__main__":
    print_report()
