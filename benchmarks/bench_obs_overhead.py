"""Telemetry overhead guard.

Runs the quickstart-shaped workload (maze kernel: forks, solver checks,
memory traffic) with three Obs configurations and asserts that the
engine default — **enabled counters, no event sink, no profiler** —
stays within ``MAX_OVERHEAD`` of a fully disabled Obs.  CI runs this on
every push so instrumentation creep is caught before it lands.

Usage::

    python benchmarks/bench_obs_overhead.py            # assert + report
    python benchmarks/bench_obs_overhead.py --report   # report only

Exit status 1 when the budget is exceeded.

(Not a pytest module on purpose: single-shot wall-clock assertions are
too noisy for the unit suite; best-of-N in a dedicated CI job is the
right home.)
"""

import sys
import time

from repro.bench import Sample, benchmark
from repro.core import Engine, EngineConfig
from repro.obs import AttrConfig, FlightRecorder, HealthConfig, Obs
from repro.programs import build_kernel

MAX_OVERHEAD = 0.15     # counters (and +health) must cost < 15% vs. disabled
MAX_ATTR_OVERHEAD = 0.20  # sampled cost attribution must cost < 20%
REPEATS = 5             # best-of to suppress scheduler noise
WORKLOAD = ("maze", {"depth": 6, "solution": 0b101100})


def _recording() -> Obs:
    """Counters + a live FlightRecorder sink (the in-process execution
    tree).  Measured and reported, but NOT part of the guard: the
    recorder is default-off like every sink, so its cost is opt-in."""
    obs = Obs.default()
    obs.add_sink(FlightRecorder())
    return obs


def run_once(obs_factory, health_factory=None, attr_factory=None) -> float:
    model, image = build_kernel(WORKLOAD[0], "rv32", **WORKLOAD[1])
    health = health_factory() if health_factory is not None else None
    attr = attr_factory() if attr_factory is not None else None
    config = EngineConfig(collect_path_inputs=False, obs=obs_factory(),
                          health=health, attr=attr)
    engine = Engine(model, config=config)
    engine.load_image(image)
    start = time.perf_counter()
    result = engine.explore()
    elapsed = time.perf_counter() - start
    assert result.instructions_executed > 0
    return elapsed


def best_of(obs_factory, health_factory=None, attr_factory=None,
            repeats: int = REPEATS) -> float:
    return min(run_once(obs_factory, health_factory, attr_factory)
               for _ in range(repeats))


@benchmark("obs.counters_overhead",
           title="telemetry: default-counters overhead vs disabled Obs",
           suite="full", isas=("rv32",), unit="ratio", direction="lower",
           expect_max=MAX_OVERHEAD, reps=1, warmup=0,
           workload="maze(depth 6), best-of-%d per Obs config" % REPEATS)
def _observatory_sample():
    run_once(Obs.disabled)      # warm model/decoder caches
    disabled = best_of(Obs.disabled)
    counters = best_of(Obs.default)
    overhead = (counters - disabled) / disabled if disabled else 0.0
    return Sample(overhead, wall_s=disabled + counters)


def main(argv) -> int:
    report_only = "--report" in argv
    # Warm up model/decoder caches so the first config isn't penalized.
    run_once(Obs.disabled)
    disabled = best_of(Obs.disabled)
    counters = best_of(Obs.default)
    profiled = best_of(lambda: Obs(metrics=True, profile=True))
    recording = best_of(_recording)
    # Health monitor at its default cadence (sample every 256 steps):
    # guarded alongside the counters — a monitored run must stay cheap
    # enough to leave on in CI.
    monitored = best_of(Obs.default, HealthConfig)
    # Sampled cost attribution at its default cadence (deep-probe every
    # 16th step): guarded under its own, looser, budget — attribution
    # adds two clock reads to every step by design.
    attributed = best_of(Obs.default, attr_factory=AttrConfig)
    overhead = (counters - disabled) / disabled if disabled else 0.0
    health_overhead = ((monitored - disabled) / disabled
                       if disabled else 0.0)
    attr_overhead = ((attributed - disabled) / disabled
                     if disabled else 0.0)
    print("== telemetry overhead (best of %d, maze depth=%d) =="
          % (REPEATS, WORKLOAD[1]["depth"]))
    print("disabled:          %8.4fs" % disabled)
    print("counters (default):%8.4fs  (%+.1f%%)" % (counters,
                                                    100 * overhead))
    print("counters+health:   %8.4fs  (%+.1f%%)"
          % (monitored, 100 * health_overhead))
    print("counters+profiler: %8.4fs  (%+.1f%%)"
          % (profiled, 100 * (profiled - disabled) / disabled))
    print("counters+attr:     %8.4fs  (%+.1f%%)"
          % (attributed, 100 * attr_overhead))
    print("counters+recorder: %8.4fs  (%+.1f%%)  [opt-in, not guarded]"
          % (recording, 100 * (recording - disabled) / disabled))
    if report_only:
        return 0
    failed = False
    if overhead >= MAX_OVERHEAD:
        print("FAIL: default telemetry overhead %.1f%% >= %.0f%% budget"
              % (100 * overhead, 100 * MAX_OVERHEAD))
        failed = True
    if health_overhead >= MAX_OVERHEAD:
        print("FAIL: health monitor overhead %.1f%% >= %.0f%% budget"
              % (100 * health_overhead, 100 * MAX_OVERHEAD))
        failed = True
    if attr_overhead >= MAX_ATTR_OVERHEAD:
        print("FAIL: sampled attribution overhead %.1f%% >= %.0f%% "
              "budget" % (100 * attr_overhead, 100 * MAX_ATTR_OVERHEAD))
        failed = True
    if failed:
        return 1
    print("OK: default telemetry %.1f%%, health monitor %.1f%% "
          "< %.0f%% budget; sampled attribution %.1f%% < %.0f%% budget"
          % (100 * overhead, 100 * health_overhead,
             100 * MAX_OVERHEAD, 100 * attr_overhead,
             100 * MAX_ATTR_OVERHEAD))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
