"""Table 1 — Retargeting effort.

The paper's economic argument: adding an ISA costs a few hundred ADL
lines, while the (shared, ISA-independent) engine is an order of magnitude
larger and is written once.  Rows report, per ISA: instruction count, ADL
spec lines, generated decode patterns, generated IR operations — against
the shared engine/substrate line counts.

The pytest-benchmark target times full model generation (parse + analyze +
translate + decoder construction) per ISA.
"""

import pytest

from repro.adl import load_builtin_spec
from repro.bench import Sample, benchmark
from repro.ir import count_nodes
from repro.isa import build
from repro.isa.model import ArchModel

from _util import ALL_TARGETS, adl_spec_loc, print_table, python_loc, timed


def table_rows():
    rows = []
    for target in ALL_TARGETS:
        model = build(target)
        ir_ops = sum(count_nodes(instr.semantics)
                     for instr in model.instructions)
        rows.append([target, len(model.instructions),
                     adl_spec_loc(target), len(model.instructions),
                     ir_ops])
    return rows


def engine_rows():
    return [
        ["symbolic engine (core)", python_loc("core")],
        ["solver substrate (smt)", python_loc("smt")],
        ["IR + generation (ir, isa, adl)", python_loc("ir", "isa", "adl")],
    ]


@benchmark("table1.model_generation_wall",
           title="ADL model generation: all built-in ISAs",
           suite="quick", isas=tuple(ALL_TARGETS), unit="s",
           direction="lower", reps=3, warmup=1,
           workload="parse + analyze + translate + decoder construction "
                    "for every built-in spec")
def _observatory_sample():
    def build_all():
        for target in ALL_TARGETS:
            model = ArchModel(load_builtin_spec(target))
            assert model.instructions
    _, wall = timed(build_all)
    return Sample(wall, wall_s=wall)


def print_report():
    print_table(
        "Table 1a: per-ISA retargeting cost (written per target)",
        ["ISA", "instructions", "ADL lines", "decode patterns", "IR ops"],
        table_rows())
    print_table(
        "Table 1b: shared engine cost (written once, Python lines)",
        ["component", "lines"], engine_rows())
    spec_total = sum(adl_spec_loc(t) for t in ALL_TARGETS)
    shared = sum(row[1] for row in engine_rows())
    print("\nADL total for %d ISAs: %d lines; shared engine: %d lines "
          "(ratio 1:%.1f)" % (len(ALL_TARGETS), spec_total, shared,
                              shared / spec_total))


@pytest.mark.parametrize("target", ALL_TARGETS)
def test_model_generation_time(benchmark, target):
    """Time to generate the full ISA model from its ADL spec."""
    spec = load_builtin_spec(target)

    def generate():
        return ArchModel(spec)

    model = benchmark(generate)
    assert model.instructions


def test_print_table1():
    print_report()


if __name__ == "__main__":
    print_report()
