"""Table 5 — Ablations of the design choices DESIGN.md calls out.

Four switches, measured on the maze and checksum kernels:

* **hash-consing off** — every term construction allocates; structural
  sharing (and the interning fast path for equality) is lost.
* **simplification off** — no construction-time rewriting; terms reaching
  the bit-blaster are much larger.
* **copy-on-write off** — forking a path deep-copies all touched memory
  pages instead of sharing them.
* **solver cache off** — no query-result cache, no unsat subsumption,
  no model-reuse fast path, no per-state frame reuse; every feasibility
  check reaches the solving layers (the ``--no-solver-cache`` baseline;
  ``benchmarks/bench_solver_cache.py`` measures this one in depth).

Paper-shape expectation: each switch costs a measurable constant factor;
simplification matters most on solver-bound workloads, COW on fork-heavy
ones, and the solver cache on branch-heavy ones with long shared
path-condition prefixes.
"""

import pytest

from repro.bench import Sample, benchmark
from repro.core import Engine, EngineConfig
from repro.programs import build_kernel
from repro.smt import Solver
from repro.smt import terms as T

from _util import print_table, timed

WORKLOADS = [
    ("maze", {"depth": 8, "solution": 0b10110010}),
    ("checksum", {"length": 4, "magic": 0x2d2d}),
]

CONFIGS = [
    ("baseline", {"hash_consing": True, "simplify": True, "cow": True,
                  "solver_cache": True}),
    ("no hash-consing", {"hash_consing": False, "simplify": True,
                         "cow": True, "solver_cache": True}),
    ("no simplify", {"hash_consing": True, "simplify": False, "cow": True,
                     "solver_cache": True}),
    ("no COW memory", {"hash_consing": True, "simplify": True,
                       "cow": False, "solver_cache": True}),
    ("no solver cache", {"hash_consing": True, "simplify": True,
                         "cow": True, "solver_cache": False}),
]


def run_config(kernel, params, hash_consing, simplify, cow,
               solver_cache=True):
    previous = T.set_pool(T.TermPool(hash_consing=hash_consing,
                                     simplify=simplify))
    try:
        model, image = build_kernel(kernel, "rv32", **params)
        config = EngineConfig(collect_path_inputs=False, cow_memory=cow,
                              use_solver_cache=solver_cache)
        engine = Engine(model, solver=Solver(use_query_cache=solver_cache),
                        config=config)
        engine.load_image(image)
        result, wall = timed(engine.explore)
        pool_stats = T.pool_stats()
        return result, wall, pool_stats
    finally:
        T.set_pool(previous)


@benchmark("table5.baseline_maze_wall",
           title="ablation baseline: maze with every optimization on",
           suite="full", isas=("rv32",), unit="s", direction="lower",
           reps=3, warmup=1,
           workload="maze(depth 8), hash-consing + simplify + COW + "
                    "solver cache all enabled")
def _observatory_sample():
    result, wall, _pool_stats = run_config(
        "maze", {"depth": 8, "solution": 0b10110010},
        hash_consing=True, simplify=True, cow=True)
    return Sample.from_result(wall, result, wall)


def table_rows():
    rows = []
    for kernel, params in WORKLOADS:
        base_time = None
        for label, switches in CONFIGS:
            result, wall, pool_stats = run_config(kernel, params,
                                                  **switches)
            if base_time is None:
                base_time = wall
            rows.append([
                kernel, label,
                result.instructions_executed,
                len(result.paths) + len(result.defects),
                pool_stats["misses"],
                "%.3fs" % wall,
                "%.2fx" % (wall / base_time),
            ])
    return rows


def print_report():
    print_table(
        "Table 5: design-choice ablations (rv32)",
        ["kernel", "configuration", "instrs", "paths", "terms built",
         "time", "vs baseline"],
        table_rows())


@pytest.mark.parametrize("label,switches", CONFIGS,
                         ids=[c[0].replace(" ", "-") for c in CONFIGS])
def test_ablation_time(benchmark, label, switches):
    def run():
        result, _, _ = run_config("maze", {"depth": 6}, **switches)
        return result

    result = benchmark(run)
    assert result.instructions_executed > 0


def test_print_table5():
    print_report()


if __name__ == "__main__":
    print_report()
